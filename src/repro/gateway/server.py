"""The asyncio HTTP front end over one :class:`QueryService`.

Architecture — a non-blocking I/O tier in front of a bounded worker
tier, the shape production serving stacks use:

* the **event loop** owns every socket and never computes an answer:
  a parsed request is admitted by :meth:`QueryService.submit` (cache
  claim, pricing, admission queue — all O(1) bookkeeping) and the
  returned worker-pool future is awaited via ``asyncio.wrap_future``,
  so admission control, single-flight caching, fan-out budgets, and
  the AIMD width controller all apply unchanged behind the gateway;
* each connection runs a **reader/writer pair**: the reader parses
  pipelined requests and enqueues handler tasks onto a bounded queue
  (``max_inflight_per_connection`` — when it fills, the reader simply
  stops consuming the socket and TCP pushes back on the client); the
  writer flushes responses strictly in request order, as HTTP/1.1
  requires;
* **overload degrades loudly, never silently**: connections past the
  global cap get ``503`` + ``Retry-After`` and the shed is reported to
  the load controller; admission-queue sheds surface as per-request
  ``503`` bodies; a lapsed ``timeout_ms`` deadline is a ``504``.  No
  path leaves a connection hanging without a response;
* **graceful drain**: stop accepting, let in-flight requests finish
  inside ``drain_seconds``, then cancel what remains (idle keep-alive
  readers included).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    BadRequestError,
    PayloadTooLargeError,
    ServiceOverloadedError,
)
from repro.gateway.http import (
    HEAD_TERMINATOR,
    Request,
    Response,
    build_response,
    parse_request_head,
)
from repro.gateway.routes import (
    Endpoint,
    error_payload,
    error_response,
    render_prometheus,
    resolve,
    serialize_served,
    timeout_seconds,
)
from repro.serve.metrics import GatewayMetrics
from repro.serve.service import GatewayConfig, QueryService

logger = logging.getLogger("repro.gateway")
access_logger = logging.getLogger("repro.gateway.access")


@dataclass
class _Pending:
    """One admitted request waiting for its in-order response slot."""

    task: "asyncio.Task[Response]"
    request: Request | None  # None for protocol errors (no valid request)
    request_id: str
    endpoint: str
    started: float
    keep_alive: bool
    head_only: bool


class Gateway:
    """Serve one :class:`QueryService` over HTTP/1.1 keep-alive.

    Create it on (or before) the event loop that will run it; ``start``
    binds the socket, ``drain`` shuts down gracefully.  The CLI wraps
    this in :func:`run_gateway`; tests and benchmarks use
    :class:`BackgroundGateway` to host one on a side thread.
    """

    def __init__(self, service: QueryService,
                 config: GatewayConfig | None = None) -> None:
        self.service = service
        self.config = config or service.config.gateway or GatewayConfig()
        self.metrics = GatewayMetrics()
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._ids = itertools.count(1)
        # readuntil() needs headroom past the header cap so the explicit
        # size check (a clean 400) fires before the stream limit does.
        self._stream_limit = max(self.config.max_header_bytes,
                                 self.config.max_body_bytes) + 4096

    @property
    def draining(self) -> bool:
        return self._draining

    def _next_request_id(self) -> str:
        return f"{os.getpid():x}-{next(self._ids):06x}"

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self._stream_limit,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("gateway listening on %s:%d",
                    self.config.host, self.port)

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, then cancel the rest."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_seconds
        while self.metrics.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        leftovers = self.metrics.inflight
        if leftovers:
            logger.warning(
                "drain deadline (%.1fs) passed with %d request(s) "
                "in flight; cancelling", self.config.drain_seconds,
                leftovers,
            )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        logger.info("gateway drained (%d request(s) cancelled)",
                    leftovers)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self._draining or \
                self.metrics.connections_open >= \
                self.config.max_connections:
            await self._shed_connection(writer)
            return
        self.metrics.connection_opened()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        pending: "asyncio.Queue[_Pending | None]" = asyncio.Queue(
            maxsize=self.config.max_inflight_per_connection,
        )
        write_task = asyncio.create_task(
            self._write_loop(writer, pending))
        try:
            await self._read_loop(reader, pending)
            # put() can wait on a full queue, but the writer is still
            # consuming, so this always completes.
            await pending.put(None)
            await write_task
        except asyncio.CancelledError:
            # Drain cancelled this connection deliberately; the writer
            # may be parked on a handler that will never finish inside
            # the drain deadline — tear everything down, and complete
            # normally so the streams machinery doesn't log the cancel.
            write_task.cancel()
            self._cancel_queued(pending)
        except BaseException:
            write_task.cancel()
            self._cancel_queued(pending)
            raise
        finally:
            self.metrics.connection_closed()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _shed_connection(self,
                               writer: asyncio.StreamWriter) -> None:
        """Refuse a connection over the cap: 503 + Retry-After, close."""
        self.metrics.connection_shed()
        if self.service.loadctl is not None:
            # Connection-level sheds are load signals too: give the
            # AIMD controller the same nudge an admission shed would.
            self.service.loadctl.on_shed()
        request_id = self._next_request_id()
        response = error_payload(
            503, "too_many_connections",
            "connection limit reached; retry shortly", request_id,
        )
        response.headers["Retry-After"] = str(
            self.config.retry_after_seconds)
        try:
            writer.write(build_response(response, request_id=request_id,
                                        keep_alive=False))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(self, reader: asyncio.StreamReader,
                         pending: "asyncio.Queue[_Pending | None]"
                         ) -> None:
        """Parse pipelined requests; enqueue one handler task each."""
        while not self._draining:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(HEAD_TERMINATOR),
                    timeout=self.config.idle_timeout_seconds,
                )
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    await self._enqueue_protocol_error(
                        pending, BadRequestError(
                            "connection closed mid-request head"))
                return
            except asyncio.LimitOverrunError:
                self.metrics.record_parse_error()
                await self._enqueue_protocol_error(
                    pending, BadRequestError(
                        f"request head exceeds the "
                        f"{self.config.max_header_bytes}-byte limit"))
                return
            except asyncio.TimeoutError:
                return  # idle keep-alive connection: close quietly
            except (ConnectionError, OSError):
                return
            try:
                request = parse_request_head(
                    head, self.config.max_header_bytes)
                request.body = await self._read_body(reader, request)
            except BadRequestError as exc:
                self.metrics.record_parse_error()
                await self._enqueue_protocol_error(pending, exc)
                return
            except PayloadTooLargeError as exc:
                await self._enqueue_protocol_error(pending, exc)
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    OSError):
                return
            endpoint = resolve(request.path)
            name = endpoint.name if endpoint is not None else "unknown"
            request_id = self._next_request_id()
            self.metrics.request_started(name)
            task = asyncio.create_task(
                self._handle_request(endpoint, request, request_id))
            # Bounded: blocks when max_inflight_per_connection answers
            # are outstanding, which stops socket reads — backpressure
            # reaches the client as TCP flow control, not lost requests.
            await pending.put(_Pending(
                task=task, request=request, request_id=request_id,
                endpoint=name, started=time.monotonic(),
                keep_alive=request.keep_alive,
                head_only=request.method == "HEAD",
            ))
            if not request.keep_alive:
                return

    async def _read_body(self, reader: asyncio.StreamReader,
                         request: Request) -> bytes:
        length = request.content_length
        if length == 0:
            return b""
        if length > self.config.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        return await reader.readexactly(length)

    @staticmethod
    def _cancel_queued(
            pending: "asyncio.Queue[_Pending | None]") -> None:
        """Cancel handler tasks still waiting for their response slot."""
        while True:
            try:
                item = pending.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not None:
                item.task.cancel()

    async def _enqueue_protocol_error(
            self, pending: "asyncio.Queue[_Pending | None]",
            exc: BaseException) -> None:
        """Answer a malformed request in-order, then close."""
        request_id = self._next_request_id()
        response = error_response(exc, request_id)
        response.close = True

        async def _ready() -> Response:
            return response

        self.metrics.request_started("malformed")
        await pending.put(_Pending(
            task=asyncio.create_task(_ready()), request=None,
            request_id=request_id, endpoint="malformed",
            started=time.monotonic(), keep_alive=False,
            head_only=False,
        ))

    async def _write_loop(self, writer: asyncio.StreamWriter,
                          pending: "asyncio.Queue[_Pending | None]"
                          ) -> None:
        """Flush responses in request order until the reader signals EOF.

        Runs to the sentinel even when the socket breaks: every admitted
        task must be awaited (so service work quiesces) and accounted
        (so the in-flight gauge returns to zero).
        """
        broken = False
        while True:
            item = await pending.get()
            if item is None:
                return
            response = await item.task  # handler never raises
            status = response.status
            if not broken:
                data = build_response(
                    response,
                    request_id=item.request_id,
                    keep_alive=(item.keep_alive and not response.close
                                and not self._draining),
                    head_only=item.head_only,
                )
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionError, OSError):
                    broken = True
            if broken:
                status = 499  # client closed before the response went out
            elapsed = time.monotonic() - item.started
            self.metrics.request_finished(status, elapsed)
            self._access_log(item, response, status, elapsed, writer)

    def _access_log(self, item: _Pending, response: Response,
                    status: int, elapsed: float,
                    writer: asyncio.StreamWriter) -> None:
        if not self.config.access_log:
            return
        peer = writer.get_extra_info("peername")
        peer_text = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) \
            else "-"
        method = item.request.method if item.request else "-"
        target = item.request.target if item.request else "-"
        access_logger.info(
            "request_id=%s peer=%s method=%s target=%s endpoint=%s "
            "status=%d ms=%.2f",
            item.request_id, peer_text, method, target, item.endpoint,
            status, elapsed * 1000.0,
        )

    # -- request handling --------------------------------------------------

    async def _handle_request(self, endpoint: Endpoint | None,
                              request: Request,
                              request_id: str) -> Response:
        """Answer one routed request; every failure becomes a response."""
        try:
            if endpoint is None:
                return error_payload(
                    404, "not_found",
                    f"no route for {request.path!r}", request_id,
                )
            if endpoint.engine is None:
                return self._local_endpoint(endpoint, request_id)
            if endpoint.engine == "ingest":
                # Writes ride a dedicated single-worker pool
                # (QueryService.submit_ingest) so a batch commit can
                # never occupy a read slot; reads keep flowing while
                # the WAL fsyncs.
                if request.method != "POST":
                    response = error_payload(
                        405, "method_not_allowed",
                        "ingest requires POST", request_id)
                    response.headers["Allow"] = "POST"
                    return response
                params = endpoint.params(request)
                timeout = timeout_seconds(
                    request, self.config.default_timeout_ms)
                future = self.service.submit_ingest(
                    timeout_seconds=timeout, **params)
            else:
                params = endpoint.params(request)
                timeout = timeout_seconds(
                    request, self.config.default_timeout_ms)
                future = self.service.submit(
                    endpoint.engine, timeout_seconds=timeout, **params)
            served = await asyncio.wrap_future(future)
            return Response(payload=serialize_served(served, request_id))
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - becomes the body
            response = error_response(exc, request_id)
            if isinstance(exc, ServiceOverloadedError):
                response.headers["Retry-After"] = str(
                    self.config.retry_after_seconds)
            return response

    def _local_endpoint(self, endpoint: Endpoint,
                        request_id: str) -> Response:
        """Endpoints answered on the loop without touching the pool."""
        if endpoint.name == "healthz":
            if self._draining:
                return Response(status=503,
                                payload={"status": "draining"},
                                close=True)
            # Cheap lock-free attribute reads (QueryService.health) —
            # this runs on the event loop and the cluster router probes
            # it continuously, so it must never wait on the data lock.
            return Response(payload={"status": "ok",
                                     **self.service.health()})
        if endpoint.name == "stats":
            return Response(payload={
                "gateway": self.metrics.snapshot(),
                "service": self.service.stats(),
            })
        # metrics: Prometheus text exposition.
        text = render_prometheus(self.service.stats(),
                                 self.metrics.snapshot())
        return Response(
            text=text,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )


def run_gateway(service: QueryService,
                config: GatewayConfig | None = None,
                ready: Any = None) -> int:
    """Blocking entry point for the CLI: serve until SIGTERM/SIGINT.

    Prints the bound address (flushes, so wrappers waiting for
    readiness can line-buffer), then serves until a termination signal
    arrives and drains gracefully.  ``ready``, when given, is called
    with the bound port once the socket is listening (used by tests).
    """

    async def _main() -> None:
        gateway = Gateway(service, config)
        await gateway.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signals
        print(f"gateway listening on "
              f"http://{gateway.config.host}:{gateway.port}",
              flush=True)
        if ready is not None:
            ready(gateway.port)
        await stop.wait()
        print("gateway draining ...", flush=True)
        await gateway.drain()

    asyncio.run(_main())
    print("gateway stopped", flush=True)
    return 0


class BackgroundGateway:
    """Host a :class:`Gateway` on a private loop in a daemon thread.

    The harness tests and benchmarks use to stand a real socket server
    up next to synchronous client code::

        with BackgroundGateway(service) as gw:
            client = GatewayClient("127.0.0.1", gw.port)
            ...

    Exiting the context drains the gateway and joins the thread.
    """

    def __init__(self, service: QueryService,
                 config: GatewayConfig | None = None) -> None:
        if config is None:
            config = service.config.gateway or GatewayConfig(port=0)
        self.gateway = Gateway(service, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.gateway.port is not None
        return self.gateway.port

    def start(self) -> "BackgroundGateway":
        self._thread = threading.Thread(
            target=self._run, name="gateway-loop", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._error is not None:
            raise self._error
        if self.gateway.port is None:
            raise RuntimeError("gateway failed to start within 10s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.gateway.start())
            except BaseException as exc:  # noqa: BLE001 - re-raised in start()
                self._error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
            # Drain was scheduled by stop(); run_forever returned after
            # loop.stop() — finish any callbacks it left behind.
            loop.run_until_complete(asyncio.sleep(0))
        finally:
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        drained = asyncio.run_coroutine_threadsafe(
            self.gateway.drain(), loop)
        try:
            drained.result(timeout=timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundGateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

"""Public API: the CovidKG system facade and the pre-trained model registry.

:class:`repro.api.system.CovidKG` wires the whole architecture of the
paper's Figure 1 together — storage, deep-learning models, search engines,
knowledge graph, enrichment, review — behind one object.  №11/№13 of the
figure (API users reusing released models and embeddings) are served by
:class:`repro.api.registry.ModelRegistry`.
"""

from repro.api.registry import ModelRegistry
from repro.api.system import CovidKG, CovidKGConfig

__all__ = ["ModelRegistry", "CovidKG", "CovidKGConfig"]

"""The CovidKG system facade: the whole of Figure 1 behind one object.

Lifecycle:

1. ``CovidKG()`` seeds the knowledge graph from the expert layout (№1/№2)
   and opens the sharded publication store (№2/№3).
2. ``train(...)`` builds the vocabulary and Word2Vec embeddings
   (pre-trained on WDC + corpus sentences, №4), trains the metadata
   classifiers, and registers everything in the model registry (№11/№13).
3. ``ingest(papers)`` runs the full non-stop pipeline per paper: validate,
   re-parse raw HTML tables, classify table rows as metadata/data, store
   the enriched JSON in the sharded store, index it in all three search
   engines, extract entity subtrees, and fuse them into the KG (№5/№6/№14).
4. Query surfaces: the three search engines (Section 2.1), KG search with
   path highlighting (Section 4.2), and meta-profiles (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api.registry import ModelRegistry
from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.classify.dataset import MetadataDataset
from repro.classify.svm_model import SvmMetadataClassifier
from repro.corpus.schema import full_text, validate_paper
from repro.docstore.functions import FunctionRegistry
from repro.docstore.persistence import StorageReport, storage_report
from repro.docstore.sharding import ShardedCollection
from repro.embeddings.word2vec import Word2Vec
from repro.errors import ModelError
from repro.kg.bias import BiasInterrogator, BiasReport
from repro.kg.enrichment import EnrichmentPipeline, EnrichmentReport
from repro.kg.fusion import FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.metaprofile import MetaProfile, build_side_effect_profile
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue
from repro.kg.search import KGSearchEngine, KGSearchHit
from repro.kgql import KGQLEngine, KGQLResult
from repro.search.all_fields import AllFieldsEngine
from repro.search.engine import SearchResults
from repro.search.table_search import TableSearchEngine
from repro.search.title_abstract import TitleAbstractCaptionEngine
from repro.tables.html_parser import parse_html_tables
from repro.text.vocabulary import Vocabulary


@dataclass
class CovidKGConfig:
    """System-level knobs.

    ``classifier`` selects the table-metadata model the ingest pipeline
    runs "non-stop": ``"svm"`` (fast, the default at laptop scale) or
    ``"bigru"`` (the Figure 3 ensemble, initialized from the pre-trained
    Word2Vec vectors and fine-tuned end to end).
    """

    num_shards: int = 4
    shard_key: str = "paper_id"
    #: Shards per search-engine index.  ``1`` keeps each engine on a
    #: single collection; ``> 1`` makes every query a parallel
    #: scatter-gather over that many shards (results are identical —
    #: ranking tie-breaks are deterministic either way).
    search_shards: int = 1
    vocabulary_size: int = 100_000
    embedding_dim: int = 24
    wdc_training_tables: int = 60
    classifier: str = "svm"
    classifier_epochs: int = 4
    seed: int = 0
    #: Ranking function for the three search engines: ``"tfidf"`` (the
    #: paper's TF-IDF + proximity + static scorer) or ``"bm25"``
    #: (Okapi BM25 with per-field length normalization, tuned by
    #: ``bm25_k1``/``bm25_b``).  Either runs on the columnar kernels.
    ranker: str = "tfidf"
    bm25_k1: float = 1.5
    bm25_b: float = 0.75
    #: Run eligible queries on the columnar numpy kernels
    #: (:mod:`repro.search.columnar`).  Results are byte-identical to
    #: the scalar pipeline; disable only to force the reference path.
    columnar: bool = True
    #: Pre-flight validate every search pipeline before execution
    #: (stage names, operators, ``$function`` resolution against the
    #: system registry); see :mod:`repro.analysis.pipeline_check`.
    validate_pipelines: bool = False


class CovidKG:
    """The assembled COVIDKG.ORG system."""

    def __init__(self, config: CovidKGConfig | None = None) -> None:
        self.config = config or CovidKGConfig()
        # №2: the knowledge graph, expert-seeded.
        self.graph = seed_covid_graph()
        # №2/№3: sharded JSON publication storage.
        self.store = ShardedCollection(
            "publications", shard_key=self.config.shard_key,
            num_shards=self.config.num_shards,
        )
        self.store.create_index("paper_id", unique=True)
        # Section 2.1: the three search engines, sharing one per-system
        # $function registry (seeded from the global defaults) so ranking
        # functions registered here never leak into another system.
        self.functions = FunctionRegistry.with_defaults()
        engines = self._build_search_engines()
        self.all_fields = engines["all_fields"]
        self.title_abstract = engines["title_abstract"]
        self.tables = engines["table"]
        # Section 4: matching/fusion/review/enrichment.
        self.review_queue = ExpertReviewQueue()
        self.matcher = NodeMatcher(self.graph)
        self.fusion = FusionEngine(self.graph, self.matcher,
                                   review_queue=self.review_queue)
        self.enrichment = EnrichmentPipeline(self.fusion)
        self.kg_search = KGSearchEngine(self.graph)
        # Declarative graph queries (KGQL + the NL template front end).
        self.kgql = KGQLEngine(self.graph)
        # №11/№13: released models.
        self.registry = ModelRegistry()
        self.vocabulary: Vocabulary | None = None
        self.word2vec: Word2Vec | None = None
        self.classifier: (
            SvmMetadataClassifier | NeuralMetadataClassifier | None
        ) = None
        self._ingested_papers: list[dict[str, Any]] = []

    def _build_search_engines(self) -> dict[str, Any]:
        """Fresh Section 2.1 engines configured exactly per the config.

        Used at construction *and* by snapshot rollback
        (:mod:`repro.ingest.snapshots`), so a rolled-back system keeps
        its ranker (BM25 ``k1``/``b``, field-length stats rebuilt from
        the retained documents), columnar setting, and validation mode.
        """
        ranker_kwargs = {
            "ranker": self.config.ranker,
            "bm25_k1": self.config.bm25_k1,
            "bm25_b": self.config.bm25_b,
        }
        engines: dict[str, Any] = {
            "all_fields": AllFieldsEngine(
                registry=self.functions,
                num_shards=self.config.search_shards,
                **ranker_kwargs,
            ),
            "title_abstract": TitleAbstractCaptionEngine(
                registry=self.functions,
                num_shards=self.config.search_shards,
                **ranker_kwargs,
            ),
            "table": TableSearchEngine(
                registry=self.functions,
                num_shards=self.config.search_shards,
                **ranker_kwargs,
            ),
        }
        for engine in engines.values():
            engine.use_columnar = self.config.columnar
            if self.config.validate_pipelines:
                engine.validate_pipelines = True
        return engines

    # -- training (№4) ---------------------------------------------------------

    def train(self, papers: list[dict[str, Any]],
              word2vec_epochs: int = 3) -> None:
        """Build vocabulary + embeddings and train the metadata classifier.

        ``papers`` is the training slice of the corpus (embeddings
        pre-train on it plus WDC-style tables, mirroring the paper's
        WDC + CORD-19 recipe).
        """
        texts = [full_text(paper) for paper in papers]
        wdc = MetadataDataset.from_wdc(
            self.config.wdc_training_tables, seed=self.config.seed
        )
        texts.extend(wdc.texts())
        self.vocabulary = Vocabulary.from_texts(
            texts, max_terms=self.config.vocabulary_size,
            drop_stopwords=False,
        )
        self.word2vec = Word2Vec(
            self.vocabulary, dim=self.config.embedding_dim,
            seed=self.config.seed,
        ).fit(texts, epochs=word2vec_epochs)
        # The paper composes its training sets "from Web-scale datasets
        # such as WDC and CORD-19 respectively": merge both table sources.
        corpus_tables = MetadataDataset.from_papers(papers)
        training = wdc.merged_with(corpus_tables).shuffled(self.config.seed)
        if self.config.classifier == "bigru":
            model = NeuralMetadataClassifier(
                self.vocabulary,
                cell="gru",
                embed_dim=self.config.embedding_dim,
                seed=self.config.seed,
                pretrained_vectors=self.word2vec.matrix,
            )
            model.fit(training, epochs=self.config.classifier_epochs)
            self.classifier = model
        elif self.config.classifier == "svm":
            self.classifier = SvmMetadataClassifier(
                seed=self.config.seed
            ).fit(training)
        else:
            raise ModelError(
                f"unknown classifier {self.config.classifier!r}; "
                "use 'svm' or 'bigru'"
            )
        # Swap the matcher to embedding-aware matching now vectors exist.
        self.matcher.word2vec = self.word2vec
        self.matcher.invalidate_cache()

        self.registry.register(
            "covidkg-vocabulary", "vocabulary", self.vocabulary,
            size=len(self.vocabulary),
        )
        self.registry.register(
            "covidkg-word2vec", "embedding", self.word2vec,
            dim=self.config.embedding_dim,
            pretraining="WDC+CORD19-style",
        )
        self.registry.register(
            f"covidkg-metadata-{self.config.classifier}", "classifier",
            self.classifier,
            architecture=self.config.classifier,
        )

    # -- ingest (№3/№5/№6, non-stop classification) ------------------------

    def ingest(self, papers: list[dict[str, Any]],
               skip_duplicates: bool = False) -> EnrichmentReport:
        """Run the full pipeline over a batch of new publications.

        ``skip_duplicates`` makes re-delivered papers (same ``paper_id``)
        a no-op instead of an error — streaming feeds redeliver, and the
        weekly CORD-19 drops overlap.
        """
        accepted = []
        for paper in papers:
            paper = validate_paper(paper)
            if skip_duplicates and self.store.find_one(
                {"paper_id": paper["paper_id"]}
            ) is not None:
                continue
            enriched = self._classify_tables(paper)
            self.store.insert_one(enriched)
            self.all_fields.add_paper(enriched)
            self.title_abstract.add_paper(enriched)
            self.tables.add_paper(enriched)
            self._ingested_papers.append(enriched)
            accepted.append(paper)
        report = EnrichmentReport()
        for paper in accepted:
            for subtree in self.enrichment.extract_subtrees(paper):
                report.subtrees += 1
                report.fusion_results.append(self.fusion.fuse(subtree))
        return report

    def _classify_tables(self, paper: dict[str, Any]) -> dict[str, Any]:
        """Re-parse raw HTML tables and classify rows as metadata/data.

        When a table ships raw HTML (as CORD-19 fragments do), the HTML
        parser output replaces the pre-parsed rows, and the trained
        classifier assigns ``is_metadata`` to every row; structural labels
        (``<th>`` rows) act as the fallback when no model is trained.
        """
        paper = dict(paper)
        new_tables = []
        for table_json in paper.get("tables", []):
            html = table_json.get("html")
            if not html:
                new_tables.append(table_json)
                continue
            parsed = parse_html_tables(html, paper_id=paper["paper_id"])[0]
            parsed.table_id = table_json.get("table_id", parsed.table_id)
            if self.classifier is not None:
                dataset = self._table_as_dataset(parsed)
                predictions = self.classifier.predict(dataset)
                for row, label in zip(parsed.rows, predictions):
                    row.is_metadata = bool(label)
            merged = dict(table_json)
            merged.update(parsed.to_json())
            new_tables.append(merged)
        paper["tables"] = new_tables
        return paper

    @staticmethod
    def _table_as_dataset(table) -> MetadataDataset:
        for row in table.rows:
            if row.is_metadata is None:
                row.is_metadata = False  # placeholder label for featurizing
        return MetadataDataset.from_table(table)

    # -- queries --------------------------------------------------------------

    def search(self, query: str, page: int = 1) -> SearchResults:
        """The default (all-fields) search engine."""
        return self.all_fields.search(query, page=page)

    def search_tables(self, query: str, page: int = 1) -> SearchResults:
        return self.tables.search(query, page=page)

    def search_fields(self, title: str | None = None,
                      abstract: str | None = None,
                      caption: str | None = None,
                      page: int = 1) -> SearchResults:
        return self.title_abstract.search(
            title=title, abstract=abstract, caption=caption, page=page
        )

    def search_graph(self, query: str, top_k: int = 10
                     ) -> list[KGSearchHit]:
        return self.kg_search.search(query, top_k=top_k)

    def query_graph(self, query: str, nl: bool = False) -> KGQLResult:
        """Run a declarative KGQL query (or, with ``nl=True``, a
        natural-language question) over the knowledge graph.

        Every result row carries provenance: the supporting paper ids
        and the rendered root path per returned node.
        """
        return self.kgql.query(query, nl=nl)

    def explain_graph_query(self, query: str,
                            nl: bool = False) -> dict[str, Any]:
        """The KGQL logical plan + admission cost, without executing."""
        return self.kgql.explain(query, nl=nl)

    def meta_profile(self, papers: list[dict[str, Any]] | None = None
                     ) -> MetaProfile:
        """Figure 6's vaccine x dosage x paper side-effect profile."""
        source = papers if papers is not None else self._ingested_papers
        if not source:
            raise ModelError("no papers ingested yet")
        return build_side_effect_profile(source)

    def browse(self) -> "BrowserSession":
        """An interactive browsing session over the KG (№9/№10)."""
        from repro.kg.browse import BrowserSession  # noqa: PLC0415

        return BrowserSession(self.graph)

    def serve(self, config: "ServeConfig | None" = None) -> "QueryService":
        """Wrap this system in the concurrent query-serving tier.

        Returns a :class:`~repro.serve.service.QueryService` with result
        caching, bounded admission, and request metrics — the layer the
        covidkg.org front end would talk to.  Pass a
        :class:`~repro.serve.service.ServeConfig` with ``load_control``
        and/or ``max_request_cost`` set to enable adaptive fan-out
        budgets and pre-admission cost pricing.
        """
        from repro.serve.service import QueryService  # noqa: PLC0415

        return QueryService(self, config)

    def explain_node(self, node_id: str,
                     max_papers: int = 5) -> dict[str, Any]:
        """Provenance drill-down: the papers behind a KG node.

        "The nodes along the path provide access to the publications,
        where the result is coming from" — for each linked paper this
        returns its title, date, journal, and a snippet around the
        node's label when the text mentions it.
        """
        from repro.search.query import parse_query  # noqa: PLC0415
        from repro.search.snippets import snippet  # noqa: PLC0415

        node = self.graph.node(node_id)
        path = [item.label for item in self.graph.path_to(node_id)]
        papers = []
        try:
            parsed = parse_query(node.label)
        except Exception:  # label with no searchable tokens
            parsed = None
        for paper_id in self.graph.papers_for(node_id)[:max_papers]:
            stored = self.store.find_one({"paper_id": paper_id})
            if stored is None:
                continue
            entry = {
                "paper_id": paper_id,
                "title": stored.get("title", ""),
                "journal": stored.get("journal", ""),
                "publish_time": stored.get("publish_time", ""),
            }
            if parsed is not None:
                search_fields = stored.get("search", {})
                for field_name in ("abstract", "body", "table_captions"):
                    excerpt = snippet(
                        search_fields.get(field_name, ""), parsed
                    )
                    if excerpt:
                        entry["snippet"] = excerpt
                        break
            papers.append(entry)
        return {
            "node": node.to_json(),
            "path": path,
            "papers": papers,
            "total_papers": len(self.graph.papers_for(node_id)),
        }

    def interrogate_bias(self, num_clusters: int = 8,
                         seed: int = 0) -> BiasReport:
        """Audit the ingested corpus + KG for bias (the title's promise).

        Checks topical balance (via the learned clustering), journal
        concentration, thin KG provenance, and contested numeric claims;
        see :mod:`repro.kg.bias`.
        """
        if not self._ingested_papers:
            raise ModelError("no papers ingested yet")
        return BiasInterrogator().interrogate(
            self._ingested_papers, graph=self.graph,
            pipeline=self.enrichment, num_clusters=num_clusters,
            seed=seed,
        )

    # -- operations -------------------------------------------------------

    def review_pending(self):
        return self.review_queue.pending()

    def storage(self) -> StorageReport:
        return storage_report(self.store)

    def statistics(self) -> dict[str, Any]:
        """One-call system dashboard."""
        from repro.docstore.executor import executor_width  # noqa: PLC0415

        return {
            "publications": len(self.store),
            "kg": self.graph.statistics(),
            "storage_bytes": self.storage().total_bytes,
            "shard_sizes": self.store.shard_sizes(),
            "executor_width": executor_width(),
            "ranker": self.config.ranker,
            "columnar": self.config.columnar,
            "pending_reviews": len(self.review_queue.pending()),
            "registered_models": len(self.registry),
        }

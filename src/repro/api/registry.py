"""Registry of released pre-trained models and embeddings (№11/№13).

"COVIDKG.ORG also releases hundreds of pre-trained models and embeddings
as an API for reuse by data scientists and developers."  The registry
holds named artifacts with metadata; callers fetch them for fine-tuning or
inference.  A JSON manifest (no weights) can be exported so an index of
available artifacts is publishable separately from the artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import RegistryError


@dataclass
class RegistryEntry:
    """One released artifact."""

    name: str
    kind: str                      # "embedding" | "classifier" | "vocabulary" | ...
    artifact: Any
    metadata: dict[str, Any] = field(default_factory=dict)


class ModelRegistry:
    """Named store of models/embeddings with kind and metadata filters."""

    def __init__(self) -> None:
        self._entries: dict[str, RegistryEntry] = {}

    def register(self, name: str, kind: str, artifact: Any,
                 **metadata: Any) -> RegistryEntry:
        if not name:
            raise RegistryError("artifact name must be non-empty")
        if name in self._entries:
            raise RegistryError(f"artifact {name!r} already registered")
        entry = RegistryEntry(name=name, kind=kind, artifact=artifact,
                              metadata=dict(metadata))
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> Any:
        entry = self._entries.get(name)
        if entry is None:
            raise RegistryError(
                f"unknown artifact {name!r}; available: {self.names()}"
            )
        return entry.artifact

    def entry(self, name: str) -> RegistryEntry:
        if name not in self._entries:
            raise RegistryError(f"unknown artifact {name!r}")
        return self._entries[name]

    def names(self, kind: str | None = None) -> list[str]:
        return sorted(
            name for name, entry in self._entries.items()
            if kind is None or entry.kind == kind
        )

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def manifest(self) -> list[dict[str, Any]]:
        """Publishable index: names, kinds, metadata — no weights."""
        return [
            {"name": entry.name, "kind": entry.kind,
             "metadata": entry.metadata}
            for entry in self._entries.values()
        ]

    def save_manifest(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest(), handle, indent=2, default=str)

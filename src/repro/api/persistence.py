"""Whole-system persistence: save/load a built CovidKG to a directory.

Layout of a saved system:

.. code-block:: text

    <directory>/
        config.json          CovidKGConfig fields
        kg.json              the knowledge graph
        publications.jsonl   the (enriched) publication store
        word2vec.npz         trained embeddings + vocabulary (if trained)
        classifier.npz       trained metadata SVM (if trained)
        manifest.json        model-registry index
        versions.json        docstore/KG mutation counters at save time

``load_system`` rebuilds the sharded store, re-indexes all three search
engines from the stored publications, and re-attaches the trained models,
so a reloaded system answers queries identically to the one that was
saved.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.api.system import CovidKG, CovidKGConfig
from repro.classify.svm_model import SvmMetadataClassifier
from repro.docstore.documents import ObjectId
from repro.embeddings.word2vec import Word2Vec
from repro.errors import PersistenceError


def save_system(system: CovidKG, directory: str | Path) -> Path:
    """Persist ``system`` under ``directory``; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "config.json", "w", encoding="utf-8") as handle:
        json.dump(asdict(system.config), handle, indent=2)

    system.graph.save(directory / "kg.json")

    with open(directory / "publications.jsonl", "w",
              encoding="utf-8") as handle:
        for document in system.store.all_documents():
            document = dict(document)
            oid = document.get("_id")
            if isinstance(oid, ObjectId):
                document["_id"] = str(oid)
            handle.write(json.dumps(document, separators=(",", ":")))
            handle.write("\n")

    if system.word2vec is not None:
        system.word2vec.save(directory / "word2vec.npz")
    if isinstance(system.classifier, SvmMetadataClassifier):
        # Only the linear classifier is serializable today; a BiGRU
        # classifier is retrained from the saved embeddings on reload.
        system.classifier.save(directory / "classifier.npz")
    system.registry.save_manifest(directory / "manifest.json")

    # Record the mutation counters so a reloaded system resumes *past*
    # them: a result cache keyed against the saved system's snapshots can
    # then never alias a post-reload state (see repro.serve).
    with open(directory / "versions.json", "w",
              encoding="utf-8") as handle:
        json.dump({
            "store": system.store.version,
            "kg": system.graph.version,
        }, handle, indent=2)
    return directory


def load_system(directory: str | Path) -> CovidKG:
    """Rebuild a system saved with :func:`save_system`."""
    directory = Path(directory)
    config_path = directory / "config.json"
    if not config_path.exists():
        raise PersistenceError(f"no saved system at {directory}")
    with open(config_path, encoding="utf-8") as handle:
        config = CovidKGConfig(**json.load(handle))

    system = CovidKG(config)

    kg_path = directory / "kg.json"
    if kg_path.exists():
        from repro.kg.graph import KnowledgeGraph

        system.graph = KnowledgeGraph.load(kg_path)
        # Re-point every graph consumer at the restored instance.
        # Missing any one of these leaves that surface answering from
        # the empty seeded graph forever: KGQL did exactly that until
        # the differential reload tests caught it.
        system.matcher.graph = system.graph
        system.matcher.invalidate_cache()
        system.fusion.graph = system.graph
        system.kg_search.graph = system.graph
        system.kgql.graph = system.graph

    w2v_path = directory / "word2vec.npz"
    if w2v_path.exists():
        system.word2vec = Word2Vec.load(w2v_path)
        system.vocabulary = system.word2vec.vocabulary
        system.matcher.word2vec = system.word2vec
        system.registry.register(
            "covidkg-word2vec", "embedding", system.word2vec,
            dim=system.word2vec.dim, restored=True,
        )
        system.registry.register(
            "covidkg-vocabulary", "vocabulary", system.vocabulary,
            size=len(system.vocabulary), restored=True,
        )

    classifier_path = directory / "classifier.npz"
    if classifier_path.exists():
        system.classifier = SvmMetadataClassifier.load(classifier_path)
        system.registry.register(
            "covidkg-metadata-svm", "classifier", system.classifier,
            restored=True,
        )

    publications_path = directory / "publications.jsonl"
    if publications_path.exists():
        with open(publications_path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise PersistenceError(
                        f"corrupt publications file at line {line_number}: "
                        f"{exc}"
                    ) from exc
                document.pop("_id", None)  # store assigns fresh ids
                system.store.insert_one(document)
                system.all_fields.add_paper(document)
                system.title_abstract.add_paper(document)
                system.tables.add_paper(document)
                system._ingested_papers.append(document)

    versions_path = directory / "versions.json"
    if versions_path.exists():
        with open(versions_path, encoding="utf-8") as handle:
            try:
                versions = json.load(handle)
            except json.JSONDecodeError as exc:
                raise PersistenceError(
                    f"corrupt versions file: {exc}"
                ) from exc
        # The rebuild above re-ran every insert, so the counters already
        # moved; advance to at least one past the saved values so no
        # cache entry from the previous process can ever read as fresh.
        system.store.advance_version(int(versions.get("store", 0)) + 1)
        system.graph.advance_version(int(versions.get("kg", 0)) + 1)
    return system

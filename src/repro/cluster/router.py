"""The cluster front end: one port, N replicas, cache-affine routing.

The router owns the client-facing socket and forwards every request to
a replica gateway picked off a consistent-hash ring
(:class:`~repro.cluster.ring.HashRing`) keyed by the normalized request
target — so the same search lands on the same replica and its
in-process L1 stays warm.  Three request classes:

* **reads** (``GET``/``HEAD``, queries over ``POST``) walk the key's
  preference list: a replica that fails at the transport level is
  marked unreachable, dropped from the ring, and the request retries on
  the next replica — the client sees one answer, never a
  ``ConnectionError``;
* **writes** (``POST /v1/ingest``) fan out to *every* in-ring replica
  (write-all/read-any): once a batch commits anywhere, every replica
  that missed it — transport failure, per-replica HTTP error, or
  sitting out of the ring while the batch landed — is marked
  **diverged** and can never re-enter the ring, because its corpus now
  disagrees with the cluster's;
* **router-local** endpoints (``/v1/healthz``, ``/v1/cluster``) answer
  from the router itself with cluster topology and per-replica state.

A background probe thread polls each replica's ``/v1/healthz``:
``fail_threshold`` consecutive transport failures eject it (its hash
arcs re-spread over the survivors); a ``draining`` reply (SIGTERM
shutdown) removes it gracefully without the ejection stigma; a replica
reporting WAL ``replaying`` is kept out of the ring until recovery
finishes; a previously unreachable — but not diverged — replica that
answers again rejoins automatically.

Threading: accept loop + thread per client connection + one probe
thread, all blocking (the router holds no index data and does no
computation — it is pure I/O plumbing).  Backend connections are owned
per connection thread, so no socket is ever shared or used under a
lock.
"""

from __future__ import annotations

import itertools
import logging
import os
import socket
import threading
from dataclasses import dataclass
from typing import Any
from urllib.parse import urlencode

from repro.analysis import racecheck
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import BadRequestError, PayloadTooLargeError
from repro.gateway.client import ClientResponse, GatewayClient
from repro.gateway.http import (
    HEAD_TERMINATOR,
    Request,
    Response,
    build_response,
    parse_request_head,
)

logger = logging.getLogger("repro.cluster.router")

#: Paths the router answers itself rather than forwarding.
_LOCAL_PATHS = ("/v1/healthz", "/v1/cluster")

#: Hop-by-hop / recomputed headers never forwarded to a replica.
_HOP_HEADERS = frozenset({"connection", "host", "content-length"})


@dataclass
class ReplicaSpec:
    """Where one replica gateway listens."""

    replica_id: str
    host: str
    port: int
    pid: int = 0


@dataclass
class RouterConfig:
    host: str = "127.0.0.1"
    port: int = 0
    #: Seconds between health-probe sweeps.
    probe_interval: float = 0.25
    probe_timeout: float = 1.0
    #: Consecutive failed probes before a replica is ejected.
    fail_threshold: int = 3
    vnodes: int = DEFAULT_VNODES
    forward_timeout: float = 30.0
    max_header_bytes: int = 16384
    #: Bodies past this are refused with 413 before being buffered;
    #: deliberately above the replica gateway's own (authoritative)
    #: limit so the router cap only guards the router's memory.
    max_body_bytes: int = 8 * 1024 * 1024
    idle_timeout_seconds: float = 30.0


class _ReplicaState:
    """Mutable per-replica bookkeeping (guarded by the router lock)."""

    def __init__(self, spec: ReplicaSpec) -> None:
        self.spec = spec
        self.failures = 0
        self.in_ring = False
        self.draining = False
        self.replaying = False
        self.diverged = False
        self.ejected = False
        self.versions: dict[str, int] | None = None
        self.last_error = ""

    def snapshot(self) -> dict[str, Any]:
        return {
            "replica_id": self.spec.replica_id,
            "host": self.spec.host,
            "port": self.spec.port,
            "pid": self.spec.pid,
            "in_ring": self.in_ring,
            "draining": self.draining,
            "replaying": self.replaying,
            "diverged": self.diverged,
            "ejected": self.ejected,
            "failures": self.failures,
            "versions": self.versions,
            "last_error": self.last_error,
        }


class Router:
    """Serve one routed port in front of N replica gateways.

    >>> # doctest-style sketch; tests boot real replicas behind it
    >>> Router([ReplicaSpec("r0", "127.0.0.1", 8101)])  # doctest: +ELLIPSIS
    <repro.cluster.router.Router object at ...>
    """

    def __init__(self, replicas: list[ReplicaSpec],
                 config: RouterConfig | None = None) -> None:
        self.config = config or RouterConfig()
        self._lock = racecheck.make_lock("cluster.router")
        self._states: dict[str, _ReplicaState] = {}
        self._ring = HashRing(vnodes=self.config.vnodes)
        self._sock: socket.socket | None = None
        self.port: int | None = None
        self._accept_thread: threading.Thread | None = None
        self._probe_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conns: set[socket.socket] = set()
        self._closed = threading.Event()
        self._ids = itertools.count(1)
        self.stats = {
            "requests": 0, "forwarded": 0, "failovers": 0,
            "writes": 0, "write_fanouts": 0, "ejections": 0,
            "rejoins": 0, "unroutable": 0, "probe_sweeps": 0,
        }
        for spec in replicas:
            self.add_replica(spec)

    # -- membership --------------------------------------------------------

    def add_replica(self, spec: ReplicaSpec) -> None:
        """Admit a replica optimistically; probes confirm or eject it."""
        with self._lock:
            state = self._states.get(spec.replica_id)
            if state is not None and state.diverged:
                return  # a diverged replica can never come back
            self._states[spec.replica_id] = _ReplicaState(spec)
            self._states[spec.replica_id].in_ring = True
            self._ring.add(spec.replica_id)

    def _eject(self, replica_id: str, reason: str, *,
               diverged: bool = False) -> None:
        with self._lock:
            state = self._states.get(replica_id)
            if state is None:
                return
            state.last_error = reason
            state.diverged = state.diverged or diverged
            if not state.in_ring:
                return
            state.in_ring = False
            state.ejected = True
            self._ring.remove(replica_id)
            self.stats["ejections"] += 1
            survivors = len(self._ring)
        logger.warning("ejected replica %s (%s); %d replica(s) remain",
                       replica_id, reason, survivors)

    def _rejoin(self, replica_id: str) -> None:
        with self._lock:
            state = self._states.get(replica_id)
            if state is None or state.in_ring or state.diverged or \
                    state.draining or state.replaying:
                return
            state.in_ring = True
            state.ejected = False
            state.failures = 0
            self._ring.add(replica_id)
            self.stats["rejoins"] += 1
        logger.info("replica %s rejoined the ring", replica_id)

    def _mark_unreachable(self, replica_id: str, error: str) -> None:
        """A forwarding attempt hit a transport error: drop it now.

        The probe loop re-admits the replica if it was a blip; a
        SIGKILLed process stays out.  Dropping immediately (instead of
        waiting ``fail_threshold`` probes) keeps later requests from
        re-discovering the corpse one timeout at a time.
        """
        self._eject(replica_id, f"unreachable while forwarding: {error}")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Router":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.config.host, self.config.port))
            sock.listen(128)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="router-accept", daemon=True)
        self._accept_thread.start()
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="router-probe", daemon=True)
        self._probe_thread.start()
        logger.info("router listening on %s:%d",
                    self.config.host, self.port)
        return self

    def stop(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._sock is not None:
            # shutdown() wakes the thread blocked in accept(); close()
            # alone leaves it parked (and the LISTEN socket alive) on
            # Linux.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        # Unblock connection threads parked in recv() so stop() never
        # waits out the idle timeout.
        with self._lock:
            conns = list(self._conns)
            conn_threads = list(self._conn_threads)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        for thread in (self._accept_thread, self._probe_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        for thread in conn_threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- health probing ----------------------------------------------------

    def _probe_loop(self) -> None:
        clients: dict[str, GatewayClient] = {}
        try:
            while not self._closed.wait(self.config.probe_interval):
                with self._lock:
                    specs = [state.spec
                             for state in self._states.values()
                             if not state.diverged]
                    self.stats["probe_sweeps"] += 1
                for spec in specs:
                    self._probe_one(spec, clients)
        finally:
            for client in clients.values():
                client.close()

    def _probe_one(self, spec: ReplicaSpec,
                   clients: dict[str, GatewayClient]) -> None:
        client = clients.get(spec.replica_id)
        if client is None:
            client = GatewayClient(spec.host, spec.port,
                                   timeout=self.config.probe_timeout,
                                   reconnect_wait=0.0)
            clients[spec.replica_id] = client
        try:
            response = client.healthz()
            payload = response.json()
        except Exception as exc:  # noqa: BLE001 - any probe failure counts
            client.close()
            with self._lock:
                state = self._states.get(spec.replica_id)
                if state is None:
                    return
                state.failures += 1
                state.last_error = f"probe: {exc}"
                failures = state.failures
                in_ring = state.in_ring
            if in_ring and failures >= self.config.fail_threshold:
                self._eject(spec.replica_id,
                            f"{failures} consecutive probe failures")
            return
        # Any non-200 from a live process means "alive but not taking
        # traffic": an explicit draining healthz, or the connection-shed
        # 503 a draining/overloaded gateway answers new sockets with.
        # Hold it out of the ring without the ejection stigma — it
        # rejoins the moment probes see 200 again.
        draining = response.status != 200
        replaying = bool(payload.get("ingest", {}).get("replaying"))
        with self._lock:
            state = self._states.get(spec.replica_id)
            if state is None:
                return
            state.failures = 0
            state.draining = draining
            state.replaying = replaying
            versions = payload.get("versions")
            if isinstance(versions, dict):
                state.versions = versions
            should_hold_out = draining or replaying
            in_ring = state.in_ring
            if should_hold_out and in_ring:
                state.in_ring = False
                self._ring.remove(spec.replica_id)
        if draining and in_ring:
            logger.info("replica %s draining; removed from ring",
                        spec.replica_id)
        elif replaying and in_ring:
            logger.info("replica %s replaying its WAL; held out of ring",
                        spec.replica_id)
        elif not in_ring and not draining and not replaying:
            self._rejoin(spec.replica_id)

    # -- request plumbing --------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed: shutting down
            if self._closed.is_set():
                conn.close()
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="router-conn", daemon=True)
            with self._lock:
                self._conn_threads.add(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        backends: dict[str, GatewayClient] = {}
        buffer = b""
        with self._lock:
            self._conns.add(conn)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(self.config.idle_timeout_seconds)
            while not self._closed.is_set():
                try:
                    request, buffer = self._read_request(conn, buffer)
                except (ConnectionError, OSError):
                    return
                except PayloadTooLargeError as exc:
                    self._write_response(conn, Response(
                        status=413,
                        payload={"error": {"code": "request_too_large",
                                           "message": str(exc)}},
                        close=True), keep_alive=False)
                    return
                except BadRequestError as exc:
                    self._write_response(conn, Response(
                        status=400,
                        payload={"error": {"code": "bad_request",
                                           "message": str(exc)}},
                        close=True), keep_alive=False)
                    return
                if request is None:
                    return  # clean EOF between requests
                response = self._handle(request, backends)
                keep_alive = request.keep_alive and not response.close
                try:
                    self._write_response(
                        conn, response, keep_alive=keep_alive,
                        head_only=request.method == "HEAD")
                except (ConnectionError, OSError):
                    return
                if not keep_alive:
                    return
        finally:
            conn.close()
            with self._lock:
                self._conns.discard(conn)
                self._conn_threads.discard(threading.current_thread())
            for client in backends.values():
                client.close()

    def _read_request(self, conn: socket.socket, buffer: bytes
                      ) -> tuple[Request | None, bytes]:
        while HEAD_TERMINATOR not in buffer:
            chunk = conn.recv(65536)
            if not chunk:
                if buffer:
                    raise BadRequestError("truncated request head")
                return None, b""
            buffer += chunk
            # Only the head is size-capped here; a body that arrived in
            # the same recv as its head is fine (it is length-checked
            # against Content-Length below).
            if HEAD_TERMINATOR not in buffer and \
                    len(buffer) > self.config.max_header_bytes + 4096:
                raise BadRequestError("request head too large")
        head, _, buffer = buffer.partition(HEAD_TERMINATOR)
        request = parse_request_head(
            head + HEAD_TERMINATOR,
            max_header_bytes=self.config.max_header_bytes)
        length = request.content_length
        if length > self.config.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit")
        while len(buffer) < length:
            chunk = conn.recv(65536)
            if not chunk:
                raise BadRequestError("truncated request body")
            buffer += chunk
        request.body, buffer = buffer[:length], buffer[length:]
        return request, buffer

    def _write_response(self, conn: socket.socket, response: Response,
                        *, keep_alive: bool,
                        head_only: bool = False) -> None:
        conn.sendall(build_response(
            response, request_id=f"router-{next(self._ids):06x}",
            keep_alive=keep_alive, head_only=head_only))

    # -- routing -----------------------------------------------------------

    @staticmethod
    def routing_key(request: Request) -> bytes:
        """The affinity key: path + sorted query parameters.

        Sorting makes ``?a=1&b=2`` and ``?b=2&a=1`` the same key, which
        is the same normalization the replica's cache key performs — so
        ring affinity and L1 residency agree.
        """
        query = urlencode(sorted(request.params.items()))
        return f"{request.path}?{query}".encode("utf-8")

    def _handle(self, request: Request,
                backends: dict[str, GatewayClient]) -> Response:
        with self._lock:
            self.stats["requests"] += 1
        if request.path in _LOCAL_PATHS:
            return self._local(request)
        if request.method == "POST" and request.path == "/v1/ingest":
            return self._forward_write(request, backends)
        return self._forward_read(request, backends)

    def _backend(self, backends: dict[str, GatewayClient],
                 spec: ReplicaSpec) -> GatewayClient:
        client = backends.get(spec.replica_id)
        if client is None:
            # reconnect_wait=0: a dead replica should fail over to the
            # next one immediately, not be re-dialled for a second.
            client = GatewayClient(spec.host, spec.port,
                                   timeout=self.config.forward_timeout,
                                   reconnect_wait=0.0)
            backends[spec.replica_id] = client
        return client

    @staticmethod
    def _forward_headers(request: Request) -> dict[str, str]:
        return {name: value for name, value in request.headers.items()
                if name not in _HOP_HEADERS}

    @staticmethod
    def _to_response(upstream: ClientResponse) -> Response:
        return Response(
            status=upstream.status,
            text=upstream.body.decode("utf-8", "replace"),
            content_type=upstream.headers.get(
                "content-type", "application/json"),
            headers={"X-Replica-Request-Id": upstream.request_id},
        )

    def _forward_read(self, request: Request,
                      backends: dict[str, GatewayClient]) -> Response:
        key = self.routing_key(request)
        with self._lock:
            preference = self._ring.preference(key)
            specs = [self._states[replica_id].spec
                     for replica_id in preference
                     if replica_id in self._states]
        for spec in specs:
            client = self._backend(backends, spec)
            try:
                upstream = client.request(
                    request.method, request.path, params=request.params,
                    headers=self._forward_headers(request),
                    body=request.body)
            except (ConnectionError, OSError) as exc:
                self._mark_unreachable(spec.replica_id, str(exc))
                with self._lock:
                    self.stats["failovers"] += 1
                continue
            with self._lock:
                self.stats["forwarded"] += 1
            response = self._to_response(upstream)
            response.headers["X-Replica"] = spec.replica_id
            return response
        with self._lock:
            self.stats["unroutable"] += 1
        return Response(status=503, payload={"error": {
            "code": "no_replicas",
            "message": "no healthy replica could serve the request",
        }}, headers={"Retry-After": "1"})

    def _forward_write(self, request: Request,
                       backends: dict[str, GatewayClient]) -> Response:
        """Write-all fan-out: every in-ring replica applies the batch.

        A replica that misses a committed batch has diverged and can
        never rejoin, whichever way it missed it:

        * a transport failure mid-write — whether or not it committed,
          the router can no longer prove its corpus matches the others';
        * a non-2xx answer while other replicas committed — it rejected
          (or failed) a batch the cluster applied;
        * being out of the ring (probe-ejected, draining, or replaying
          its WAL) while the batch committed — it never saw the write
          at all, so rejoining would serve a stale corpus.

        Only a batch every reached replica rejects (a deterministic
        client error, e.g. a duplicate) leaves membership untouched.
        """
        with self._lock:
            self.stats["writes"] += 1
            specs = sorted(
                (state.spec for state in self._states.values()
                 if state.in_ring),
                key=lambda spec: spec.replica_id)
            held_out = [replica_id
                        for replica_id, state in self._states.items()
                        if not state.in_ring and not state.diverged]
        results: list[tuple[ReplicaSpec, ClientResponse]] = []
        for spec in specs:
            client = self._backend(backends, spec)
            try:
                upstream = client.request(
                    "POST", request.path, params=request.params,
                    headers=self._forward_headers(request),
                    body=request.body)
            except (ConnectionError, OSError) as exc:
                self._eject(spec.replica_id,
                            f"missed a write: {exc}", diverged=True)
                continue
            with self._lock:
                self.stats["write_fanouts"] += 1
            results.append((spec, upstream))
        if not results:
            with self._lock:
                self.stats["unroutable"] += 1
            return Response(status=503, payload={"error": {
                "code": "no_replicas",
                "message": "no healthy replica accepted the write",
            }}, headers={"Retry-After": "1"})
        committed = [(spec, upstream) for spec, upstream in results
                     if 200 <= upstream.status < 300]
        if committed:
            for spec, upstream in results:
                if not 200 <= upstream.status < 300:
                    self._eject(
                        spec.replica_id,
                        f"write failed with HTTP {upstream.status} "
                        f"while {len(committed)} replica(s) committed",
                        diverged=True)
            # _eject on an out-of-ring replica only stamps the diverged
            # flag (no ejection stats) — exactly the rejoin bar needed.
            for replica_id in held_out:
                self._eject(replica_id,
                            "held out of the ring while a write "
                            "committed", diverged=True)
            chosen_spec, chosen = committed[0]
        else:
            chosen_spec, chosen = results[0]
        response = self._to_response(chosen)
        response.headers["X-Replica"] = chosen_spec.replica_id
        response.headers["X-Cluster-Write-Replicas"] = str(
            len(committed) if committed else len(results))
        return response

    # -- router-local endpoints -------------------------------------------

    def _local(self, request: Request) -> Response:
        if request.path == "/v1/healthz":
            snapshot = self.cluster_snapshot()
            status = 200 if snapshot["in_ring"] else 503
            return Response(status=status, payload={
                "status": "ok" if snapshot["in_ring"] else "no_replicas",
                "role": "router",
                "replicas": snapshot["in_ring"],
            })
        return Response(payload=self.cluster_snapshot())

    def cluster_snapshot(self) -> dict[str, Any]:
        with self._lock:
            states = [state.snapshot()
                      for state in self._states.values()]
            stats = dict(self.stats)
            in_ring = len(self._ring)
        states.sort(key=lambda state: state["replica_id"])
        return {
            "role": "router",
            "pid": os.getpid(),
            "in_ring": in_ring,
            "replicas": states,
            "stats": stats,
        }


def run_router(replicas: list[ReplicaSpec],
               config: RouterConfig | None = None) -> int:
    """Blocking CLI entry point: route until SIGTERM/SIGINT."""
    import signal

    router = Router(replicas, config).start()
    stop = threading.Event()

    def _signalled(signum: int, frame: Any) -> None:
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _signalled)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    print(f"router listening on "
          f"http://{router.config.host}:{router.port}", flush=True)
    stop.wait()
    router.stop()
    print("router stopped", flush=True)
    return 0

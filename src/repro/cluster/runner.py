"""Boot a whole serving cluster from one command.

``repro-covidkg cluster --replicas N`` turns into:

1. an in-process :class:`~repro.cluster.cacheserver.SharedCacheServer`
   (the shared L2 result cache, doubling as the replica coordinator);
2. ``N`` replica gateways, each a ``repro-covidkg gateway`` subprocess
   serving the *same* saved system with ``--shared-cache`` pointing at
   the cache server — every replica registers itself with the
   coordinator once its socket is bound;
3. an in-process :class:`~repro.cluster.router.Router` in front of the
   replicas discovered from the coordinator.

The replicas share one immutable on-disk system artifact (given via
``--system``, or generated once and saved to a scratch directory), so
they all answer identically until ingest traffic — which the router
fans out to all of them — moves them forward in lockstep.

The runner is also the test/bench harness for the cluster: it exposes
the router, the cache server, and the replica ``Popen`` handles so a
test can SIGKILL a replica mid-load and assert the failover behaved.
"""

from __future__ import annotations

import logging
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.cluster.cacheclient import SharedCacheClient
from repro.cluster.cacheserver import SharedCacheServer
from repro.cluster.router import ReplicaSpec, Router, RouterConfig
from repro.errors import GatewayError

logger = logging.getLogger("repro.cluster.runner")


@dataclass
class ClusterConfig:
    replicas: int = 2
    host: str = "127.0.0.1"
    #: Router (client-facing) port; 0 picks a free one.
    port: int = 0
    #: Saved system directory every replica loads; ``None`` generates a
    #: synthetic corpus once and saves it to a scratch directory.
    system_dir: str | None = None
    generate: int = 60
    shards: int = 4
    seed: int = 0
    workers: int = 4
    startup_timeout: float = 120.0
    probe_interval: float = 0.25
    fail_threshold: int = 3
    #: Where replica stdout/stderr logs land; ``None`` uses the scratch
    #: directory.
    log_dir: str | None = None


class ClusterRunner:
    """Own the lifecycle of cache server + replicas + router."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.replicas < 1:
            raise GatewayError("a cluster needs at least one replica")
        self.cache_server: SharedCacheServer | None = None
        self.router: Router | None = None
        self.processes: dict[str, subprocess.Popen] = {}
        self.log_paths: dict[str, Path] = {}
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._log_handles: list[Any] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def router_port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    def start(self) -> "ClusterRunner":
        try:
            return self._start()
        except BaseException:
            self.stop()
            raise

    def _start(self) -> "ClusterRunner":
        config = self.config
        self._scratch = tempfile.TemporaryDirectory(
            prefix="covidkg-cluster-")
        scratch = Path(self._scratch.name)
        system_dir = config.system_dir or str(
            self._build_system(scratch / "system"))
        self.cache_server = SharedCacheServer(host=config.host).start()
        log_dir = Path(config.log_dir) if config.log_dir else scratch
        log_dir.mkdir(parents=True, exist_ok=True)
        for index in range(config.replicas):
            self._spawn_replica(f"r{index}", system_dir, log_dir)
        specs = self._await_registration()
        self.router = Router(specs, RouterConfig(
            host=config.host, port=config.port,
            probe_interval=config.probe_interval,
            fail_threshold=config.fail_threshold,
        )).start()
        return self

    def _build_system(self, directory: Path) -> Path:
        """Generate + save the shared corpus the replicas will load."""
        from repro.api.persistence import save_system
        from repro.api.system import CovidKG, CovidKGConfig
        from repro.corpus.generator import CorpusGenerator, GeneratorConfig

        config = self.config
        logger.info("generating %d synthetic papers for the cluster",
                    config.generate)
        system = CovidKG(CovidKGConfig(num_shards=config.shards))
        papers = CorpusGenerator(GeneratorConfig(
            seed=config.seed, papers_per_week=25,
        )).papers(config.generate)
        system.ingest(papers)
        return save_system(system, directory)

    def _spawn_replica(self, replica_id: str, system_dir: str,
                       log_dir: Path) -> None:
        assert self.cache_server is not None
        config = self.config
        log_path = log_dir / f"replica-{replica_id}.log"
        handle = open(log_path, "wb")
        self._log_handles.append(handle)
        env = dict(os.environ)
        # Children must resolve the same ``repro`` package as the
        # parent regardless of how the parent was launched.
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = package_root + (
                os.pathsep + existing if existing else "")
        command = [
            sys.executable, "-m", "repro.cli", "gateway",
            "--system", system_dir,
            "--host", config.host, "--port", "0",
            "--workers", str(config.workers),
            "--shared-cache", self.cache_server.address,
            "--replica-id", replica_id,
        ]
        process = subprocess.Popen(
            command, stdout=handle, stderr=subprocess.STDOUT, env=env)
        self.processes[replica_id] = process
        self.log_paths[replica_id] = log_path
        logger.info("replica %s spawned (pid %d, log %s)",
                    replica_id, process.pid, log_path)

    def _await_registration(self) -> list[ReplicaSpec]:
        """Block until every replica registered with the coordinator."""
        assert self.cache_server is not None
        client = SharedCacheClient(self.cache_server.address)
        deadline = time.monotonic() + self.config.startup_timeout
        try:
            while True:
                records = client.list_replicas()
                if len(records) >= self.config.replicas:
                    return [ReplicaSpec(
                        replica_id=record["replica_id"],
                        host=record["host"], port=record["port"],
                        pid=record.get("pid", 0),
                    ) for record in records]
                for replica_id, process in self.processes.items():
                    if process.poll() is not None:
                        raise GatewayError(
                            f"replica {replica_id} exited with code "
                            f"{process.returncode} before registering "
                            f"(log: {self.log_paths[replica_id]})")
                if time.monotonic() > deadline:
                    raise GatewayError(
                        f"only {len(records)} of "
                        f"{self.config.replicas} replicas registered "
                        f"within {self.config.startup_timeout:.0f}s")
                time.sleep(0.1)
        finally:
            client.close()

    def kill_replica(self, replica_id: str) -> None:
        """SIGKILL one replica (failover tests/benchmarks)."""
        process = self.processes[replica_id]
        process.kill()
        process.wait(timeout=10.0)

    def stop(self) -> None:
        for process in self.processes.values():
            if process.poll() is None:
                process.terminate()
        for process in self.processes.values():
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=10.0)
        if self.router is not None:
            self.router.stop()
        if self.cache_server is not None:
            self.cache_server.stop()
        for handle in self._log_handles:
            try:
                handle.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._log_handles.clear()
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None

    def __enter__(self) -> "ClusterRunner":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_cluster(config: ClusterConfig) -> int:
    """Blocking CLI entry point: serve the cluster until SIGTERM/SIGINT."""
    import threading

    runner = ClusterRunner(config)
    try:
        runner.start()
    except GatewayError as exc:
        print(f"cluster failed to start: {exc}", file=sys.stderr,
              flush=True)
        runner.stop()
        return 1
    stop = threading.Event()

    def _signalled(signum: int, frame: Any) -> None:
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _signalled)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    assert runner.cache_server is not None
    print(f"cluster ready: router on "
          f"http://{config.host}:{runner.router_port} "
          f"({config.replicas} replica(s), shared cache on "
          f"{runner.cache_server.address})", flush=True)
    stop.wait()
    print("cluster stopping ...", flush=True)
    runner.stop()
    print("cluster stopped", flush=True)
    return 0

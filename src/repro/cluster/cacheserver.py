"""The shared result-cache server (and cluster coordinator).

One small stdlib-socket process serves every replica in the cluster:

* **cache** — an LRU + TTL map of ``(engine, normalized request key)``
  to a pickled result page, each entry stamped with the data-version
  snapshot it was computed against.  A ``GET`` carries the reader's
  snapshot and hits only on an exact match, so a replica that has not
  applied an ingest yet can never read a page from the future — and a
  replica that has can never read one from the past;
* **invalidation** — ``INVAL`` is the version-counter broadcast an
  ingest commit/rollback sends: entries of that engine stamped with a
  different snapshot are purged eagerly (the ``GET``-side equality
  check keeps correctness even if a broadcast is lost);
* **coordination** — replicas ``REGISTER`` themselves (id, host, port,
  pid) and the router discovers the topology with ``LIST``.

Connections are handled thread-per-client: a cluster has a handful of
replicas with one connection per worker thread each, so the thread
count is bounded and tiny, and blocking handlers keep the server free
of event-loop state.  All shared state sits behind one lock; every
operation is a few dict moves, so the lock is never held across I/O.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.analysis import racecheck
from repro.cluster import protocol as wire

logger = logging.getLogger("repro.cluster.cache")

#: Cache entry: versions snapshot, pickled value, absolute expiry.
_Entry = tuple[tuple[int, ...], bytes, float]


class SharedCacheServer:
    """Serve the cross-process result cache on one TCP socket.

    >>> server = SharedCacheServer(port=0).start()
    >>> server.port > 0
    True
    >>> server.stop()
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_entries: int = 4096,
                 ttl_seconds: float = 300.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.host = host
        self.port = port
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[tuple[bytes, bytes], _Entry]" = \
            OrderedDict()
        self._replicas: dict[str, dict[str, Any]] = {}
        self._lock = racecheck.make_lock("cluster.cacheserver")
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conns: set[socket.socket] = set()
        self._closed = False
        self.stats = {
            "gets": 0, "hits": 0, "misses": 0, "puts": 0,
            "invalidations": 0, "purged": 0, "evictions": 0,
            "expirations": 0, "errors": 0, "connections": 0,
        }

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SharedCacheServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            sock.listen(128)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="cacheserver-accept",
            daemon=True)
        self._accept_thread.start()
        logger.info("shared cache listening on %s:%d",
                    self.host, self.port)
        return self

    def stop(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            conn_threads = list(self._conn_threads)
        if self._sock is not None:
            # shutdown() wakes the thread blocked in accept(); close()
            # alone leaves it parked (and the LISTEN socket alive) on
            # Linux.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        # Unblock connection threads parked in recv(); without this the
        # accepted sockets would keep the port busy past stop().
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in conn_threads:
            thread.join(timeout=5.0)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __enter__(self) -> "SharedCacheServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- accept/serve loops -----------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed: shutting down
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self.stats["connections"] += 1
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="cacheserver-conn", daemon=True)
            with self._lock:
                self._conn_threads.add(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._lock:
            self._conns.add(conn)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    op, fields = wire.read_frame(conn)
                except (ConnectionError, OSError):
                    return
                except wire.ProtocolError as exc:
                    with self._lock:
                        self.stats["errors"] += 1
                    try:
                        wire.write_frame(conn, wire.OP_ERROR,
                                         str(exc).encode("utf-8"))
                    except OSError:
                        pass
                    return
                try:
                    reply = self._dispatch(op, fields)
                except wire.ProtocolError as exc:
                    with self._lock:
                        self.stats["errors"] += 1
                    reply = (wire.OP_ERROR, [str(exc).encode("utf-8")])
                try:
                    wire.write_frame(conn, reply[0], *reply[1])
                except (ConnectionError, OSError):
                    return
        finally:
            conn.close()
            with self._lock:
                self._conns.discard(conn)
                self._conn_threads.discard(threading.current_thread())

    # -- operations -------------------------------------------------------

    def _dispatch(self, op: int,
                  fields: list[bytes]) -> tuple[int, list[bytes]]:
        if op == wire.OP_PING:
            return wire.OP_OK, []
        if op == wire.OP_GET:
            return self._op_get(fields)
        if op == wire.OP_PUT:
            return self._op_put(fields)
        if op == wire.OP_INVALIDATE:
            return self._op_invalidate(fields)
        if op == wire.OP_REGISTER:
            return self._op_register(fields)
        if op == wire.OP_DEREGISTER:
            return self._op_deregister(fields)
        if op == wire.OP_LIST:
            return self._op_list()
        if op == wire.OP_STATS:
            return self._op_stats()
        raise wire.ProtocolError(f"unknown opcode 0x{op:02x}")

    @staticmethod
    def _expect(fields: list[bytes], count: int, op: str) -> None:
        if len(fields) != count:
            raise wire.ProtocolError(
                f"{op} expects {count} field(s), got {len(fields)}")

    def _op_get(self, fields: list[bytes]) -> tuple[int, list[bytes]]:
        self._expect(fields, 3, "GET")
        engine, key, blob = fields
        versions = wire.unpack_versions(blob)
        now = self._clock()
        with self._lock:
            self.stats["gets"] += 1
            entry = self._entries.get((engine, key))
            if entry is None:
                self.stats["misses"] += 1
                return wire.OP_MISS, []
            stamped, value, expires_at = entry
            if stamped != versions:
                # The reader and the entry disagree about the data
                # generation; drop the entry only when the reader is
                # *newer* (the entry is garbage for everyone), keep it
                # when the reader lags (it may still serve the caught-up
                # replicas).
                self.stats["misses"] += 1
                if versions > stamped:
                    del self._entries[(engine, key)]
                    self.stats["purged"] += 1
                return wire.OP_MISS, []
            if now >= expires_at:
                del self._entries[(engine, key)]
                self.stats["expirations"] += 1
                self.stats["misses"] += 1
                return wire.OP_MISS, []
            self._entries.move_to_end((engine, key))
            self.stats["hits"] += 1
            return wire.OP_HIT, [value]

    def _op_put(self, fields: list[bytes]) -> tuple[int, list[bytes]]:
        self._expect(fields, 4, "PUT")
        engine, key, blob, value = fields
        versions = wire.unpack_versions(blob)
        now = self._clock()
        with self._lock:
            self.stats["puts"] += 1
            self._entries[(engine, key)] = (
                versions, value, now + self.ttl_seconds)
            self._entries.move_to_end((engine, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1
        return wire.OP_OK, []

    def _op_invalidate(self,
                       fields: list[bytes]) -> tuple[int, list[bytes]]:
        """Version-counter broadcast: purge the engine's stale entries."""
        self._expect(fields, 2, "INVAL")
        engine, blob = fields
        versions = wire.unpack_versions(blob)
        with self._lock:
            self.stats["invalidations"] += 1
            stale = [
                entry_key for entry_key, entry in self._entries.items()
                if entry_key[0] == engine and entry[0] != versions
            ]
            for entry_key in stale:
                del self._entries[entry_key]
            self.stats["purged"] += len(stale)
        return wire.OP_OK, [str(len(stale)).encode("ascii")]

    # -- coordinator ------------------------------------------------------

    def _op_register(self,
                     fields: list[bytes]) -> tuple[int, list[bytes]]:
        self._expect(fields, 1, "REGISTER")
        try:
            info = json.loads(fields[0].decode("utf-8"))
            replica_id = str(info["replica_id"])
            host = str(info["host"])
            port = int(info["port"])
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise wire.ProtocolError(
                f"bad REGISTER payload: {exc}") from None
        record = {
            "replica_id": replica_id, "host": host, "port": port,
            "pid": int(info.get("pid", 0)),
        }
        with self._lock:
            self._replicas[replica_id] = record
        logger.info("replica %s registered at %s:%d",
                    replica_id, host, port)
        return wire.OP_OK, []

    def _op_deregister(self,
                       fields: list[bytes]) -> tuple[int, list[bytes]]:
        self._expect(fields, 1, "DEREGISTER")
        replica_id = fields[0].decode("utf-8", "replace")
        with self._lock:
            self._replicas.pop(replica_id, None)
        logger.info("replica %s deregistered", replica_id)
        return wire.OP_OK, []

    def _op_list(self) -> tuple[int, list[bytes]]:
        with self._lock:
            replicas = sorted(self._replicas.values(),
                              key=lambda r: r["replica_id"])
        return wire.OP_OK, [json.dumps(replicas).encode("utf-8")]

    def _op_stats(self) -> tuple[int, list[bytes]]:
        with self._lock:
            payload = {
                **self.stats,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl_seconds,
                "replicas": len(self._replicas),
            }
        return wire.OP_OK, [json.dumps(payload).encode("utf-8")]

    # -- introspection (in-process callers/tests) -------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {**self.stats, "entries": len(self._entries),
                    "replicas": len(self._replicas)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def run_cache_server(host: str, port: int) -> int:
    """Blocking CLI entry point: serve until SIGTERM/SIGINT."""
    import signal

    server = SharedCacheServer(host=host, port=port).start()
    stop = threading.Event()

    def _signalled(signum: int, frame: Any) -> None:
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _signalled)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    print(f"cache server listening on {server.host}:{server.port}",
          flush=True)
    stop.wait()
    server.stop()
    print("cache server stopped", flush=True)
    return 0

"""Consistent-hash routing: the same request keeps hitting the same L1.

A classic consistent-hash ring (Karger et al.): every replica owns
``vnodes`` points on a 64-bit circle; a request key hashes to a point
and walks clockwise to the first replica.  Properties the router needs:

* **affinity** — the same normalized request always lands on the same
  replica, so that replica's in-process L1 stays warm for it;
* **minimal disruption** — ejecting a replica re-spreads only *its*
  hash arcs over the survivors (~1/N of keys move), instead of
  reshuffling every assignment the way ``hash(key) % N`` would;
* **failover order** — continuing the clockwise walk past the first
  owner yields a deterministic preference list, so a request whose
  primary just died retries on a stable secondary (which will also be
  the key's new primary after ejection — its L1 warms once, not per
  retry).

Hashing is :func:`hashlib.blake2b` (stable across processes and runs —
``hash()`` is salted per process and useless for routing).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

#: Points each replica owns on the ring.  More vnodes → smoother key
#: spread between replicas (stddev ~ 1/sqrt(vnodes)) at O(vnodes·N)
#: ring-build cost; 64 keeps imbalance under ~15% for small clusters.
DEFAULT_VNODES = 64


def stable_hash(data: bytes) -> int:
    """64-bit process-stable hash of ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """An immutable-ish consistent-hash ring over replica ids.

    >>> ring = HashRing(["r0", "r1", "r2"])
    >>> ring.route(b"query: vaccines") in {"r0", "r1", "r2"}
    True
    >>> ring.route(b"query: vaccines") == ring.route(b"query: vaccines")
    True
    """

    def __init__(self, replica_ids: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._replicas: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for replica_id in replica_ids:
            self.add(replica_id)

    # -- membership -------------------------------------------------------

    def add(self, replica_id: str) -> None:
        if replica_id in self._replicas:
            return
        self._replicas.add(replica_id)
        self._rebuild()

    def remove(self, replica_id: str) -> None:
        if replica_id not in self._replicas:
            return
        self._replicas.discard(replica_id)
        self._rebuild()

    def _rebuild(self) -> None:
        points: list[tuple[int, str]] = []
        for replica_id in self._replicas:
            seed = replica_id.encode("utf-8")
            for vnode in range(self.vnodes):
                points.append((
                    stable_hash(seed + b"#" + str(vnode).encode()),
                    replica_id,
                ))
        # Ties (astronomically unlikely) break on replica id so every
        # process builds the identical ring.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @property
    def replicas(self) -> set[str]:
        return set(self._replicas)

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, replica_id: str) -> bool:
        return replica_id in self._replicas

    # -- routing ----------------------------------------------------------

    def route(self, key: bytes) -> str | None:
        """The replica owning ``key``, or ``None`` on an empty ring."""
        preference = self.preference(key, 1)
        return preference[0] if preference else None

    def preference(self, key: bytes, count: int | None = None
                   ) -> list[str]:
        """The first ``count`` distinct replicas clockwise from ``key``.

        ``None`` returns every replica — the router's failover order.
        """
        if not self._points:
            return []
        want = len(self._replicas) if count is None else \
            min(count, len(self._replicas))
        start = bisect.bisect(self._points, stable_hash(key))
        ordered: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                ordered.append(owner)
                if len(ordered) == want:
                    break
        return ordered

    def spread(self, keys: Iterable[bytes]) -> dict[str, int]:
        """Keys-per-replica histogram (balance diagnostics/tests)."""
        counts = {replica_id: 0 for replica_id in self._replicas}
        for key in keys:
            owner = self.route(key)
            if owner is not None:
                counts[owner] += 1
        return counts

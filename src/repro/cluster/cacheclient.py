"""Blocking client for the shared result cache (replica side).

Design constraints, in order:

1. **The cache must never take a replica down.**  Every cache error —
   refused connection, torn frame, timeout — degrades to a miss (or a
   dropped write) and opens a short circuit breaker; the replica keeps
   serving from its in-process L1 and recomputes what it must.
2. **A hit crosses the process boundary once.**  One request/response
   round trip on a persistent connection; the caller stores the value
   in its L1 so the next lookup never leaves the process.
3. **No socket I/O under a lock.**  Each worker thread keeps its own
   persistent connection (``threading.local``); only the breaker state
   and counters are shared, and the lock around them is never held
   across the wire.
"""

from __future__ import annotations

import json
import pickle
import socket
import threading
import time
from typing import Any, Callable

from repro.analysis import racecheck
from repro.cluster import protocol as wire
from repro.errors import GatewayError


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with a typed error."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise GatewayError(
            f"shared cache address must be host:port, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise GatewayError(
            f"bad shared cache port in {address!r}") from None
    return host, port


class SharedCacheClient:
    """One replica's connection to the shared cache/coordinator.

    ``breaker_seconds`` is the degradation window: after a transport
    failure every call answers as a miss/no-op without touching the
    socket until the window lapses, then a fresh connection is tried.
    Counters make the degradation observable in stats.
    """

    def __init__(self, address: str, timeout: float = 2.0,
                 breaker_seconds: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.breaker_seconds = breaker_seconds
        self._clock = clock
        self._local = threading.local()
        self._lock = racecheck.make_lock("cluster.cacheclient")
        self._broken_until = 0.0
        self.stats = {
            "hits": 0, "misses": 0, "puts": 0, "invalidations": 0,
            "errors": 0, "breaker_skips": 0, "connects": 0,
        }

    # -- connection management --------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except BaseException:
            sock.close()
            raise
        self._count("connects")
        return sock

    def _drop_connection(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._local.sock = None

    def close(self) -> None:
        """Close this thread's connection (others close on GC/exit)."""
        self._drop_connection()

    def __enter__(self) -> "SharedCacheClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def _breaker_open(self) -> bool:
        with self._lock:
            if self._clock() < self._broken_until:
                self.stats["breaker_skips"] += 1
                return True
        return False

    def _trip_breaker(self) -> None:
        with self._lock:
            self.stats["errors"] += 1
            self._broken_until = self._clock() + self.breaker_seconds

    def _call(self, op: int,
              *fields: bytes) -> tuple[int, list[bytes]] | None:
        """One round trip; ``None`` when degraded (breaker open/error).

        The frame is packed before any socket I/O: an oversized request
        (e.g. a huge key) is a deterministic client-side condition, so
        it degrades this one call without dropping a healthy connection
        or tripping the breaker for everyone else.  A dead persistent
        socket (cache server restarted between calls) gets one
        fresh-socket retry; a failure on a fresh connection opens the
        breaker instead.
        """
        try:
            payload = wire.pack_frame(op, *fields)
        except wire.ProtocolError:
            self._count("errors")
            return None
        if self._breaker_open():
            return None
        for _ in (0, 1):
            sock = getattr(self._local, "sock", None)
            fresh = sock is None
            try:
                if sock is None:
                    sock = self._connect()
                    self._local.sock = sock
                sock.sendall(payload)
                return wire.read_frame(sock)
            except (ConnectionError, OSError, wire.ProtocolError):
                self._drop_connection()
                if fresh:
                    break
        self._trip_breaker()
        return None

    @staticmethod
    def _key_bytes(key: Any) -> bytes:
        """The L1 cache key, serialized canonically for the wire.

        ``repr`` of the normalized key tuple is deterministic for the
        str/int/bool/None parameter values requests are built from.
        """
        return repr(key).encode("utf-8")

    # -- cache operations --------------------------------------------------

    def get(self, engine: str, key: Any,
            versions: tuple[int, ...]) -> tuple[bool, Any]:
        """Look up one normalized request. Returns ``(hit, value)``."""
        reply = self._call(
            wire.OP_GET, engine.encode("utf-8"), self._key_bytes(key),
            wire.pack_versions(versions))
        if reply is None:
            return False, None
        op, fields = reply
        if op == wire.OP_HIT and fields:
            try:
                value = pickle.loads(fields[0])
            except Exception:
                self._count("errors")
                return False, None
            self._count("hits")
            return True, value
        self._count("misses")
        return False, None

    def put(self, engine: str, key: Any, versions: tuple[int, ...],
            value: Any) -> bool:
        """Publish one computed page; ``False`` when dropped (degraded)."""
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._count("errors")
            return False
        key_bytes = self._key_bytes(key)
        versions_blob = wire.pack_versions(versions)
        # 64 bytes covers the frame/field framing overhead.
        if len(blob) + len(key_bytes) + len(engine) + \
                len(versions_blob) + 64 > wire.MAX_FRAME_BYTES:
            # An oversized page (or key) is not cacheable, not an error.
            return False
        reply = self._call(
            wire.OP_PUT, engine.encode("utf-8"), key_bytes,
            versions_blob, blob)
        if reply is None or reply[0] != wire.OP_OK:
            return False
        self._count("puts")
        return True

    def invalidate(self, engine: str,
                   versions: tuple[int, ...]) -> int:
        """Broadcast the engine's post-commit version snapshot.

        Returns the number of entries the server purged (0 when
        degraded — the GET-side version equality check still protects
        correctness).
        """
        reply = self._call(wire.OP_INVALIDATE, engine.encode("utf-8"),
                           wire.pack_versions(versions))
        if reply is None or reply[0] != wire.OP_OK:
            return 0
        self._count("invalidations")
        try:
            return int(reply[1][0]) if reply[1] else 0
        except ValueError:
            return 0

    def ping(self) -> bool:
        reply = self._call(wire.OP_PING)
        return reply is not None and reply[0] == wire.OP_OK

    # -- coordinator operations -------------------------------------------

    def register(self, replica_id: str, host: str, port: int,
                 pid: int = 0) -> bool:
        payload = json.dumps({
            "replica_id": replica_id, "host": host, "port": port,
            "pid": pid,
        }).encode("utf-8")
        reply = self._call(wire.OP_REGISTER, payload)
        return reply is not None and reply[0] == wire.OP_OK

    def deregister(self, replica_id: str) -> bool:
        reply = self._call(wire.OP_DEREGISTER,
                           replica_id.encode("utf-8"))
        return reply is not None and reply[0] == wire.OP_OK

    def list_replicas(self) -> list[dict[str, Any]]:
        reply = self._call(wire.OP_LIST)
        if reply is None or reply[0] != wire.OP_OK or not reply[1]:
            return []
        try:
            replicas = json.loads(reply[1][0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._count("errors")
            return []
        return replicas if isinstance(replicas, list) else []

    def server_stats(self) -> dict[str, Any]:
        reply = self._call(wire.OP_STATS)
        if reply is None or reply[0] != wire.OP_OK or not reply[1]:
            return {}
        try:
            stats = json.loads(reply[1][0].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return stats if isinstance(stats, dict) else {}

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._lock:
            self.stats[name] += 1

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.stats)

"""The shared-cache wire protocol: length-prefixed binary frames.

One frame per message, both directions::

    +----------+--------+-----------------------------------------+
    | !I total | B op   | fields: (!I length, bytes) repeated     |
    +----------+--------+-----------------------------------------+

``total`` counts everything after the length prefix itself.  Fields
are opaque byte strings; higher layers give them meaning per opcode.
Keeping the framing sans-I/O (:func:`pack_frame` / :func:`unpack_frame`
are pure functions over bytes) makes it unit-testable without sockets,
and the same helpers serve the blocking client, the threaded server,
and the router's asyncio streams.

Requests
--------

========== ======================================= ==================
opcode      fields                                  reply
========== ======================================= ==================
``PING``    —                                       ``OK``
``GET``     engine, key, versions                   ``HIT value`` /
                                                    ``MISS``
``PUT``     engine, key, versions, value            ``OK``
``INVAL``   engine, versions                        ``OK purged``
``REGISTER``replica json                            ``OK``
``DEREG``   replica_id                              ``OK``
``LIST``    —                                       ``OK json``
``STATS``   —                                       ``OK json``
========== ======================================= ==================

``versions`` is the serving tier's data-version snapshot (the
docstore/KG counters a cached page was computed against), packed by
:func:`pack_versions`.  ``INVAL`` is the version-counter broadcast an
ingest commit/rollback sends: the server eagerly purges every entry of
that engine whose snapshot differs from the broadcast one (lazy
equality checks on ``GET`` keep correctness even when a broadcast is
lost).

Values are pickled Python objects.  That is a deliberate trust
boundary: the cache server is an internal tier that binds loopback (or
a private interface) and serves only this cluster's replicas — the
same stance ``multiprocessing`` takes for its connections.
"""

from __future__ import annotations

import socket
import struct
from typing import Iterable

from repro.errors import GatewayError

#: Protocol opcodes (one byte on the wire).
OP_PING = 0x01
OP_GET = 0x02
OP_PUT = 0x03
OP_INVALIDATE = 0x04
OP_REGISTER = 0x05
OP_DEREGISTER = 0x06
OP_LIST = 0x07
OP_STATS = 0x08

#: Reply opcodes.
OP_OK = 0x10
OP_HIT = 0x11
OP_MISS = 0x12
OP_ERROR = 0x1F

#: A frame (length prefix included) may not exceed this many bytes —
#: result pages are small; anything bigger is a protocol error, not a
#: cacheable value.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct("!I")
_OP = struct.Struct("!B")


class ProtocolError(GatewayError):
    """A malformed or oversized shared-cache frame."""


def pack_frame(op: int, *fields: bytes) -> bytes:
    """Serialize one message to wire bytes (length prefix included)."""
    body = bytearray(_OP.pack(op))
    for field in fields:
        body += _LEN.pack(len(field))
        body += field
    if len(body) + _LEN.size > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(body)) + bytes(body)


def unpack_frame(body: bytes) -> tuple[int, list[bytes]]:
    """Parse a frame body (the bytes after the length prefix)."""
    if not body:
        raise ProtocolError("empty frame")
    op = body[0]
    fields: list[bytes] = []
    offset = 1
    while offset < len(body):
        if offset + _LEN.size > len(body):
            raise ProtocolError("truncated field length")
        (length,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        if offset + length > len(body):
            raise ProtocolError("truncated field body")
        fields.append(body[offset:offset + length])
        offset += length
    return op, fields


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError``."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ConnectionError("cache peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, list[bytes]]:
    """Blocking read of one frame off a socket."""
    (length,) = _LEN.unpack(recv_exact(sock, _LEN.size))
    if length == 0 or length + _LEN.size > MAX_FRAME_BYTES:
        raise ProtocolError(f"bad frame length {length}")
    return unpack_frame(recv_exact(sock, length))


def write_frame(sock: socket.socket, op: int, *fields: bytes) -> None:
    sock.sendall(pack_frame(op, *fields))


# -- version snapshots ------------------------------------------------------

_VCOUNT = struct.Struct("!B")
_VITEM = struct.Struct("!q")


def pack_versions(versions: Iterable[int]) -> bytes:
    """A data-version snapshot as bytes (count byte + signed 64-bit each)."""
    items = tuple(int(v) for v in versions)
    if len(items) > 255:
        raise ProtocolError(f"{len(items)} version counters; max 255")
    return _VCOUNT.pack(len(items)) + b"".join(
        _VITEM.pack(item) for item in items)


def unpack_versions(blob: bytes) -> tuple[int, ...]:
    if not blob:
        raise ProtocolError("empty version blob")
    (count,) = _VCOUNT.unpack_from(blob, 0)
    if len(blob) != _VCOUNT.size + count * _VITEM.size:
        raise ProtocolError(
            f"version blob of {len(blob)} bytes does not hold "
            f"{count} counter(s)")
    return tuple(
        _VITEM.unpack_from(blob, _VCOUNT.size + i * _VITEM.size)[0]
        for i in range(count))

"""``repro.cluster`` — multi-replica serving for one CovidKG system.

Three layers turn the single-process stack (gateway → QueryService →
sharded docstore) into a horizontally scaled cluster:

* a **shared cross-process result cache**
  (:class:`~repro.cluster.cacheserver.SharedCacheServer` +
  :class:`~repro.cluster.cacheclient.SharedCacheClient`) — a small
  stdlib socket server speaking the length-prefixed binary protocol in
  :mod:`repro.cluster.protocol`, keyed by the serving tier's normalized
  request keys and invalidated by the docstore/KG version counters.
  Every replica keeps its in-process :class:`~repro.serve.cache.
  ResultCache` as an L1 in front, so a warm hit never crosses a process
  boundary twice.  The server doubles as the cluster **coordinator**:
  replicas register themselves and the router discovers them;
* a **cluster runner** (:class:`~repro.cluster.runner.ClusterRunner`,
  ``repro-covidkg cluster --replicas N``) that builds the system once,
  saves it, and boots N gateway replicas over those common shards;
* a **router** (:class:`~repro.cluster.router.Router`) doing
  consistent-hash request routing (:class:`~repro.cluster.ring.
  HashRing`) so the same normalized request lands on the same replica's
  warm L1, per-replica health probing via ``/v1/healthz`` (version
  counters, WAL replay status), and failover that ejects a replica
  which stops draining and re-spreads its hash range.

Submodules are imported lazily so that ``repro.serve`` can reach the
cache client without dragging the router (and through it the gateway)
into every import of the serving tier.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "HashRing",
    "Router",
    "RouterConfig",
    "ReplicaSpec",
    "SharedCacheClient",
    "SharedCacheServer",
    "ClusterRunner",
    "ClusterConfig",
]

_LAZY = {
    "HashRing": ("repro.cluster.ring", "HashRing"),
    "Router": ("repro.cluster.router", "Router"),
    "RouterConfig": ("repro.cluster.router", "RouterConfig"),
    "ReplicaSpec": ("repro.cluster.router", "ReplicaSpec"),
    "SharedCacheClient": ("repro.cluster.cacheclient",
                          "SharedCacheClient"),
    "SharedCacheServer": ("repro.cluster.cacheserver",
                          "SharedCacheServer"),
    "ClusterRunner": ("repro.cluster.runner", "ClusterRunner"),
    "ClusterConfig": ("repro.cluster.runner", "ClusterConfig"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)

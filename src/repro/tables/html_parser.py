"""HTML table fragment parser and post-processor (paper Section 3.1).

Built on :class:`html.parser.HTMLParser` from the standard library — no
external dependency.  The parser handles the structures that actually occur
in CORD-19 fragments:

* ``<table>``, ``<thead>``/``<tbody>``/``<tfoot>``, ``<tr>``, ``<td>``/``<th>``,
* ``colspan``/``rowspan`` (spanned cells are *expanded*, duplicating the
  text into every covered grid slot, so downstream feature extraction sees
  a rectangular grid),
* ``<caption>`` elements,
* nested inline markup inside cells (``<b>``, ``<sub>``, ``<br>``, ...),
* entity references (``&amp;`` etc., handled by ``convert_charrefs``).

The post-processor then cleans whitespace and drops fully-empty rows,
producing the "semi-structured, clean JSON" :class:`~repro.tables.model.Table`.
"""

from __future__ import annotations

import re
from html.parser import HTMLParser

from repro.errors import ParseError
from repro.tables.model import Cell, Row, Table

_WHITESPACE_RE = re.compile(r"\s+")


def _clean(text: str) -> str:
    return _WHITESPACE_RE.sub(" ", text).strip()


class _RawCell:
    __slots__ = ("parts", "colspan", "rowspan", "is_header")

    def __init__(self, colspan: int, rowspan: int, is_header: bool) -> None:
        self.parts: list[str] = []
        self.colspan = colspan
        self.rowspan = rowspan
        self.is_header = is_header

    @property
    def text(self) -> str:
        return _clean("".join(self.parts))


class _TableHTMLParser(HTMLParser):
    """Event-driven extraction of every ``<table>`` in a fragment."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.tables: list[list[list[_RawCell]]] = []
        self.captions: list[str] = []
        self._table_depth = 0
        self._current_rows: list[list[_RawCell]] | None = None
        self._current_row: list[_RawCell] | None = None
        self._current_cell: _RawCell | None = None
        self._caption_parts: list[str] | None = None
        self._current_caption = ""

    @staticmethod
    def _int_attr(attrs: list[tuple[str, str | None]], name: str) -> int:
        for key, value in attrs:
            if key == name and value:
                try:
                    return max(1, int(value))
                except ValueError:
                    return 1
        return 1

    def handle_starttag(self, tag: str,
                        attrs: list[tuple[str, str | None]]) -> None:
        if tag == "table":
            self._table_depth += 1
            if self._table_depth == 1:
                self._current_rows = []
                self._current_caption = ""
            return
        if self._table_depth != 1:
            return  # ignore content of nested tables beyond depth 1
        if tag == "caption":
            self._caption_parts = []
        elif tag == "tr":
            self._flush_row()
            self._current_row = []
        elif tag in ("td", "th"):
            self._flush_cell()
            if self._current_row is None:
                self._current_row = []  # tolerate missing <tr>
            self._current_cell = _RawCell(
                colspan=self._int_attr(attrs, "colspan"),
                rowspan=self._int_attr(attrs, "rowspan"),
                is_header=(tag == "th"),
            )
        elif tag == "br" and self._current_cell is not None:
            self._current_cell.parts.append(" ")

    def handle_endtag(self, tag: str) -> None:
        if tag == "table":
            if self._table_depth == 1:
                self._flush_row()
                if self._current_rows is not None:
                    self.tables.append(self._current_rows)
                    self.captions.append(self._current_caption)
                self._current_rows = None
            self._table_depth = max(0, self._table_depth - 1)
        elif self._table_depth != 1:
            return
        elif tag == "caption":
            if self._caption_parts is not None:
                self._current_caption = _clean("".join(self._caption_parts))
            self._caption_parts = None
        elif tag == "tr":
            self._flush_row()
        elif tag in ("td", "th"):
            self._flush_cell()

    def handle_data(self, data: str) -> None:
        if self._table_depth != 1:
            return
        if self._caption_parts is not None:
            self._caption_parts.append(data)
        elif self._current_cell is not None:
            self._current_cell.parts.append(data)

    def _flush_cell(self) -> None:
        if self._current_cell is not None and self._current_row is not None:
            self._current_row.append(self._current_cell)
        self._current_cell = None

    def _flush_row(self) -> None:
        self._flush_cell()
        if self._current_row is not None and self._current_rows is not None:
            if self._current_row:
                self._current_rows.append(self._current_row)
        self._current_row = None


def _expand_grid(raw_rows: list[list[_RawCell]]) -> list[Row]:
    """Expand colspan/rowspan into a rectangular grid of cells."""
    grid: list[list[Cell | None]] = []
    pending: dict[tuple[int, int], Cell] = {}  # (row, col) -> carried cell

    for row_index, raw_row in enumerate(raw_rows):
        row_cells: list[Cell | None] = []
        col = 0

        def place(cell: Cell) -> None:
            nonlocal col
            while pending.get((row_index, col)) is not None:
                row_cells.append(pending.pop((row_index, col)))
                col += 1
            row_cells.append(cell)
            col += 1

        for raw in raw_row:
            cell = Cell(
                text=raw.text,
                colspan=raw.colspan,
                rowspan=raw.rowspan,
                is_header=raw.is_header,
            )
            for span_col in range(raw.colspan):
                place(cell)
                # Register rowspan carries for the columns this cell covers.
                for extra_row in range(1, raw.rowspan):
                    pending[(row_index + extra_row, col - 1)] = cell
                del span_col
        # Trailing rowspan carries at the end of the row.
        while pending.get((row_index, col)) is not None:
            row_cells.append(pending.pop((row_index, col)))
            col += 1
        grid.append(row_cells)

    rows = []
    for row_cells in grid:
        cells = [cell for cell in row_cells if cell is not None]
        if any(cell.text for cell in cells):
            rows.append(Row(cells=list(cells)))
    return rows


def parse_html_tables(fragment: str, paper_id: str | None = None
                      ) -> list[Table]:
    """Parse every ``<table>`` in an HTML fragment into clean tables.

    Raises :class:`~repro.errors.ParseError` when no table is present.
    """
    parser = _TableHTMLParser()
    parser.feed(fragment or "")
    parser.close()
    if not parser.tables:
        raise ParseError("no <table> element found in fragment")
    tables = []
    for index, (raw_rows, caption) in enumerate(
        zip(parser.tables, parser.captions)
    ):
        rows = _expand_grid(raw_rows)
        # Rows made exclusively of <th> cells are header (metadata) rows —
        # the cheap structural label the post-processor can assign itself.
        for row in rows:
            if row.cells and all(cell.is_header for cell in row.cells):
                row.is_metadata = True
        tables.append(Table(
            rows=rows,
            caption=caption,
            paper_id=paper_id,
            table_id=f"t{index}",
        ))
    return tables


def parse_html_table(fragment: str, paper_id: str | None = None) -> Table:
    """Parse a fragment expected to contain exactly one table."""
    tables = parse_html_tables(fragment, paper_id=paper_id)
    if len(tables) > 1:
        raise ParseError(
            f"fragment contains {len(tables)} tables; use parse_html_tables"
        )
    return tables[0]

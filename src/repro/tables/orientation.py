"""Horizontal vs vertical table orientation detection.

The paper's evaluation (Section 3.3) reports classifier quality separately
for *horizontal* metadata (a header **row** above data rows) and *vertical*
metadata (a header **column** to the left of data columns).  The detector
scores both readings of a table and picks the more header-like axis.

For each candidate header line (first row, read horizontally; first
column, read vertically) the score combines:

* **wordiness** — fraction of non-numeric cells in the candidate header
  (real headers are words, data lines often are not), and
* **type contrast** — for each header cell, how numeric the values are
  that the cell would label (a textual header over numeric values is the
  strongest header signal there is).

Because many scientific tables carry *both* a header row and a key column,
the two readings often score close together; near-ties break toward
HORIZONTAL, by far the dominant layout in CORD-19, and VERTICAL wins only
with a clear margin.
"""

from __future__ import annotations

import enum
import re

from repro.tables.model import Table

_NUMERIC_RE = re.compile(r"^\s*[<>]?\s*-?\d+(\.\d+)?\s*%?\s*$")

#: How much better the vertical reading must score to beat horizontal.
VERTICAL_MARGIN = 0.1


class Orientation(enum.Enum):
    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _is_numeric(text: str) -> bool:
    return bool(_NUMERIC_RE.match(text))


def _header_score(header: list[str], body_slices: list[list[str]]) -> float:
    """Score a candidate header against the value slices it would label.

    ``body_slices[j]`` holds the values appearing under/after ``header[j]``.
    """
    if not header:
        return 0.0
    non_empty = [cell for cell in header if cell]
    if not non_empty:
        return 0.0
    wordiness = sum(
        1 for cell in non_empty if not _is_numeric(cell)
    ) / len(non_empty)

    contrast_scores = []
    for j, cell in enumerate(header):
        values = [
            value for value in (body_slices[j] if j < len(body_slices) else [])
            if value
        ]
        if not cell or not values:
            continue
        if _is_numeric(cell):
            contrast_scores.append(0.0)  # numeric "headers" are weak
            continue
        numeric_fraction = sum(
            1 for value in values if _is_numeric(value)
        ) / len(values)
        contrast_scores.append(numeric_fraction)
    contrast = (
        sum(contrast_scores) / len(contrast_scores)
        if contrast_scores else 0.0
    )
    return 0.5 * wordiness + 0.5 * contrast


def _orientation_scores(table: Table) -> tuple[float, float]:
    """(horizontal score, vertical score) for ``table``."""
    grid = table.row_texts()
    if not grid or len(grid) < 2:
        return (1.0, 0.0)

    num_columns = table.num_columns
    first_row = grid[0]
    column_slices = [
        [row[j] for row in grid[1:] if j < len(row)]
        for j in range(num_columns)
    ]
    horizontal = _header_score(first_row, column_slices)

    first_column = [row[0] if row else "" for row in grid]
    row_slices = [row[1:] for row in grid]
    vertical = _header_score(first_column, row_slices)
    return horizontal, vertical


def detect_orientation(table: Table) -> Orientation:
    """Classify ``table`` as HORIZONTAL (header row) or VERTICAL (header col).

    Vertical wins only when its score beats horizontal by
    :data:`VERTICAL_MARGIN`; everything else (including ties and tables
    with both a header row and a key column) reads as horizontal.
    """
    horizontal, vertical = _orientation_scores(table)
    if vertical > horizontal + VERTICAL_MARGIN:
        return Orientation.VERTICAL
    return Orientation.HORIZONTAL


def rows_for_classification(table: Table) -> tuple["Orientation", list[list[str]]]:
    """The tuples the metadata classifiers should see.

    Horizontal tables are classified row by row; vertical tables are first
    transposed so their header *columns* become tuples too.
    """
    orientation = detect_orientation(table)
    if orientation is Orientation.VERTICAL:
        return orientation, table.transposed().row_texts()
    return orientation, table.row_texts()

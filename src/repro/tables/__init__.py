"""Table substrate: models, HTML parsing, orientation, positional features.

CORD-19 ships raw HTML table fragments; the paper builds "an additional
HTML table parser and post-processor that takes raw HTML fragments from
CORD-19 and converts them to semi-structured, clean JSON" (Section 3.1),
then derives positional features (Section 3.5) for metadata classification.
"""

from repro.tables.features import POSITIONAL_FEATURE_NAMES, RowFeatures, row_features
from repro.tables.html_parser import parse_html_table, parse_html_tables
from repro.tables.model import Cell, Row, Table
from repro.tables.orientation import Orientation, detect_orientation

__all__ = [
    "POSITIONAL_FEATURE_NAMES",
    "RowFeatures",
    "row_features",
    "parse_html_table",
    "parse_html_tables",
    "Cell",
    "Row",
    "Table",
    "Orientation",
    "detect_orientation",
]

"""Table data model: cells, rows, tables with clean JSON (de)serialization.

A :class:`Table` is the "semi-structured, clean JSON" form the paper's
post-processor emits.  Rows optionally carry ground-truth metadata labels
(``is_metadata``) used to train and evaluate the classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ParseError


@dataclass(frozen=True)
class Cell:
    """One table cell: its text plus span information from the HTML."""

    text: str
    colspan: int = 1
    rowspan: int = 1
    is_header: bool = False

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {"text": self.text}
        if self.colspan != 1:
            data["colspan"] = self.colspan
        if self.rowspan != 1:
            data["rowspan"] = self.rowspan
        if self.is_header:
            data["is_header"] = True
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any] | str) -> "Cell":
        if isinstance(data, str):
            return cls(text=data)
        return cls(
            text=data.get("text", ""),
            colspan=int(data.get("colspan", 1)),
            rowspan=int(data.get("rowspan", 1)),
            is_header=bool(data.get("is_header", False)),
        )


@dataclass
class Row:
    """One table row; ``is_metadata`` is the classification target."""

    cells: list[Cell]
    is_metadata: bool | None = None

    @classmethod
    def from_texts(cls, texts: list[str],
                   is_metadata: bool | None = None) -> "Row":
        return cls([Cell(text) for text in texts], is_metadata=is_metadata)

    @property
    def texts(self) -> list[str]:
        return [cell.text for cell in self.cells]

    def __len__(self) -> int:
        return len(self.cells)

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "cells": [cell.to_json() for cell in self.cells],
        }
        if self.is_metadata is not None:
            data["is_metadata"] = self.is_metadata
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Row":
        return cls(
            cells=[Cell.from_json(cell) for cell in data.get("cells", [])],
            is_metadata=data.get("is_metadata"),
        )


@dataclass
class Table:
    """A parsed table: caption, rows, and provenance back to its paper."""

    rows: list[Row] = field(default_factory=list)
    caption: str = ""
    paper_id: str | None = None
    table_id: str | None = None

    @classmethod
    def from_grid(cls, grid: list[list[str]], caption: str = "",
                  header_rows: int = 0, **kwargs: Any) -> "Table":
        """Build a table from a plain grid of strings.

        The first ``header_rows`` rows are labeled metadata, the rest data.
        """
        rows = []
        for index, texts in enumerate(grid):
            rows.append(Row.from_texts(texts, is_metadata=index < header_rows))
        return cls(rows=rows, caption=caption, **kwargs)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return max((len(row) for row in self.rows), default=0)

    def row_texts(self) -> list[list[str]]:
        return [row.texts for row in self.rows]

    def column(self, index: int) -> list[str]:
        """The texts of column ``index`` (empty string where a row is short)."""
        if index < 0 or index >= self.num_columns:
            raise ParseError(f"column {index} out of range")
        return [
            row.cells[index].text if index < len(row.cells) else ""
            for row in self.rows
        ]

    def transposed(self) -> "Table":
        """Column-major view, used for vertical (attribute-in-column) tables."""
        columns = [self.column(i) for i in range(self.num_columns)]
        rows = [Row.from_texts(column) for column in columns]
        return Table(rows=rows, caption=self.caption,
                     paper_id=self.paper_id, table_id=self.table_id)

    def all_text(self) -> str:
        """Caption plus every cell, for indexing by the table search engine."""
        parts = [self.caption] if self.caption else []
        for row in self.rows:
            parts.extend(cell.text for cell in row.cells if cell.text)
        return " ".join(parts)

    def iter_cells(self) -> Iterator[Cell]:
        for row in self.rows:
            yield from row.cells

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "caption": self.caption,
            "rows": [row.to_json() for row in self.rows],
        }
        if self.paper_id is not None:
            data["paper_id"] = self.paper_id
        if self.table_id is not None:
            data["table_id"] = self.table_id
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Table":
        return cls(
            rows=[Row.from_json(row) for row in data.get("rows", [])],
            caption=data.get("caption", ""),
            paper_id=data.get("paper_id"),
            table_id=data.get("table_id"),
        )

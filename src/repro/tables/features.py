"""Positional feature extraction (paper Section 3.5).

For each table row the paper builds a 7-feature vector
``{f1, ..., f7}``:

* ``f1`` — the row text after numeric substitution (the pre-processing of
  Section 3.4); this is the lexical part of the vector,
* ``f2`` — the number of cells in the row,
* ``f3`` — binary: does a row exist *above* this row,
* ``f4`` — binary: does a row exist *below* this row,
* ``f5`` — the total number of cells in the row above (0 when absent),
* ``f6`` — the total number of cells in the row below (0 when absent),
* ``f7`` — the boolean metadata label (``None`` for unlabeled instances).

``f3..f7`` are collectively the *positional* features.  The SVM consumes
``f2..f6`` plus a hashed bag-of-words summary of ``f1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tables.model import Table
from repro.text.normalize import NumericNormalizer

#: Names of the numeric positional features, in vector order.
POSITIONAL_FEATURE_NAMES = ("f2_num_cells", "f3_has_above", "f4_has_below",
                            "f5_cells_above", "f6_cells_below")

_normalizer = NumericNormalizer()


@dataclass(frozen=True)
class RowFeatures:
    """The Section 3.5 feature vector for one table row."""

    f1_text: str
    f2_num_cells: int
    f3_has_above: bool
    f4_has_below: bool
    f5_cells_above: int
    f6_cells_below: int
    f7_is_metadata: bool | None

    @property
    def positional(self) -> list[float]:
        """The numeric positional part ``[f2..f6]`` as floats."""
        return [
            float(self.f2_num_cells),
            1.0 if self.f3_has_above else 0.0,
            1.0 if self.f4_has_below else 0.0,
            float(self.f5_cells_above),
            float(self.f6_cells_below),
        ]


def row_features(table: Table, row_index: int) -> RowFeatures:
    """Extract the feature vector for row ``row_index`` of ``table``."""
    rows = table.rows
    row = rows[row_index]
    above = rows[row_index - 1] if row_index > 0 else None
    below = rows[row_index + 1] if row_index + 1 < len(rows) else None
    normalized = " ".join(
        _normalizer.normalize(cell.text) for cell in row.cells
    )
    return RowFeatures(
        f1_text=normalized,
        f2_num_cells=len(row),
        f3_has_above=above is not None,
        f4_has_below=below is not None,
        f5_cells_above=len(above) if above is not None else 0,
        f6_cells_below=len(below) if below is not None else 0,
        f7_is_metadata=row.is_metadata,
    )


def table_features(table: Table) -> list[RowFeatures]:
    """Feature vectors for every row of ``table``."""
    return [row_features(table, index) for index in range(len(table.rows))]

"""Web-table spam/noise classification (paper Section 3.2, ref [78]).

The vocabulary feature space is built by "cutting off the noise words and
spam"; at web scale much of that noise arrives as spam *tables* — layout
grids, navigation bars, SEO keyword farms, ad blocks — that must be
filtered before tables feed classifier training or the vocabulary.

:class:`SpamTableClassifier` scores a table on structural features:

* **emptiness** — fraction of empty cells (layout grids),
* **repetition** — fraction of duplicate rows and duplicate cells
  (keyword farms repeat),
* **promo density** — fraction of cells containing URLs or promotional
  vocabulary ("click", "buy now", "free", ...),
* **degeneracy** — single-row/column shapes (navigation strips),
* **cell length extremes** — spam cells are either near-empty fragments
  or run-on keyword blobs.

The default is a calibrated heuristic score (no training data needed —
the realistic cold-start); ``fit`` upgrades it to a linear SVM over the
same features when labeled examples exist.
"""

from __future__ import annotations

import re
from collections import Counter

import numpy as np

from repro.errors import NotFittedError
from repro.ml.svm import LinearSVM
from repro.tables.model import Table

_URL_RE = re.compile(r"https?://|www\.", re.IGNORECASE)
_PROMO_RE = re.compile(
    r"\b(?:click|buy now|free|sale|discount|subscribe|sign up|offer|"
    r"cheap|deal|winner|prize|casino|viagra)\b",
    re.IGNORECASE,
)

FEATURE_NAMES = (
    "empty_fraction", "duplicate_row_fraction", "duplicate_cell_fraction",
    "promo_fraction", "url_fraction", "degenerate_shape",
    "short_cell_fraction", "long_cell_fraction",
)


def spam_features(table: Table) -> np.ndarray:
    """The 8 structural spam features of ``table``, each in [0, 1]."""
    cells = [cell.text for row in table.rows for cell in row.cells]
    num_cells = len(cells)
    if num_cells == 0:
        return np.array([1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0])

    empty = sum(1 for text in cells if not text.strip()) / num_cells

    row_keys = [tuple(row.texts) for row in table.rows]
    row_counts = Counter(row_keys)
    duplicate_rows = sum(
        count - 1 for count in row_counts.values() if count > 1
    ) / max(1, len(row_keys))

    non_empty = [text for text in cells if text.strip()]
    cell_counts = Counter(text.lower() for text in non_empty)
    duplicate_cells = sum(
        count - 1 for count in cell_counts.values() if count > 1
    ) / max(1, len(non_empty))

    promo = sum(
        1 for text in non_empty if _PROMO_RE.search(text)
    ) / max(1, len(non_empty))
    urls = sum(
        1 for text in non_empty if _URL_RE.search(text)
    ) / max(1, len(non_empty))

    degenerate = 1.0 if (
        table.num_rows <= 1 or table.num_columns <= 1
    ) else 0.0

    # Short *non-numeric* fragments ("»", "|") are layout debris; short
    # numbers are ordinary data cells and must not count.
    short = sum(
        1 for text in non_empty
        if len(text.strip()) <= 2
        and not text.strip().replace(".", "").replace("%", "").isdigit()
    ) / max(1, len(non_empty))
    long_ = sum(1 for text in non_empty if len(text) > 120) / max(
        1, len(non_empty)
    )
    return np.array([empty, duplicate_rows, duplicate_cells, promo,
                     urls, degenerate, short, long_])


#: Heuristic weights per feature (dot with the feature vector -> score).
_HEURISTIC_WEIGHTS = np.array([1.0, 1.2, 0.8, 2.0, 2.0, 0.8, 0.6, 1.0])
#: Scores above this are spam under the heuristic.
HEURISTIC_THRESHOLD = 0.8


class SpamTableClassifier:
    """Heuristic-by-default, SVM-when-trained spam table filter."""

    def __init__(self, threshold: float = HEURISTIC_THRESHOLD,
                 seed: int = 0) -> None:
        self.threshold = threshold
        self.seed = seed
        self._svm: LinearSVM | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def heuristic_score(self, table: Table) -> float:
        """Weighted spam-feature mass; larger is spammier."""
        return float(spam_features(table) @ _HEURISTIC_WEIGHTS)

    def fit(self, tables: list[Table],
            labels: list[bool]) -> "SpamTableClassifier":
        """Train the SVM upgrade on labeled (table, is_spam) examples."""
        matrix = np.stack([spam_features(table) for table in tables])
        self._mean = matrix.mean(axis=0)
        self._std = matrix.std(axis=0)
        self._std[self._std == 0.0] = 1.0
        standardized = (matrix - self._mean) / self._std
        self._svm = LinearSVM(epochs=20, seed=self.seed)
        self._svm.fit(standardized, np.array(labels, dtype=int))
        return self

    def is_spam(self, table: Table) -> bool:
        if self._svm is None:
            return self.heuristic_score(table) >= self.threshold
        if self._mean is None or self._std is None:
            raise NotFittedError("inconsistent classifier state")
        features = (spam_features(table) - self._mean) / self._std
        return bool(self._svm.predict(features[None, :])[0])

    def filter_clean(self, tables: list[Table]) -> list[Table]:
        """Tables that survive the spam filter (vocabulary feed)."""
        return [table for table in tables if not self.is_spam(table)]

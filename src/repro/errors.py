"""Exception hierarchy shared by every repro subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary while still distinguishing failure
modes inside the system.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DocumentError(ReproError):
    """A document is malformed or violates collection constraints."""


class DuplicateKeyError(DocumentError):
    """An insert would violate a unique index (e.g. a duplicate ``_id``)."""


class QueryError(ReproError):
    """A query/filter document is malformed or uses an unknown operator."""


class AggregationError(ReproError):
    """An aggregation pipeline is malformed or a stage failed to evaluate."""


class IndexError_(ReproError):
    """An index definition is invalid or an indexed lookup failed."""


class ShardingError(ReproError):
    """Shard configuration or routing failed."""


class PersistenceError(ReproError):
    """Snapshot/append-log I/O failed or an on-disk image is corrupt."""


class ParseError(ReproError):
    """Raw input (HTML table fragment, paper JSON, query string) is invalid."""


class SchemaError(ReproError):
    """A corpus document does not conform to the CORD-19-style schema."""


class ModelError(ReproError):
    """A machine-learning / deep-learning model was misconfigured or misused."""


class NotFittedError(ModelError):
    """A model method requiring training was called before ``fit``."""


class GraphError(ReproError):
    """A knowledge-graph operation is invalid (unknown node, cycle, ...)."""


class FusionError(GraphError):
    """A subtree could not be fused into the knowledge graph."""


class RegistryError(ReproError):
    """Lookup in the pre-trained model/embedding registry failed."""


class ServiceError(ReproError):
    """The query-serving tier rejected or failed a request."""


class ServiceOverloadedError(ServiceError):
    """The admission queue is full; the request was shed, not queued."""


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before it could be executed."""


class ServiceClosedError(ServiceError):
    """The service has been shut down and accepts no new requests."""


class RequestTooExpensiveError(ServiceError):
    """A request's estimated pipeline cost exceeds the configured budget.

    Raised *before* the request touches the scatter path, so pricing a
    request never costs more than estimating it.
    """


class KGQLError(QueryError):
    """A KGQL graph query is invalid (syntax, unknown variable, ...).

    Derives from :class:`QueryError` so the serving tier's negative
    cache and the gateway's 400 mapping treat a bad graph query exactly
    like a bad search query: deterministic, remembered, never retried.
    """


class KGQLSyntaxError(KGQLError):
    """KGQL source failed to lex/parse.

    Carries the offending position so front ends can render caret
    diagnostics; ``str()`` already includes the caret block::

        unexpected ']' at line 1, column 13
          MATCH (a:"x"]
                      ^
    """

    def __init__(self, message: str, *, line: int = 1, column: int = 1,
                 source_line: str = "") -> None:
        self.brief = message
        self.line = line
        self.column = column
        self.source_line = source_line
        rendered = f"{message} at line {line}, column {column}"
        if source_line:
            caret = " " * (column - 1) + "^"
            rendered = f"{rendered}\n  {source_line}\n  {caret}"
        super().__init__(rendered)


class IngestError(ReproError):
    """The streaming-ingest subsystem failed a batch operation."""


class IngestRejectedError(IngestError):
    """A batch failed the pre-index quality gate; nothing was applied.

    Carries per-document diagnostics so a feed operator can see exactly
    which papers were malformed and why::

        IngestRejectedError("2 of 5 papers rejected", rejects=[...])

    ``rejects`` is a list of ``{"index", "paper_id", "error"}`` dicts.
    The gate is all-or-nothing: one bad paper rejects the whole batch,
    so a partial batch can never reach the WAL or the indexes.
    """

    def __init__(self, message: str,
                 rejects: list[dict] | None = None) -> None:
        super().__init__(message)
        self.rejects = rejects or []


class WalCorruptionError(IngestError):
    """A write-ahead-log segment failed its checksum or framing checks.

    Replay treats a corrupt/truncated *tail* as the crash point and
    recovers everything committed before it; corruption *before* the
    last committed batch raises this instead of silently dropping
    acknowledged data.
    """


class SnapshotNotFoundError(IngestError):
    """``rollback(to)`` named a snapshot that is not retained."""


class GatewayError(ReproError):
    """The HTTP gateway failed a request before it reached the service."""


class BadRequestError(GatewayError):
    """The HTTP request is malformed or carries invalid parameters."""


class PayloadTooLargeError(GatewayError):
    """The HTTP request body exceeds the gateway's configured limit."""

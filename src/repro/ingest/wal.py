"""Write-ahead segment log for streaming ingest.

Durability contract: a batch is **committed** once its ``commit`` record
has been flushed and fsynced; a crash at any earlier point replays to
the previous committed batch and never exposes a partial one.  The log
is a sequence of append-only segment files::

    <directory>/
        wal-00000001.seg
        wal-00000002.seg
        ...

Each segment holds framed records.  A frame is::

    <length:u32 LE> <crc32:u32 LE> <payload: length bytes of UTF-8 JSON>

The CRC covers the payload only; a frame whose length runs past the end
of the file, or whose checksum mismatches, marks the crash point — replay
stops there.  Record kinds:

* ``{"kind": "begin",    "batch": id}``
* ``{"kind": "doc",      "batch": id, "paper": {...}}``
* ``{"kind": "commit",   "batch": id, "count": n, "skip_duplicates": b}``
* ``{"kind": "rollback", "to_seq": k}`` — a live ``rollback()`` is
  itself logged, so replay after a later crash lands on the rolled-back
  state, not the pre-rollback one.

Only ``commit`` and ``rollback`` fsync; ``begin``/``doc`` records ride
the OS buffer, which is exactly the whole-batch-or-nothing semantics the
frame scan enforces.  Segments rotate at ``max_segment_bytes`` — a batch
may span segments; replay is one linear scan across all of them in name
order.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import WalCorruptionError

_FRAME_HEADER = struct.Struct("<II")

#: Default rotation threshold (small enough that the crash tests and the
#: E22 bench naturally exercise multi-segment batches).
DEFAULT_SEGMENT_BYTES = 256 * 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def _frame(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(payload),
                              zlib.crc32(payload) & 0xFFFFFFFF) + payload


def encode_record(record: dict[str, Any]) -> bytes:
    """One framed record, ready to append to a segment."""
    return _frame(json.dumps(record, separators=(",", ":"),
                             sort_keys=True).encode("utf-8"))


def scan_segment(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode frames until the data runs out or a frame is torn.

    Returns ``(records, consumed_bytes)``.  A torn tail (truncated
    header, truncated payload, CRC mismatch, or undecodable JSON) ends
    the scan at the last whole frame — that offset is the crash point.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    size = len(data)
    while offset + _FRAME_HEADER.size <= size:
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > size:
            return records, offset  # torn payload: crash mid-write
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return records, offset  # bit rot / torn write
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, offset
        if not isinstance(record, dict):
            return records, offset
        records.append(record)
        offset = end
    return records, offset


def iter_frames(data: bytes) -> Iterator[dict[str, Any]]:
    """Frame records of one segment, stopping at the first torn frame."""
    return iter(scan_segment(data)[0])


@dataclass
class ReplayBatch:
    """One fully committed batch recovered from the log."""

    batch_id: str
    papers: list[dict[str, Any]] = field(default_factory=list)
    skip_duplicates: bool = False


@dataclass
class ReplayState:
    """The outcome of scanning the whole log."""

    #: Committed batches in commit order, rollbacks already applied.
    batches: list[ReplayBatch] = field(default_factory=list)
    #: Batches begun but never committed (discarded by the scan).
    torn_batches: int = 0
    #: Segments scanned.
    segments: int = 0


class WriteAheadLog:
    """Append-only, checksummed, fsync-on-commit segment log."""

    def __init__(self, directory: str | Path,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self._handle: io.BufferedWriter | None = None
        self._segment_index = 0
        self._segment_bytes = 0
        existing = self.segment_paths()
        if existing:
            last = existing[-1]
            self._segment_index = int(
                last.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
            self._segment_bytes = self._recover_tail(last)

    # -- segments ---------------------------------------------------------

    def segment_paths(self) -> list[Path]:
        """Every segment file, in append order."""
        return sorted(
            path for path in self.directory.iterdir()
            if path.name.startswith(_SEGMENT_PREFIX)
            and path.name.endswith(_SEGMENT_SUFFIX)
        )

    @staticmethod
    def _recover_tail(path: Path) -> int:
        """Truncate a torn tail frame left by a crash; return the size.

        Appending after torn bytes would hide every later frame from
        replay (the scan stops at the first bad frame), so the garbage
        must be cut *before* the log accepts new appends.  Only the
        frames replay would already ignore are dropped.
        """
        data = path.read_bytes()
        consumed = scan_segment(data)[1]
        if consumed < len(data):
            with open(path, "r+b") as handle:
                handle.truncate(consumed)
                handle.flush()
                os.fsync(handle.fileno())
        return consumed

    def _segment_path(self, index: int) -> Path:
        return self.directory / (
            f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}")

    def _writer(self) -> io.BufferedWriter:
        if self._handle is None or self._handle.closed:
            if self._segment_index == 0:
                self._segment_index = 1
                self._segment_bytes = 0
            self._handle = open(  # noqa: SIM115 - long-lived appender
                self._segment_path(self._segment_index), "ab")
        return self._handle

    def _rotate_if_needed(self) -> None:
        if self._segment_bytes < self.max_segment_bytes:
            return
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        self._segment_index += 1
        self._segment_bytes = 0

    def _append(self, record: dict[str, Any], sync: bool) -> None:
        self._rotate_if_needed()
        data = encode_record(record)
        handle = self._writer()
        handle.write(data)
        self._segment_bytes += len(data)
        if sync:
            handle.flush()
            os.fsync(handle.fileno())

    # -- the logging protocol --------------------------------------------

    def begin_batch(self, batch_id: str) -> None:
        self._append({"kind": "begin", "batch": batch_id}, sync=False)

    def append_document(self, batch_id: str,
                        paper: dict[str, Any]) -> None:
        self._append({"kind": "doc", "batch": batch_id, "paper": paper},
                     sync=False)

    def commit_batch(self, batch_id: str, count: int,
                     skip_duplicates: bool = False) -> None:
        """The durability point: flushed and fsynced before returning."""
        self._append({
            "kind": "commit", "batch": batch_id, "count": count,
            "skip_duplicates": skip_duplicates,
        }, sync=True)

    def log_rollback(self, to_seq: int) -> None:
        """Record a live rollback so replay reproduces it."""
        self._append({"kind": "rollback", "to_seq": to_seq}, sync=True)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- replay -----------------------------------------------------------

    def replay(self) -> ReplayState:
        """Scan every segment; return the committed-batch sequence.

        The scan is strict about *where* damage appears: a torn frame is
        only acceptable at the very tail of the log (the crash point).
        Damage followed by more readable segments means acknowledged
        data was corrupted in place — that raises
        :class:`WalCorruptionError` instead of quietly shrinking
        history.
        """
        state = ReplayState()
        open_batches: dict[str, ReplayBatch] = {}
        paths = self.segment_paths()
        state.segments = len(paths)
        for position, path in enumerate(paths):
            data = path.read_bytes()
            records, consumed = scan_segment(data)
            for record in records:
                self._apply_record(record, state, open_batches)
            if consumed < len(data) and position < len(paths) - 1:
                raise WalCorruptionError(
                    f"segment {path.name} is torn mid-log (byte "
                    f"{consumed} of {len(data)}) but later segments "
                    "exist; refusing to drop committed history"
                )
        state.torn_batches = len(open_batches)
        return state

    @staticmethod
    def _apply_record(record: dict[str, Any], state: ReplayState,
                      open_batches: dict[str, ReplayBatch]) -> None:
        kind = record.get("kind")
        if kind == "begin":
            batch_id = str(record.get("batch"))
            open_batches[batch_id] = ReplayBatch(batch_id)
        elif kind == "doc":
            batch = open_batches.get(str(record.get("batch")))
            if batch is not None:
                batch.papers.append(record.get("paper") or {})
        elif kind == "commit":
            batch_id = str(record.get("batch"))
            batch = open_batches.pop(batch_id, None)
            if batch is None:
                raise WalCorruptionError(
                    f"commit for unknown batch {batch_id!r}")
            expected = int(record.get("count", len(batch.papers)))
            if expected != len(batch.papers):
                raise WalCorruptionError(
                    f"batch {batch_id!r} committed {expected} "
                    f"document(s) but {len(batch.papers)} were logged"
                )
            batch.skip_duplicates = bool(
                record.get("skip_duplicates", False))
            state.batches.append(batch)
        elif kind == "rollback":
            to_seq = int(record.get("to_seq", 0))
            if to_seq < 0 or to_seq > len(state.batches):
                raise WalCorruptionError(
                    f"rollback to batch {to_seq} but only "
                    f"{len(state.batches)} committed"
                )
            del state.batches[to_seq:]
        else:
            raise WalCorruptionError(f"unknown record kind {kind!r}")

    def truncate(self) -> None:
        """Drop every segment (after a checkpoint made them redundant)."""
        self.close()
        for path in self.segment_paths():
            path.unlink()
        self._segment_index = 0
        self._segment_bytes = 0

"""The online ingest engine: WAL + quality gate + snapshots + merge.

``IngestEngine`` wraps a built :class:`~repro.api.system.CovidKG` and
makes document batches durable and revertible while the system keeps
serving queries:

1. the batch passes the **quality gate** (all-or-nothing; typed
   :class:`~repro.errors.IngestRejectedError` with per-document
   diagnostics) — including a duplicate check against the live store,
   so the in-memory apply below can never fail halfway on a unique
   index;
2. under the data write lock, every document is framed into the
   **write-ahead log**, the batch is applied in memory
   (``system.ingest``), and only then is the ``commit`` record fsynced
   — a crash at any point before that fsync replays to the previous
   committed batch;
3. a named **snapshot** (``batch-NNNNNN``) is retained per committed
   batch; :meth:`rollback` restores docstore + indexes + KG atomically
   and logs the rollback so crash replay lands on the rolled-back
   state;
4. a **background merge thread** folds the search engines' columnar
   delta segments back into their base postings once enough documents
   have streamed in — under the *read* side of the data lock, so
   queries keep flowing while the merge runs.

The engine serializes its own writers: concurrent ``commit_batch``
calls queue on the data write lock, and WAL appends only happen inside
it.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.analysis import racecheck
from repro.errors import IngestRejectedError
from repro.ingest.quality_gate import gate_batch
from repro.ingest.snapshots import (
    Snapshot,
    SnapshotStore,
    restore_snapshot,
    system_versions,
    take_snapshot,
)
from repro.ingest.wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog
from repro.serve.admission import ReadWriteLock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.system import CovidKG

#: Work units one ingested document costs under admission pricing —
#: validate + classify + index three engines + extract/fuse subtrees is
#: roughly this many per-document pipeline stages' worth of work.
INGEST_DOC_COST = 25.0


@dataclass
class IngestReceipt:
    """The acknowledgement a committed batch returns to the caller."""

    batch_id: str
    seq: int
    snapshot: str
    accepted: int
    subtrees: int
    seconds: float
    versions: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "batch_id": self.batch_id,
            "seq": self.seq,
            "snapshot": self.snapshot,
            "accepted": self.accepted,
            "subtrees": self.subtrees,
            "seconds": self.seconds,
            "versions": dict(self.versions),
        }


class IngestEngine:
    """Durable, revertible streaming ingest over one ``CovidKG``."""

    def __init__(self, system: "CovidKG", directory: str | Path, *,
                 merge_threshold: int = 256,
                 snapshot_retention: int = 8,
                 wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 data_lock: ReadWriteLock | None = None) -> None:
        self.system = system
        self.directory = Path(directory)
        self.wal = WriteAheadLog(self.directory / "wal",
                                 max_segment_bytes=wal_segment_bytes)
        self.snapshots = SnapshotStore(retention=snapshot_retention)
        self.merge_threshold = merge_threshold
        self._data_lock = data_lock or ReadWriteLock()
        self._seq = 0
        self._ids = itertools.count(1)
        self._state_lock = racecheck.make_lock("ingest.engine")
        self._docs_since_merge = 0
        self._merges = 0
        self._replaying = False
        self._replayed_batches = 0
        self._closed = False
        self._merge_wakeup = threading.Event()
        self._merge_thread: threading.Thread | None = None
        # The pre-ingest restore point: rollback("base") empties the
        # streamed corpus back to whatever the system started with.
        self.snapshots.add(take_snapshot(system, "base", 0))

    # -- lock plumbing ----------------------------------------------------

    def use_lock(self, data_lock: ReadWriteLock) -> None:
        """Adopt the serving tier's reader/writer lock.

        Call before serving starts (``QueryService.attach_ingest`` does)
        so commits exclude queries and merges share with them.
        """
        self._data_lock = data_lock

    # -- commit path ------------------------------------------------------

    def _search_engines(self) -> list[Any]:
        return [self.system.all_fields, self.system.title_abstract,
                self.system.tables]

    def _preflight_duplicates(self,
                              papers: list[dict[str, Any]]) -> None:
        """Reject store-level duplicates before anything is logged.

        ``system.ingest`` inserts one document at a time; a unique-index
        violation halfway through would strand a partial batch in
        memory.  Checking up front keeps the apply step infallible on
        this axis (batch-*internal* duplicates were already gated).
        """
        rejects = []
        for index, paper in enumerate(papers):
            if self.system.store.find_one(
                    {"paper_id": paper["paper_id"]}) is not None:
                rejects.append({
                    "index": index, "paper_id": paper["paper_id"],
                    "error": "paper_id already ingested (set "
                             "skip_duplicates to ignore redeliveries)",
                })
        if rejects:
            raise IngestRejectedError(
                f"{len(rejects)} of {len(papers)} paper(s) already "
                "exist; nothing was ingested", rejects=rejects)

    def commit_batch(self, papers: list[Any], *,
                     batch_id: str | None = None,
                     skip_duplicates: bool = False) -> IngestReceipt:
        """Gate, log, apply, fsync, snapshot — one committed batch."""
        started = time.perf_counter()
        validated = gate_batch(papers)
        with self._data_lock.write_locked():
            if not skip_duplicates:
                self._preflight_duplicates(validated)
            if batch_id is None:
                batch_id = f"ingest-{next(self._ids):06d}"
            self.wal.begin_batch(batch_id)
            for paper in validated:
                self.wal.append_document(batch_id, paper)
            stored_before = len(self.system.store)
            try:
                report = self.system.ingest(
                    validated, skip_duplicates=skip_duplicates)
            except BaseException:
                # The batch is torn in the WAL (no commit record) —
                # put memory back in step with it before re-raising.
                latest = self.snapshots.latest()
                if latest is not None:
                    restore_snapshot(self.system, latest)
                raise
            # The durability point: fsync the commit frame *after* the
            # in-memory apply succeeded, *before* acknowledging.
            # ``accepted`` is what actually landed: under
            # skip_duplicates a redelivered paper is dropped by
            # ``system.ingest`` and must not be counted as new.
            accepted = len(self.system.store) - stored_before
            self.wal.commit_batch(batch_id, len(validated),
                                  skip_duplicates=skip_duplicates)
            self._seq += 1
            seq = self._seq
            snapshot = take_snapshot(
                self.system, f"batch-{seq:06d}", seq)
            self.snapshots.add(snapshot)
            # Capture the receipt's view of the world while the write
            # lock still excludes other commits — outside it, seq and
            # the version counters could describe a *later* batch.
            versions = system_versions(self.system)
        with self._state_lock:
            self._docs_since_merge += accepted
            merge_due = self._docs_since_merge >= self.merge_threshold
        if merge_due:
            self._request_merge()
        return IngestReceipt(
            batch_id=batch_id,
            seq=seq,
            snapshot=snapshot.name,
            accepted=accepted,
            subtrees=report.subtrees,
            seconds=time.perf_counter() - started,
            versions=versions,
        )

    # -- rollback ---------------------------------------------------------

    def rollback(self, to: str) -> Snapshot:
        """Atomically restore the named snapshot; later batches vanish.

        The rollback itself is WAL-logged (and fsynced), so a crash
        after it replays to the rolled-back state, not past it.
        Snapshots newer than the target are dropped — their state no
        longer exists on any timeline.
        """
        snapshot = self.snapshots.get(to)
        with self._data_lock.write_locked():
            restore_snapshot(self.system, snapshot)
            self.wal.log_rollback(snapshot.seq)
            self._seq = snapshot.seq
            self.snapshots.drop_after(snapshot.seq)
        return snapshot

    # -- crash recovery ---------------------------------------------------

    def replay(self) -> int:
        """Re-apply every committed batch in the WAL to the system.

        Call once, on a freshly constructed engine whose system is the
        pre-crash base (a new build, or ``load_system`` of the last
        checkpoint).  Batches without a commit record — the crash tail —
        are skipped entirely; logged rollbacks are honoured.  Returns
        the number of batches applied.
        """
        with self._state_lock:
            self._replaying = True
        state = self.wal.replay()
        applied = 0
        try:
            with self._data_lock.write_locked():
                for batch in state.batches:
                    self.system.ingest(
                        batch.papers,
                        skip_duplicates=batch.skip_duplicates)
                    self._seq += 1
                    self.snapshots.add(take_snapshot(
                        self.system, f"batch-{self._seq:06d}", self._seq))
                    applied += 1
                if applied:
                    # New batch ids continue past the replayed ones so
                    # one WAL never carries two batches with the same
                    # id.
                    self._ids = itertools.count(self._seq + 1)
        finally:
            with self._state_lock:
                self._replaying = False
                self._replayed_batches += applied
        return applied

    def replay_status(self) -> dict[str, Any]:
        """WAL recovery progress, as ``/v1/healthz`` reports it.

        A cluster router keeps a replica whose ``replaying`` is true out
        of the ring — it is still re-applying committed batches and
        would serve a stale corpus.
        """
        with self._state_lock:
            return {"replaying": self._replaying,
                    "replayed_batches": self._replayed_batches}

    def checkpoint(self, directory: str | Path) -> Path:
        """Persist the system and truncate the now-redundant WAL.

        Save and truncate happen under the data *write* lock: a commit
        interleaving between them would be acknowledged yet present in
        neither the checkpoint nor the WAL (lost on restart), and
        truncation must not unlink a segment a concurrent commit is
        appending to.
        """
        from repro.api.persistence import save_system

        with self._data_lock.write_locked():
            saved = save_system(self.system, directory)
            self.wal.truncate()
        return saved

    # -- background merge -------------------------------------------------

    def _request_merge(self) -> None:
        with self._state_lock:
            if self._closed:
                return
            if self._merge_thread is None:
                self._merge_thread = threading.Thread(
                    target=self._merge_loop, name="ingest-merge",
                    daemon=True)
                self._merge_thread.start()
        self._merge_wakeup.set()

    def _merge_loop(self) -> None:
        while True:
            self._merge_wakeup.wait()
            self._merge_wakeup.clear()
            with self._state_lock:
                if self._closed:
                    return
                self._docs_since_merge = 0
            self.merge_now()

    def merge_now(self) -> int:
        """Fold every engine's delta segments into its base postings.

        Runs under the *read* side of the data lock: queries proceed
        concurrently (the merged index is byte-identical, so either
        generation answers them correctly); only writers wait.
        Returns the number of engines that actually merged.
        """
        merged = 0
        with self._data_lock.read_locked():
            for engine in self._search_engines():
                if engine.merge_segments():
                    merged += 1
        if merged:
            with self._state_lock:
                self._merges += merged
        return merged

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._state_lock:
            docs_since_merge = self._docs_since_merge
            merges = self._merges
        return {
            "seq": self._seq,
            "snapshots": self.snapshots.names(),
            "wal_segments": len(self.wal.segment_paths()),
            "merge_threshold": self.merge_threshold,
            "docs_since_merge": docs_since_merge,
            "merges": merges,
            "delta_rows": {
                "all_fields": self.system.all_fields.delta_rows,
                "title_abstract": self.system.title_abstract.delta_rows,
                "table": self.system.tables.delta_rows,
            },
        }

    def close(self) -> None:
        with self._state_lock:
            self._closed = True
            thread = self._merge_thread
        self._merge_wakeup.set()
        if thread is not None:
            thread.join(timeout=5.0)
        self.wal.close()

    def __enter__(self) -> "IngestEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""Named snapshots and atomic rollback for streaming ingest.

A snapshot is *logical*, not a byte copy: the ingested-paper count, the
knowledge graph serialized to JSON, and the live version counters.
That is sufficient because re-indexing is deterministic — replaying the
retained enriched documents through fresh engines reproduces the saved
state bit-for-bit (the differential tests assert byte-identical query
pages), while costing O(corpus) memory only for the graph JSON.

``rollback`` swaps the rebuilt store/engines/graph into the live
:class:`~repro.api.system.CovidKG` **after** the rebuild finishes, and
then advances every version counter past its pre-rollback value.  Two
consequences:

* callers holding the serving tier's write lock see an atomic flip —
  no query can observe a half-rebuilt system;
* every cached result (positive or negative) keyed on the old
  snapshots invalidates immediately, because no counter ever repeats.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SnapshotNotFoundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.system import CovidKG


@dataclass
class Snapshot:
    """One committed-batch restore point."""

    name: str
    #: Committed-batch sequence number (``0`` is the pre-ingest base).
    seq: int
    #: ``len(system._ingested_papers)`` at snapshot time.
    num_papers: int
    #: ``graph.to_json()`` serialized (a string: immutable by design).
    graph_json: str
    #: Counters at snapshot time, for diagnostics/stats.
    versions: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {"name": self.name, "seq": self.seq,
                "num_papers": self.num_papers,
                "versions": dict(self.versions)}


def system_versions(system: "CovidKG") -> dict[str, int]:
    """Every invalidation counter a query result can depend on."""
    return {
        "store": system.store.version,
        "kg": system.graph.version,
        "all_fields": system.all_fields.collection.version,
        "title_abstract": system.title_abstract.collection.version,
        "table": system.tables.collection.version,
    }


def take_snapshot(system: "CovidKG", name: str, seq: int) -> Snapshot:
    return Snapshot(
        name=name,
        seq=seq,
        num_papers=len(system._ingested_papers),
        graph_json=json.dumps(system.graph.to_json(),
                              separators=(",", ":")),
        versions=system_versions(system),
    )


def restore_snapshot(system: "CovidKG", snapshot: Snapshot) -> None:
    """Rewind ``system`` to ``snapshot`` in place.

    The caller is responsible for exclusion (the serving tier holds its
    write lock).  The rebuild is deterministic: the retained *enriched*
    documents replay through fresh engines exactly as the original
    ingest indexed them (classification already happened before they
    were stored), and the graph restores from its serialized snapshot.
    Ranker configuration comes from ``system.config`` — a BM25 system
    rolls back to a BM25 system, field-length stats included.
    """
    from repro.docstore.sharding import ShardedCollection
    from repro.kg.graph import KnowledgeGraph

    old = system_versions(system)
    retained = list(system._ingested_papers[:snapshot.num_papers])

    store = ShardedCollection(
        "publications", shard_key=system.config.shard_key,
        num_shards=system.config.num_shards,
    )
    store.create_index("paper_id", unique=True)
    engines = system._build_search_engines()
    for document in retained:
        store.insert_one(document)
        for engine in engines.values():
            engine.add_paper(document)
    graph = KnowledgeGraph.from_json(json.loads(snapshot.graph_json))

    # Atomic flip: every reference swap below is a plain attribute
    # assignment; a reader admitted after this block sees only the
    # rebuilt state (readers are excluded anyway by the write lock).
    system.store = store
    system.all_fields = engines["all_fields"]
    system.title_abstract = engines["title_abstract"]
    system.tables = engines["table"]
    system.graph = graph
    system.matcher.graph = graph
    system.matcher.invalidate_cache()
    system.fusion.graph = graph
    system.kg_search.graph = graph
    system.kgql.graph = graph
    system._ingested_papers = retained

    # No counter may ever repeat a pre-rollback value, or a cached page
    # computed against the discarded state could read as fresh.
    system.store.advance_version(old["store"] + 1)
    system.graph.advance_version(old["kg"] + 1)
    system.all_fields.collection.advance_version(old["all_fields"] + 1)
    system.title_abstract.collection.advance_version(
        old["title_abstract"] + 1)
    system.tables.collection.advance_version(old["table"] + 1)


class SnapshotStore:
    """Bounded, ordered retention of named snapshots."""

    def __init__(self, retention: int = 8) -> None:
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.retention = retention
        self._snapshots: "OrderedDict[str, Snapshot]" = OrderedDict()

    def add(self, snapshot: Snapshot) -> None:
        self._snapshots[snapshot.name] = snapshot
        self._snapshots.move_to_end(snapshot.name)
        while len(self._snapshots) > self.retention:
            self._snapshots.popitem(last=False)

    def get(self, name: str) -> Snapshot:
        snapshot = self._snapshots.get(name)
        if snapshot is None:
            retained = ", ".join(self._snapshots) or "<none>"
            raise SnapshotNotFoundError(
                f"no snapshot named {name!r} (retained: {retained})")
        return snapshot

    def drop_after(self, seq: int) -> None:
        """Forget snapshots newer than ``seq`` (they describe undone state)."""
        for name in [name for name, snap in self._snapshots.items()
                     if snap.seq > seq]:
            del self._snapshots[name]

    def names(self) -> list[str]:
        return list(self._snapshots)

    def latest(self) -> Snapshot | None:
        if not self._snapshots:
            return None
        return next(reversed(self._snapshots.values()))

    def __len__(self) -> int:
        return len(self._snapshots)

    def __contains__(self, name: str) -> bool:
        return name in self._snapshots

"""Pre-index quality gate for streaming ingest batches.

Nothing reaches the WAL, the docstore, or the indexes until the whole
batch passes: schema conformance (:func:`repro.corpus.schema
.validate_paper`), required-field presence, table shape (every row must
be a list of cells — the enrichment pipeline and the metadata
classifier both assume rectangular-ish row lists), and batch-local
duplicate detection.  Failures are collected per document and surfaced
as one typed :class:`~repro.errors.IngestRejectedError` so a feed
operator sees every problem in one response instead of fixing them one
400 at a time.
"""

from __future__ import annotations

from typing import Any

from repro.corpus.schema import validate_paper
from repro.errors import IngestRejectedError, SchemaError


def _check_tables(paper: dict[str, Any]) -> None:
    """Table-shape checks beyond the base schema's ``rows`` presence."""
    for position, table in enumerate(paper.get("tables", [])):
        rows = table.get("rows")
        if not isinstance(rows, list):
            raise SchemaError(
                f"table {position}: rows must be a list, "
                f"got {type(rows).__name__}")
        for row_index, row in enumerate(rows):
            cells = row.get("cells") if isinstance(row, dict) else row
            if not isinstance(cells, list):
                raise SchemaError(
                    f"table {position} row {row_index}: cells must be "
                    f"a list, got {type(cells).__name__}")
        html = table.get("html")
        if html is not None and not isinstance(html, str):
            raise SchemaError(
                f"table {position}: html must be a string when present")


def check_paper(paper: Any) -> dict[str, Any]:
    """Validate one paper; returns it unchanged or raises SchemaError."""
    paper = validate_paper(paper)
    _check_tables(paper)
    return paper


def gate_batch(papers: list[Any]) -> list[dict[str, Any]]:
    """All-or-nothing batch validation.

    Returns the validated papers, or raises
    :class:`IngestRejectedError` carrying one ``{"index", "paper_id",
    "error"}`` entry per failing document.  Duplicate ``paper_id``
    values *inside the batch* are rejected here too — the store's
    unique index would only catch them after half the batch had been
    indexed.
    """
    if not isinstance(papers, list):
        raise IngestRejectedError(
            f"batch must be a list of papers, got {type(papers).__name__}")
    if not papers:
        raise IngestRejectedError("batch is empty")
    rejects: list[dict[str, Any]] = []
    seen: dict[str, int] = {}
    validated: list[dict[str, Any]] = []
    for index, paper in enumerate(papers):
        paper_id = paper.get("paper_id", "?") \
            if isinstance(paper, dict) else "?"
        try:
            checked = check_paper(paper)
        except SchemaError as exc:
            rejects.append({"index": index, "paper_id": str(paper_id),
                            "error": str(exc)})
            continue
        pid = checked["paper_id"]
        if pid in seen:
            rejects.append({
                "index": index, "paper_id": pid,
                "error": f"duplicate paper_id within the batch "
                         f"(first at index {seen[pid]})",
            })
            continue
        seen[pid] = index
        validated.append(checked)
    if rejects:
        raise IngestRejectedError(
            f"{len(rejects)} of {len(papers)} paper(s) rejected by the "
            "quality gate; nothing was ingested",
            rejects=rejects,
        )
    return validated

"""Zero-downtime streaming ingest: WAL, snapshots, quality gate, merge."""

from repro.ingest.engine import INGEST_DOC_COST, IngestEngine, IngestReceipt
from repro.ingest.quality_gate import check_paper, gate_batch
from repro.ingest.snapshots import (
    Snapshot,
    SnapshotStore,
    restore_snapshot,
    system_versions,
    take_snapshot,
)
from repro.ingest.wal import (
    DEFAULT_SEGMENT_BYTES,
    ReplayBatch,
    ReplayState,
    WriteAheadLog,
    encode_record,
    iter_frames,
    scan_segment,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "INGEST_DOC_COST",
    "IngestEngine",
    "IngestReceipt",
    "ReplayBatch",
    "ReplayState",
    "Snapshot",
    "SnapshotStore",
    "WriteAheadLog",
    "check_paper",
    "encode_record",
    "gate_batch",
    "iter_frames",
    "restore_snapshot",
    "scan_segment",
    "system_versions",
    "take_snapshot",
]

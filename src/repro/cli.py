"""Command-line interface for building and querying a CovidKG system.

Subcommands:

* ``generate``  — write a synthetic CORD-19-style corpus to JSONL
* ``build``     — train + ingest a corpus and save the system
* ``search``    — all-fields search against a saved system
* ``tables``    — table search against a saved system
* ``kg``          — knowledge-graph search with path highlighting
* ``kg-query``    — declarative KGQL / natural-language graph queries
* ``stats``       — system dashboard
* ``bias``        — run the bias interrogation
* ``serve-stats`` — drive queries through the serving tier, print metrics
                    (or fetch ``/v1/stats`` from a live gateway with
                    ``--url``)
* ``gateway``     — serve the system over HTTP (asyncio front end)
* ``ingest``      — stream a JSONL batch into a live gateway (``--url``)
                    or commit it through a local WAL (``--system``)
* ``analyze``     — run the repo's static analysis (concurrency lints)

Example session::

    repro-covidkg generate --papers 200 --out corpus.jsonl
    repro-covidkg build --corpus corpus.jsonl --out ./kgdata
    repro-covidkg search --system ./kgdata "vaccine side effects"
    repro-covidkg kg --system ./kgdata "side effects"
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api.persistence import load_system, save_system
from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.corpus.loader import load_papers_jsonl, save_papers_jsonl


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = CorpusGenerator(GeneratorConfig(
        seed=args.seed, papers_per_week=args.papers_per_week,
    ))
    papers = generator.papers(args.papers)
    count = save_papers_jsonl(papers, args.out)
    print(f"wrote {count} papers to {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    papers = load_papers_jsonl(args.corpus)
    system = CovidKG(CovidKGConfig(num_shards=args.shards,
                                   seed=args.seed,
                                   ranker=args.ranker,
                                   bm25_k1=args.bm25_k1,
                                   bm25_b=args.bm25_b))
    training = papers[: max(1, len(papers) // 3)]
    print(f"training on {len(training)} papers ...")
    system.train(training, word2vec_epochs=args.epochs)
    print(f"ingesting {len(papers)} papers ...")
    report = system.ingest(papers)
    print(f"fused {report.subtrees} subtrees: {report.actions()}")
    save_system(system, args.out)
    print(f"system saved to {args.out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    results = system.search(args.query, page=args.page)
    print(f"{results.total_matches} matches "
          f"(page {results.page}/{max(1, results.num_pages)}, "
          f"{results.seconds * 1000:.1f} ms)")
    for result in results:
        print(f"  [{result.score:7.2f}] {result.paper_id}  {result.title}")
        for field_name, excerpt in list(result.snippets.items())[:2]:
            print(f"      {field_name}: {excerpt[:100]}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    results = system.search_tables(args.query, page=args.page)
    print(f"{results.total_matches} papers with matching tables")
    for result in results:
        print(f"  [{result.score:7.2f}] {result.title}")
        for table in result.extras["tables"][:1]:
            print(f"      {table['caption'][:100]}")
    return 0


def _cmd_kg(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    hits = system.search_graph(args.query, top_k=args.top)
    if not hits:
        print("no matching knowledge-graph nodes")
        return 1
    for hit in hits:
        papers = f" ({len(hit.papers)} papers)" if hit.papers else ""
        print(f"  {hit.rendered_path()}{papers}")
    return 0


def _cmd_kg_query(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    if args.explain:
        explained = system.explain_graph_query(args.query, nl=args.nl)
        print(f"query: {explained['query']}")
        print(explained["plan"])
        print(f"estimated cost: {explained['estimated_cost']:.0f} "
              f"work units")
        return 0
    result = system.query_graph(args.query, nl=args.nl)
    if args.nl:
        print(f"kgql: {result.query}")
    shown = len(result.rows)
    print(f"{result.total_matches} matches "
          f"(showing {shown}, {result.seconds * 1000:.1f} ms)")
    for row in result.rows:
        for var in result.columns:
            node = row.bindings[var]
            print(f"  {var}: {node['rendered_path']}")
        if row.papers:
            print(f"      papers: {', '.join(row.papers)}")
    return 0 if result.rows else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    for key, value in system.statistics().items():
        print(f"{key}: {value}")
    return 0


def _flatten_stats(stats: dict, prefix: str = "") -> list[tuple[str, object]]:
    lines: list[tuple[str, object]] = []
    for key, value in stats.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            lines.extend(_flatten_stats(value, path))
        else:
            lines.append((path, value))
    return lines


def _print_flat_stats(stats: dict) -> None:
    """Shared rendering for in-process and over-the-wire stats."""
    for path, value in _flatten_stats(stats):
        if isinstance(value, float):
            print(f"{path}: {value:.3f}")
        else:
            print(f"{path}: {value}")


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    from concurrent.futures import wait

    from repro.serve.loadctl import LoadControlConfig
    from repro.serve.service import QueryService, ServeConfig

    if args.url:
        # A live gateway already has the serving tier warmed up; fetch
        # its /v1/stats instead of standing up an in-process service.
        from repro.gateway.client import GatewayClient

        with GatewayClient.from_url(args.url) as client:
            _print_flat_stats(client.stats())
        return 0
    if not args.system:
        print("serve-stats needs --system PATH or --url http://host:port")
        return 2
    system = load_system(args.system)
    config = ServeConfig(
        num_workers=args.workers,
        max_request_cost=args.max_cost,
        load_control=LoadControlConfig() if args.adaptive else None,
    )
    with QueryService(system, config) as service:
        # Warm the cache once so the concurrent burst below exercises
        # hits; firing all requests cold would just stampede misses.
        service.query("all_fields", query=args.query, page=1)
        futures = [
            service.submit("all_fields", query=args.query, page=1)
            for _ in range(args.requests)
        ]
        wait(futures)  # quiesce: settle every request before reporting
        for future in futures:
            future.result()
        served = service.query("all_fields", query=args.query, page=1)
        print(f"{served.value.total_matches} matches for {args.query!r} "
              f"({'cached' if served.cached else 'cold'}, "
              f"{served.seconds * 1000:.2f} ms)")
        _print_flat_stats(service.stats())
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Serve a system over HTTP until SIGTERM/SIGINT, then drain."""
    import logging

    from repro.gateway.server import run_gateway
    from repro.serve.loadctl import LoadControlConfig
    from repro.serve.service import (
        GatewayConfig,
        QueryService,
        ServeConfig,
    )

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(message)s",
    )
    if args.system:
        system = load_system(args.system)
    else:
        # No saved system: build a synthetic one in-process so smoke
        # tests and demos can start a gateway with zero setup.
        print(f"no --system given; generating {args.generate} synthetic "
              f"papers across {args.shards} shard(s) ...", flush=True)
        system = CovidKG(CovidKGConfig(num_shards=args.shards))
        papers = CorpusGenerator(GeneratorConfig(
            seed=args.seed, papers_per_week=25,
        )).papers(args.generate)
        system.ingest(papers)
    gateway_config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        drain_seconds=args.drain_seconds,
    )
    config = ServeConfig(
        num_workers=args.workers,
        max_queue=args.max_queue,
        max_request_cost=args.max_cost,
        load_control=LoadControlConfig() if args.adaptive else None,
        gateway=gateway_config,
        shared_cache=getattr(args, "shared_cache", None),
    )
    # /v1/ingest is always live: a persistent --ingest-dir carries the
    # WAL and snapshots across restarts (committed batches are replayed
    # on boot); without one, a temporary directory scopes them to this
    # process.
    import tempfile

    from repro.ingest.engine import IngestEngine

    scratch = None
    if args.ingest_dir:
        ingest_dir = args.ingest_dir
    else:
        scratch = tempfile.TemporaryDirectory(prefix="covidkg-ingest-")
        ingest_dir = scratch.name
    engine = IngestEngine(system, ingest_dir)
    replica_id = getattr(args, "replica_id", None)
    try:
        replayed = engine.replay()
        if replayed:
            print(f"replayed {replayed} committed ingest batch(es) "
                  f"from {ingest_dir}", flush=True)
        with QueryService(system, config) as service:
            service.attach_ingest(engine)

            def _announce(port: int) -> None:
                # Cluster mode: tell the coordinator (the shared cache
                # server) where this replica's socket landed.
                if service.shared_cache is not None and replica_id:
                    service.shared_cache.register(
                        replica_id, args.host, port, pid=os.getpid())

            try:
                return run_gateway(service, gateway_config,
                                   ready=_announce)
            finally:
                if service.shared_cache is not None and replica_id:
                    service.shared_cache.deregister(replica_id)
    finally:
        engine.close()
        if scratch is not None:
            scratch.cleanup()


def _cmd_cache_server(args: argparse.Namespace) -> int:
    """Serve the cluster's shared result cache until SIGTERM/SIGINT."""
    import logging

    from repro.cluster.cacheserver import run_cache_server

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(message)s",
    )
    return run_cache_server(args.host, args.port)


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Boot cache server + N replicas + router; serve until SIGTERM."""
    import logging

    from repro.cluster.runner import ClusterConfig, run_cluster

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(message)s",
    )
    return run_cluster(ClusterConfig(
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        system_dir=args.system,
        generate=args.generate,
        shards=args.shards,
        seed=args.seed,
        workers=args.workers,
        probe_interval=args.probe_interval,
        fail_threshold=args.fail_threshold,
        log_dir=args.log_dir,
    ))


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Commit batches of papers: over HTTP (--url) or locally (--system)."""
    from repro.errors import ReproError

    papers = load_papers_jsonl(args.corpus)
    size = args.batch_size if args.batch_size > 0 else len(papers)
    batches = [papers[start:start + size]
               for start in range(0, len(papers), size)]
    receipts: list[dict] = []

    def _print_receipt(receipt: dict) -> None:
        print(f"committed batch {receipt['batch_id']} "
              f"(seq {receipt['seq']}, snapshot {receipt['snapshot']}): "
              f"{receipt['accepted']} papers, {receipt['subtrees']} "
              f"fused subtrees in {receipt['seconds'] * 1000:.1f} ms")

    try:
        if args.url:
            from repro.gateway.client import GatewayClient

            with GatewayClient.from_url(args.url) as client:
                for batch in batches:
                    response = client.ingest(
                        batch, skip_duplicates=args.skip_duplicates)
                    payload = response.json()
                    if response.status != 200:
                        error = payload.get("error", {})
                        print(f"ingest failed ({response.status} "
                              f"{error.get('code', '?')}): "
                              f"{error.get('message', '')}")
                        if receipts:
                            # Earlier batches committed durably; the
                            # WAL keeps them across this failure.
                            print(f"{len(receipts)} earlier batch(es) "
                                  "remain committed")
                        return 1
                    receipts.append(payload["value"])
                    _print_receipt(receipts[-1])
        elif args.system:
            from pathlib import Path

            from repro.ingest.engine import IngestEngine

            system = load_system(args.system)
            wal_dir = args.ingest_dir or str(Path(args.system) / "ingest")
            with IngestEngine(system, wal_dir) as engine:
                replayed = engine.replay()
                if replayed:
                    print(f"replayed {replayed} committed batch(es) "
                          f"from {wal_dir}")
                for batch in batches:
                    receipts.append(engine.commit_batch(
                        batch,
                        skip_duplicates=args.skip_duplicates).to_json())
                    _print_receipt(receipts[-1])
                if args.checkpoint:
                    engine.checkpoint(args.system)
                    print(f"checkpointed system to {args.system} "
                          f"(WAL truncated)")
        else:
            print("ingest needs --system PATH or --url http://host:port")
            return 2
    except ReproError as exc:
        print(f"ingest failed: {exc}")
        if receipts:
            print(f"{len(receipts)} earlier batch(es) remain committed")
        return 1
    accepted = sum(receipt["accepted"] for receipt in receipts)
    if len(receipts) != 1:
        print(f"committed {len(receipts)} batch(es): "
              f"{accepted} papers total")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Run the full analysis; fail only on non-baseline findings."""
    from repro.analysis.engine import analyze_paths, changed_files
    from repro.analysis.lint import (
        format_findings,
        load_baseline,
        new_findings,
        save_baseline,
    )
    from repro.analysis.rules import default_rules, project_rules

    result = analyze_paths(
        args.paths,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
    )
    findings = result.findings
    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) accepted "
              f"in {args.baseline}")
        return 0
    fresh = new_findings(findings, load_baseline(args.baseline))
    if args.changed_only:
        changed = changed_files(".", args.since)
        if changed is None:
            print("analyze: --changed-only could not query git; "
                  "reporting all findings", file=sys.stderr)
        else:
            fresh = [f for f in fresh if f.path in changed]

    if args.format == "sarif":
        from repro.analysis.sarif import dump_sarif

        metadata = [(rule.rule_id, rule.severity, rule.description)
                    for rule in [*default_rules(), *project_rules()]]
        report = dump_sarif(fresh, metadata)
    elif args.format == "json":
        report = format_findings(fresh, "json")
    else:
        report = None

    if report is not None:
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(report, encoding="utf-8")
            print(f"wrote {len(fresh)} finding(s) to {args.output}")
        else:
            print(report)
    else:
        known = len(findings) - len(fresh)
        if fresh:
            print(format_findings(fresh))
        if known:
            print(f"({known} baseline finding(s) suppressed; regenerate "
                  f"with --update-baseline)")
        if not fresh:
            cached = (f" ({result.cache_hits}/{result.files} files "
                      f"from cache)") if result.cache_hits else ""
            print(f"analyze: clean{cached}")
    return 1 if fresh else 0


def _cmd_bias(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    report = system.interrogate_bias(num_clusters=args.clusters)
    print(f"topic balance:  {report.topic_balance:.3f}")
    print(f"source balance: {report.source_balance:.3f}")
    for flag in report.worst(args.top):
        print(f"  {flag}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-covidkg",
        description="Build and query a COVIDKG.ORG-style knowledge graph.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("--papers", type=int, default=100)
    generate.add_argument("--papers-per-week", type=int, default=50)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="train + ingest + save a system")
    build.add_argument("--corpus", required=True)
    build.add_argument("--out", required=True)
    build.add_argument("--shards", type=int, default=4)
    build.add_argument("--epochs", type=int, default=2)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--ranker", choices=("tfidf", "bm25"),
                       default="tfidf",
                       help="search ranking function (default: the "
                            "paper's TF-IDF+proximity scorer)")
    build.add_argument("--bm25-k1", type=float, default=1.5,
                       help="BM25 term-frequency saturation (k1)")
    build.add_argument("--bm25-b", type=float, default=0.75,
                       help="BM25 length-normalization strength (b)")
    build.set_defaults(func=_cmd_build)

    for name, func, help_text in (
        ("search", _cmd_search, "all-fields search"),
        ("tables", _cmd_tables, "table search"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--system", required=True)
        cmd.add_argument("--page", type=int, default=1)
        cmd.add_argument("query")
        cmd.set_defaults(func=func)

    kg = sub.add_parser("kg", help="knowledge-graph search")
    kg.add_argument("--system", required=True)
    kg.add_argument("--top", type=int, default=10)
    kg.add_argument("query")
    kg.set_defaults(func=_cmd_kg)

    kg_query = sub.add_parser(
        "kg-query",
        help="declarative KGQL (or natural-language, --nl) graph query",
    )
    kg_query.add_argument("--system", required=True)
    kg_query.add_argument("--nl", action="store_true",
                          help="translate a natural-language question "
                               "through the template front end first")
    kg_query.add_argument("--explain", action="store_true",
                          help="print the logical plan and admission "
                               "cost without executing")
    kg_query.add_argument("query")
    kg_query.set_defaults(func=_cmd_kg_query)

    stats = sub.add_parser("stats", help="system dashboard")
    stats.add_argument("--system", required=True)
    stats.set_defaults(func=_cmd_stats)

    bias = sub.add_parser("bias", help="bias interrogation")
    bias.add_argument("--system", required=True)
    bias.add_argument("--clusters", type=int, default=8)
    bias.add_argument("--top", type=int, default=10)
    bias.set_defaults(func=_cmd_bias)

    serve_stats = sub.add_parser(
        "serve-stats",
        help="run queries through the serving tier and print its "
             "metrics, or fetch /v1/stats from a live gateway (--url)",
    )
    serve_stats.add_argument("--system", default=None)
    serve_stats.add_argument("--url", default=None,
                             help="fetch stats from a running gateway "
                                  "(http://host:port) instead of "
                                  "standing up an in-process service")
    serve_stats.add_argument("--requests", type=int, default=50,
                             help="number of requests to issue")
    serve_stats.add_argument("--workers", type=int, default=4)
    serve_stats.add_argument("--adaptive", action="store_true",
                             help="enable the adaptive load controller "
                                  "(fan-out budgets, AIMD width)")
    serve_stats.add_argument("--max-cost", type=float, default=None,
                             help="reject requests whose estimated "
                                  "pipeline cost exceeds this budget")
    serve_stats.add_argument("query", nargs="?", default="covid")
    serve_stats.set_defaults(func=_cmd_serve_stats)

    gateway = sub.add_parser(
        "gateway",
        help="serve the system as JSON over HTTP (asyncio front end); "
             "SIGTERM/SIGINT drains gracefully",
    )
    gateway.add_argument("--system", default=None,
                         help="saved system directory (omit to serve a "
                              "generated synthetic corpus)")
    gateway.add_argument("--generate", type=int, default=60,
                         help="synthetic papers to build when no "
                              "--system is given")
    gateway.add_argument("--shards", type=int, default=4,
                         help="shard count for the generated system")
    gateway.add_argument("--seed", type=int, default=0)
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8080,
                         help="0 binds an ephemeral port")
    gateway.add_argument("--workers", type=int, default=4)
    gateway.add_argument("--max-queue", type=int, default=64)
    gateway.add_argument("--max-connections", type=int, default=1024)
    gateway.add_argument("--drain-seconds", type=float, default=5.0)
    gateway.add_argument("--adaptive", action="store_true",
                         help="enable the adaptive load controller")
    gateway.add_argument("--max-cost", type=float, default=None,
                         help="reject requests priced over this budget")
    gateway.add_argument("--ingest-dir", default=None,
                         help="directory for the ingest WAL + snapshots "
                              "(committed batches replay on restart; "
                              "default: a per-process temp dir)")
    gateway.add_argument("--shared-cache", default=None,
                         metavar="HOST:PORT",
                         help="address of a cluster shared result "
                              "cache (repro-covidkg cache-server)")
    gateway.add_argument("--replica-id", default=None,
                         help="register under this id with the cluster "
                              "coordinator once the socket is bound")
    gateway.set_defaults(func=_cmd_gateway)

    cache_server = sub.add_parser(
        "cache-server",
        help="serve the cluster's shared result cache + replica "
             "coordinator on one TCP port",
    )
    cache_server.add_argument("--host", default="127.0.0.1")
    cache_server.add_argument("--port", type=int, default=8200,
                              help="0 binds an ephemeral port")
    cache_server.set_defaults(func=_cmd_cache_server)

    cluster = sub.add_parser(
        "cluster",
        help="boot a full serving cluster: shared cache + N gateway "
             "replicas + consistent-hash router on one port",
    )
    cluster.add_argument("--replicas", type=int, default=2)
    cluster.add_argument("--system", default=None,
                         help="saved system directory every replica "
                              "serves (omit to generate one synthetic "
                              "corpus shared by all replicas)")
    cluster.add_argument("--generate", type=int, default=60,
                         help="synthetic papers to build when no "
                              "--system is given")
    cluster.add_argument("--shards", type=int, default=4)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8080,
                         help="router (client-facing) port; 0 binds an "
                              "ephemeral one")
    cluster.add_argument("--workers", type=int, default=4,
                         help="worker threads per replica")
    cluster.add_argument("--probe-interval", type=float, default=0.25,
                         help="seconds between replica health probes")
    cluster.add_argument("--fail-threshold", type=int, default=3,
                         help="consecutive failed probes before a "
                              "replica is ejected from the ring")
    cluster.add_argument("--log-dir", default=None,
                         help="directory for per-replica logs "
                              "(default: a per-cluster temp dir)")
    cluster.set_defaults(func=_cmd_cluster)

    ingest = sub.add_parser(
        "ingest",
        help="commit a JSONL batch of papers: POST to a live gateway "
             "(--url) or apply locally through a WAL (--system)",
    )
    ingest.add_argument("--corpus", required=True,
                        help="JSONL file of papers to commit")
    ingest.add_argument("--batch-size", type=int, default=10,
                        help="papers per committed batch; the default "
                             "keeps each POST under the gateway's "
                             "64 KiB body cap (0 = one batch)")
    ingest.add_argument("--url", default=None,
                        help="POST the batch to a running gateway "
                             "(http://host:port)")
    ingest.add_argument("--system", default=None,
                        help="saved system directory to apply the batch "
                             "to locally")
    ingest.add_argument("--ingest-dir", default=None,
                        help="WAL directory for local mode "
                             "(default: <system>/ingest)")
    ingest.add_argument("--skip-duplicates", action="store_true",
                        help="silently drop already-ingested paper_ids "
                             "instead of rejecting the batch")
    ingest.add_argument("--checkpoint", action="store_true",
                        help="after committing, save the system back "
                             "and truncate the WAL")
    ingest.set_defaults(func=_cmd_ingest)

    analyze = sub.add_parser(
        "analyze",
        help="run the custom concurrency/hygiene lints "
             "(exit 1 on findings not in the baseline)",
    )
    analyze.add_argument("--paths", nargs="+",
                         default=["src/repro", "benchmarks"],
                         help="files/directories to lint")
    analyze.add_argument("--baseline", default="analysis-baseline.json",
                         help="accepted-findings file (CI fails only on "
                              "new findings)")
    analyze.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text")
    analyze.add_argument("--output", default=None,
                         help="write the json/sarif report to this "
                              "file instead of stdout")
    analyze.add_argument("--update-baseline", action="store_true",
                         help="accept the current findings as the new "
                              "baseline")
    analyze.add_argument("--changed-only", action="store_true",
                         help="report only findings in files changed "
                              "vs --since (plus untracked files)")
    analyze.add_argument("--since", default="HEAD",
                         help="git ref --changed-only diffs against")
    analyze.add_argument("--no-cache", action="store_true",
                         help="ignore and do not write the per-file "
                              "analysis cache")
    analyze.add_argument("--cache-dir",
                         default=".repro-analysis-cache",
                         help="per-file analysis cache directory")
    analyze.add_argument("--jobs", type=int, default=None,
                         help="parallel per-file analysis workers")
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Tabular embeddings: term-level and cell-level tuple representations.

Figure 3's BiGRU ensemble runs two parallel paths over a table tuple:

* **term-wise** — the tuple's cells are concatenated, tokenized, and each
  *term* becomes one embedding step, and
* **cell-wise** — each whole *cell* becomes one step whose vector is the
  mean of its term embeddings (after the Section 3.4 numeric substitution).

:class:`TabularEmbedder` produces both index sequences (for trainable
embedding layers) and dense vector sequences (for pre-trained, frozen
vectors), padded/truncated to fixed lengths so batches are rectangular.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.word2vec import Word2Vec
from repro.errors import ModelError
from repro.text.normalize import NumericNormalizer
from repro.text.tokenizer import tokenize
from repro.text.vocabulary import UNKNOWN_INDEX, Vocabulary


class TabularEmbedder:
    """Turn table tuples into padded term- and cell-level sequences."""

    def __init__(self, vocabulary: Vocabulary, max_terms: int = 24,
                 max_cells: int = 8,
                 word2vec: Word2Vec | None = None) -> None:
        if max_terms < 1 or max_cells < 1:
            raise ModelError("max_terms and max_cells must be positive")
        self.vocabulary = vocabulary
        self.max_terms = max_terms
        self.max_cells = max_cells
        self.word2vec = word2vec
        self._normalizer = NumericNormalizer()

    # -- index sequences (inputs to trainable Embedding layers) -------------

    def term_indices(self, cells: list[str]) -> np.ndarray:
        """Tuple -> fixed-length term-index sequence (UNK-padded)."""
        tokens: list[str] = []
        for cell in cells:
            tokens.extend(tokenize(self._normalizer.normalize(cell)))
        indices = [self.vocabulary.index_of(token) for token in tokens]
        return self._pad(indices, self.max_terms)

    def cell_token_indices(self, cells: list[str]) -> np.ndarray:
        """Tuple -> (max_cells, per-cell first-token index) sequence.

        Each cell is represented by its most informative (first
        in-vocabulary) token; cells with no known token map to UNK.
        """
        indices = []
        for cell in cells:
            tokens = tokenize(self._normalizer.normalize(cell))
            index = UNKNOWN_INDEX
            for token in tokens:
                candidate = self.vocabulary.index_of(token)
                if candidate != UNKNOWN_INDEX:
                    index = candidate
                    break
            indices.append(index)
        return self._pad(indices, self.max_cells)

    @staticmethod
    def _pad(indices: list[int], length: int) -> np.ndarray:
        padded = indices[:length] + [UNKNOWN_INDEX] * (length - len(indices))
        return np.array(padded, dtype=np.int64)

    def batch_term_indices(self, tuples: list[list[str]]) -> np.ndarray:
        return np.stack([self.term_indices(cells) for cells in tuples])

    def batch_cell_indices(self, tuples: list[list[str]]) -> np.ndarray:
        return np.stack([self.cell_token_indices(cells) for cells in tuples])

    # -- dense vectors (pre-trained Word2Vec path) --------------------------

    def _require_word2vec(self) -> Word2Vec:
        if self.word2vec is None:
            raise ModelError("TabularEmbedder was built without a Word2Vec")
        return self.word2vec

    def cell_vectors(self, cells: list[str]) -> np.ndarray:
        """Tuple -> (max_cells, dim): mean term vector per cell."""
        word2vec = self._require_word2vec()
        vectors = np.zeros((self.max_cells, word2vec.dim))
        for position, cell in enumerate(cells[: self.max_cells]):
            vectors[position] = word2vec.text_vector(
                self._normalizer.normalize(cell)
            )
        return vectors

    def tuple_vector(self, cells: list[str]) -> np.ndarray:
        """A single dense vector for the whole tuple (mean of cells)."""
        word2vec = self._require_word2vec()
        non_empty = [cell for cell in cells if cell]
        if not non_empty:
            return np.zeros(word2vec.dim)
        vectors = [
            word2vec.text_vector(self._normalizer.normalize(cell))
            for cell in non_empty
        ]
        return np.mean(vectors, axis=0)

"""Embeddings: Word2Vec (skip-gram + negative sampling) and tabular embeddings.

The BiGRU ensemble (paper Figure 3) consumes two parallel embedding
streams — term-level and cell-level — from Word2Vec models "pre-trained on
WDC and CORD-19 and then fine-tuned with end-to-end training on the target
corpus".  The KG fusion module (Section 4.2) uses the same vectors for
embedding-driven matching of unseen entities.
"""

from repro.embeddings.similarity import cosine_similarity, nearest_neighbors
from repro.embeddings.tabular import TabularEmbedder
from repro.embeddings.word2vec import Word2Vec

__all__ = [
    "cosine_similarity",
    "nearest_neighbors",
    "TabularEmbedder",
    "Word2Vec",
]

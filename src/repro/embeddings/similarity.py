"""Vector similarity utilities shared by search ranking and KG matching."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity in [-1, 1]; 0.0 when either vector is zero."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ModelError(
            f"vector shapes disagree: {left.shape} vs {right.shape}"
        )
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(left @ right / (left_norm * right_norm))


def nearest_neighbors(query: np.ndarray, candidates: np.ndarray,
                      top_k: int = 5) -> list[tuple[int, float]]:
    """Indices and cosine similarities of the nearest candidate rows."""
    query = np.asarray(query, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if candidates.ndim != 2 or candidates.shape[1] != query.shape[0]:
        raise ModelError("candidates must be (n, dim) matching the query")
    query_norm = float(np.linalg.norm(query))
    if query_norm == 0.0:
        return []
    norms = np.linalg.norm(candidates, axis=1)
    safe = np.where(norms == 0.0, 1.0, norms)
    similarities = (candidates @ query) / (safe * query_norm)
    similarities = np.where(norms == 0.0, -np.inf, similarities)
    order = np.argsort(-similarities)[:top_k]
    return [
        (int(i), float(similarities[int(i)]))
        for i in order
        if np.isfinite(similarities[int(i)])
    ]

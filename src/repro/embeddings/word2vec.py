"""Word2Vec: skip-gram with negative sampling, from scratch on numpy.

Mikolov et al. (2013) — the paper's ref [65].  The implementation trains
input ("in") and output ("out") vector tables with SGD over (center,
context) pairs sampled from a sliding window, drawing negatives from the
unigram distribution raised to the 3/4 power.

``fit`` pre-trains on one corpus; calling ``fit`` again with
``fine_tune=True`` continues from the current vectors on a new corpus —
the pre-train-on-WDC+CORD-19 / fine-tune-on-target recipe of Figure 3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.text.tokenizer import tokenize
from repro.text.vocabulary import UNKNOWN_INDEX, Vocabulary


class Word2Vec:
    """Skip-gram negative-sampling embeddings over a fixed vocabulary."""

    def __init__(self, vocabulary: Vocabulary, dim: int = 50,
                 window: int = 3, negatives: int = 5,
                 learning_rate: float = 0.025, seed: int = 0,
                 subsample: float | None = None) -> None:
        if dim < 1:
            raise ModelError("dim must be positive")
        if window < 1:
            raise ModelError("window must be positive")
        if subsample is not None and subsample <= 0:
            raise ModelError("subsample threshold must be positive")
        self.vocabulary = vocabulary
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.learning_rate = learning_rate
        self.seed = seed
        self.subsample = subsample
        rng = np.random.default_rng(seed)
        size = len(vocabulary)
        self.in_vectors = rng.uniform(-0.5, 0.5, (size, dim)) / dim
        self.out_vectors = np.zeros((size, dim))
        self._fitted = False

    # -- training ---------------------------------------------------------

    def _encode_sentences(self, sentences: list[str]) -> list[list[int]]:
        encoded = []
        for sentence in sentences:
            indices = [
                self.vocabulary.index_of(token)
                for token in tokenize(sentence)
            ]
            indices = [i for i in indices if i != UNKNOWN_INDEX]
            if len(indices) >= 2:
                encoded.append(indices)
        return encoded

    def _negative_table(self) -> np.ndarray:
        counts = np.array([
            max(self.vocabulary.count_of(self.vocabulary.term_at(i)), 1)
            for i in range(len(self.vocabulary))
        ], dtype=np.float64)
        counts[UNKNOWN_INDEX] = 0.0
        weights = counts ** 0.75
        total = weights.sum()
        if total == 0:
            raise ModelError("vocabulary has no counted terms")
        return weights / total

    def fit(self, sentences: list[str], epochs: int = 3,
            fine_tune: bool = False) -> "Word2Vec":
        """Train (or continue training when ``fine_tune=True``)."""
        if self._fitted and not fine_tune:
            raise ModelError(
                "model already trained; pass fine_tune=True to continue"
            )
        encoded = self._encode_sentences(sentences)
        if not encoded:
            raise ModelError("no trainable sentences (all tokens unknown?)")
        rng = np.random.default_rng(self.seed + (1 if fine_tune else 0))
        negative_probs = self._negative_table()
        keep_probs = self._subsample_table(encoded)
        lr = self.learning_rate * (0.3 if fine_tune else 1.0)

        for _ in range(epochs):
            for sentence in encoded:
                if keep_probs is not None:
                    sentence = [
                        index for index in sentence
                        if rng.random() < keep_probs[index]
                    ]
                    if len(sentence) < 2:
                        continue
                length = len(sentence)
                for position, center in enumerate(sentence):
                    span = int(rng.integers(1, self.window + 1))
                    lo = max(0, position - span)
                    hi = min(length, position + span + 1)
                    for context_pos in range(lo, hi):
                        if context_pos == position:
                            continue
                        context = sentence[context_pos]
                        self._train_pair(
                            center, context, negative_probs, rng, lr
                        )
        self._fitted = True
        return self

    def _subsample_table(self, encoded: list[list[int]]
                         ) -> np.ndarray | None:
        """Mikolov frequent-word subsampling keep-probabilities.

        ``p_keep(w) = sqrt(t / f(w))`` capped at 1, where ``f`` is the
        word's corpus frequency and ``t`` the ``subsample`` threshold —
        very frequent words are randomly dropped so rare words get more
        gradient signal.
        """
        if self.subsample is None:
            return None
        counts = np.zeros(len(self.vocabulary))
        for sentence in encoded:
            for index in sentence:
                counts[index] += 1
        total = counts.sum()
        if total == 0:
            return None
        frequencies = counts / total
        with np.errstate(divide="ignore"):
            keep = np.sqrt(self.subsample / np.maximum(frequencies, 1e-12))
        return np.minimum(keep, 1.0)

    def _train_pair(self, center: int, context: int,
                    negative_probs: np.ndarray,
                    rng: np.random.Generator, lr: float) -> None:
        negatives = rng.choice(
            len(negative_probs), size=self.negatives, p=negative_probs
        )
        targets = np.concatenate(([context], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0

        center_vec = self.in_vectors[center]
        out_vecs = self.out_vectors[targets]
        scores = out_vecs @ center_vec
        predictions = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
        errors = (predictions - labels)[:, None]

        grad_center = (errors * out_vecs).sum(axis=0)
        self.out_vectors[targets] -= lr * errors * center_vec[None, :]
        self.in_vectors[center] -= lr * grad_center

    # -- lookups -------------------------------------------------------------

    def vector(self, term: str) -> np.ndarray:
        """The (input) embedding of ``term``; UNK vector when unseen."""
        if not self._fitted:
            raise NotFittedError("Word2Vec.fit has not run")
        return self.in_vectors[self.vocabulary.index_of(term)]

    def vectors(self, terms: list[str]) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("Word2Vec.fit has not run")
        indices = [self.vocabulary.index_of(term) for term in terms]
        return self.in_vectors[indices]

    def text_vector(self, text: str) -> np.ndarray:
        """Mean vector of the in-vocabulary tokens of ``text``."""
        if not self._fitted:
            raise NotFittedError("Word2Vec.fit has not run")
        indices = [
            self.vocabulary.index_of(token) for token in tokenize(text)
        ]
        indices = [i for i in indices if i != UNKNOWN_INDEX]
        if not indices:
            return np.zeros(self.dim)
        return self.in_vectors[indices].mean(axis=0)

    def most_similar(self, term: str, top_k: int = 5
                     ) -> list[tuple[str, float]]:
        """Nearest vocabulary terms by cosine similarity."""
        if not self._fitted:
            raise NotFittedError("Word2Vec.fit has not run")
        query_index = self.vocabulary.index_of(term)
        query = self.in_vectors[query_index]
        norms = np.linalg.norm(self.in_vectors, axis=1) + 1e-12
        query_norm = np.linalg.norm(query) + 1e-12
        similarities = (self.in_vectors @ query) / (norms * query_norm)
        similarities[query_index] = -np.inf
        similarities[UNKNOWN_INDEX] = -np.inf
        order = np.argsort(-similarities)[:top_k]
        return [
            (self.vocabulary.term_at(int(i)), float(similarities[int(i)]))
            for i in order
        ]

    @property
    def matrix(self) -> np.ndarray:
        """The full (vocab_size, dim) input-vector table."""
        return self.in_vectors

    # -- serialization ----------------------------------------------------

    def save(self, path) -> None:
        """Persist trained vectors + hyperparameters to an ``.npz`` file.

        The vocabulary is saved alongside (terms + counts) so ``load``
        restores a self-contained model — the "released, pre-trained
        ... Embeddings" of the paper's API (№11/№13).
        """
        import json as _json
        from pathlib import Path

        if not self._fitted:
            raise NotFittedError("cannot save an untrained Word2Vec")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        config = {
            "dim": self.dim, "window": self.window,
            "negatives": self.negatives,
            "learning_rate": self.learning_rate, "seed": self.seed,
            "subsample": self.subsample,
            "vocabulary": self.vocabulary.to_json(),
        }
        np.savez_compressed(
            path,
            in_vectors=self.in_vectors,
            out_vectors=self.out_vectors,
            config=np.frombuffer(
                _json.dumps(config).encode("utf-8"), dtype=np.uint8
            ),
        )

    @classmethod
    def load(cls, path) -> "Word2Vec":
        """Restore a model saved with :meth:`save`."""
        import json as _json

        from repro.text.vocabulary import Vocabulary

        with np.load(path) as archive:
            config = _json.loads(bytes(archive["config"]).decode("utf-8"))
            vocabulary = Vocabulary.from_json(config.pop("vocabulary"))
            model = cls(vocabulary, **config)
            model.in_vectors = archive["in_vectors"].copy()
            model.out_vectors = archive["out_vectors"].copy()
        model._fitted = True
        return model

"""Sequential model: a stack of layers with a Keras-like training loop."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ModelError
from repro.neural.layers import Layer
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.metrics import binary_metrics
from repro.neural.optimizers import Adam


@dataclass
class History:
    """Per-epoch training history."""

    losses: list[float] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ModelError("no epochs recorded")
        return self.losses[-1]

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds)


def batches(num_samples: int, batch_size: int,
            rng: np.random.Generator | None = None
            ) -> Iterator[np.ndarray]:
    """Yield index batches, shuffled when an rng is supplied."""
    order = np.arange(num_samples)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, num_samples, batch_size):
        yield order[start:start + batch_size]


class Sequential:
    """A linear stack of layers trained with mini-batch gradient descent."""

    def __init__(self, layers: list[Layer], loss=None, optimizer=None,
                 seed: int = 0) -> None:
        if not layers:
            raise ModelError("Sequential requires at least one layer")
        self.layers = layers
        self.loss = loss or BinaryCrossEntropy()
        self.optimizer = optimizer or Adam(clip_norm=5.0)
        self.seed = seed

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        outputs = inputs
        for layer in self.layers:
            outputs = layer.forward(outputs, training)
        return outputs

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        grad = grad_outputs
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def fit(self, inputs: np.ndarray, targets: np.ndarray,
            epochs: int = 10, batch_size: int = 32,
            verbose: bool = False,
            validation_data: tuple[np.ndarray, np.ndarray] | None = None,
            patience: int | None = None) -> History:
        """Train; returns the loss/time history.

        With ``validation_data`` the held-out loss is recorded per epoch;
        adding ``patience`` enables early stopping — training halts once
        the validation loss fails to improve for that many consecutive
        epochs.
        """
        inputs = np.asarray(inputs)
        targets = np.asarray(targets, dtype=np.float64)
        if len(inputs) != len(targets):
            raise ModelError("inputs and targets disagree in length")
        if patience is not None and validation_data is None:
            raise ModelError("patience requires validation_data")
        rng = np.random.default_rng(self.seed)
        history = History()
        best_validation = float("inf")
        epochs_without_improvement = 0
        for epoch in range(epochs):
            started = time.perf_counter()
            epoch_loss = 0.0
            num_batches = 0
            for batch_idx in batches(len(inputs), batch_size, rng):
                batch_inputs = inputs[batch_idx]
                batch_targets = targets[batch_idx]
                outputs = self.forward(batch_inputs, training=True)
                flat_outputs = outputs.reshape(batch_targets.shape)
                epoch_loss += self.loss.forward(flat_outputs, batch_targets)
                grad = self.loss.backward(flat_outputs, batch_targets)
                self.zero_grads()
                self.backward(grad.reshape(outputs.shape))
                self.optimizer.step(self.params, self.grads)
                num_batches += 1
            history.losses.append(epoch_loss / max(1, num_batches))
            history.seconds.append(time.perf_counter() - started)
            if validation_data is not None:
                val_inputs, val_targets = validation_data
                val_targets = np.asarray(val_targets, dtype=np.float64)
                val_outputs = self.forward(
                    np.asarray(val_inputs), training=False
                )
                validation_loss = self.loss.forward(
                    val_outputs.reshape(val_targets.shape), val_targets
                )
                history.validation_losses.append(validation_loss)
                if patience is not None:
                    if validation_loss < best_validation - 1e-12:
                        best_validation = validation_loss
                        epochs_without_improvement = 0
                    else:
                        epochs_without_improvement += 1
                        if epochs_without_improvement >= patience:
                            history.stopped_early = True
                            break
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} "
                      f"loss={history.losses[-1]:.4f}")
        return history

    def predict_proba(self, inputs: np.ndarray,
                      batch_size: int = 256) -> np.ndarray:
        """Predicted probabilities, flattened to (num_samples,)."""
        inputs = np.asarray(inputs)
        chunks = []
        for batch_idx in batches(len(inputs), batch_size):
            outputs = self.forward(inputs[batch_idx], training=False)
            chunks.append(outputs.reshape(len(batch_idx), -1)[:, 0])
        return np.concatenate(chunks) if chunks else np.array([])

    def predict(self, inputs: np.ndarray,
                threshold: float = 0.5) -> np.ndarray:
        """Hard binary labels in {0, 1}."""
        return (self.predict_proba(inputs) >= threshold).astype(int)

    def evaluate(self, inputs: np.ndarray,
                 targets: np.ndarray) -> dict[str, float]:
        """Binary P/R/F1/accuracy on a held-out set."""
        predictions = self.predict(inputs)
        return binary_metrics(np.asarray(targets), predictions)

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.params)

"""Numerically-stable activation functions and their derivatives."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def sigmoid_grad(output: np.ndarray) -> np.ndarray:
    """d sigmoid / dx expressed in terms of the *output*."""
    return output * (1.0 - output)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(output: np.ndarray) -> np.ndarray:
    """d tanh / dx expressed in terms of the *output*."""
    return 1.0 - output ** 2


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(np.float64)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)

"""Weight initializers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, size: int) -> np.ndarray:
    """Orthogonal initialization for square recurrent matrices."""
    matrix = rng.standard_normal((size, size))
    q, _ = np.linalg.qr(matrix)
    return q


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape)

"""Recurrent layers: GRU, LSTM (full BPTT), and a Bidirectional wrapper.

Conventions:

* inputs are ``(batch, time, input_size)``,
* ``return_sequences=True`` yields ``(batch, time, hidden)``, otherwise the
  last hidden state ``(batch, hidden)``,
* GRU update: ``h_t = z_t * h_{t-1} + (1 - z_t) * h~_t`` (Keras convention).

The paper chose biGRU over biLSTM because the quality difference was small
while GRU trained faster (Section 3.6) — both cells are implemented so the
E2 benchmark can reproduce that trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.neural.activations import sigmoid, sigmoid_grad, tanh_grad
from repro.neural.initializers import glorot_uniform, orthogonal
from repro.neural.layers import Layer


class GRU(Layer):
    """Gated recurrent unit layer with backprop through time."""

    def __init__(self, input_size: int, hidden_size: int,
                 return_sequences: bool = True, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        # Gate order along the last axis: [z | r | h~].
        self.w_x = glorot_uniform(rng, input_size, 3 * hidden_size,
                                  shape=(input_size, 3 * hidden_size))
        self.w_h = np.concatenate(
            [orthogonal(rng, hidden_size) for _ in range(3)], axis=1
        )
        self.bias = np.zeros(3 * hidden_size)
        self.params = [self.w_x, self.w_h, self.bias]
        self.grads = [np.zeros_like(p) for p in self.params]
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[2] != self.input_size:
            raise ModelError(
                f"GRU expects (batch, time, {self.input_size}), "
                f"got {inputs.shape}"
            )
        batch, time, _ = inputs.shape
        h = self.hidden_size
        hidden = np.zeros((batch, h))
        hiddens = np.zeros((batch, time, h))
        z_all = np.zeros((batch, time, h))
        r_all = np.zeros((batch, time, h))
        cand_all = np.zeros((batch, time, h))
        prev_all = np.zeros((batch, time, h))

        for t in range(time):
            x_t = inputs[:, t, :]
            gates_x = x_t @ self.w_x + self.bias
            gates_h = hidden @ self.w_h
            z = sigmoid(gates_x[:, :h] + gates_h[:, :h])
            r = sigmoid(gates_x[:, h:2 * h] + gates_h[:, h:2 * h])
            candidate = np.tanh(
                gates_x[:, 2 * h:] + (r * hidden) @ self.w_h[:, 2 * h:]
            )
            prev_all[:, t, :] = hidden
            hidden = z * hidden + (1.0 - z) * candidate
            hiddens[:, t, :] = hidden
            z_all[:, t, :] = z
            r_all[:, t, :] = r
            cand_all[:, t, :] = candidate

        self._cache = {
            "inputs": inputs, "hiddens": hiddens, "z": z_all, "r": r_all,
            "candidate": cand_all, "prev": prev_all,
        }
        if self.return_sequences:
            return hiddens
        return hiddens[:, -1, :]

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward before forward")
        cache = self._cache
        inputs = cache["inputs"]
        batch, time, _ = inputs.shape
        h = self.hidden_size

        if self.return_sequences:
            grad_seq = grad_outputs
        else:
            grad_seq = np.zeros((batch, time, h))
            grad_seq[:, -1, :] = grad_outputs

        grad_inputs = np.zeros_like(inputs)
        grad_hidden = np.zeros((batch, h))
        w_hz, w_hr, w_hc = (
            self.w_h[:, :h], self.w_h[:, h:2 * h], self.w_h[:, 2 * h:]
        )

        for t in reversed(range(time)):
            dh = grad_seq[:, t, :] + grad_hidden
            z = cache["z"][:, t, :]
            r = cache["r"][:, t, :]
            candidate = cache["candidate"][:, t, :]
            prev = cache["prev"][:, t, :]
            x_t = inputs[:, t, :]

            d_candidate = dh * (1.0 - z)
            d_candidate_pre = d_candidate * tanh_grad(candidate)
            dz = dh * (prev - candidate)
            dz_pre = dz * sigmoid_grad(z)

            d_rh = d_candidate_pre @ w_hc.T  # grad w.r.t. (r * prev)
            dr = d_rh * prev
            dr_pre = dr * sigmoid_grad(r)

            # Parameter gradients (gate order [z | r | h~]).
            gate_pre = np.concatenate(
                [dz_pre, dr_pre, d_candidate_pre], axis=1
            )
            self.grads[0] += x_t.T @ gate_pre
            self.grads[1][:, :h] += prev.T @ dz_pre
            self.grads[1][:, h:2 * h] += prev.T @ dr_pre
            self.grads[1][:, 2 * h:] += (r * prev).T @ d_candidate_pre
            self.grads[2] += gate_pre.sum(axis=0)

            grad_inputs[:, t, :] = gate_pre @ self.w_x.T
            grad_hidden = (
                dh * z
                + d_rh * r
                + dz_pre @ w_hz.T
                + dr_pre @ w_hr.T
            )
        return grad_inputs


class LSTM(Layer):
    """Long short-term memory layer with backprop through time."""

    def __init__(self, input_size: int, hidden_size: int,
                 return_sequences: bool = True, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        # Gate order along the last axis: [i | f | o | g].
        self.w_x = glorot_uniform(rng, input_size, 4 * hidden_size,
                                  shape=(input_size, 4 * hidden_size))
        self.w_h = np.concatenate(
            [orthogonal(rng, hidden_size) for _ in range(4)], axis=1
        )
        self.bias = np.zeros(4 * hidden_size)
        # Forget-gate bias starts at 1 (standard trick for gradient flow).
        self.bias[hidden_size:2 * hidden_size] = 1.0
        self.params = [self.w_x, self.w_h, self.bias]
        self.grads = [np.zeros_like(p) for p in self.params]
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[2] != self.input_size:
            raise ModelError(
                f"LSTM expects (batch, time, {self.input_size}), "
                f"got {inputs.shape}"
            )
        batch, time, _ = inputs.shape
        h = self.hidden_size
        hidden = np.zeros((batch, h))
        cell = np.zeros((batch, h))
        store = {
            name: np.zeros((batch, time, h))
            for name in ("i", "f", "o", "g", "cell", "prev_cell", "hiddens")
        }

        for t in range(time):
            x_t = inputs[:, t, :]
            gates = x_t @ self.w_x + hidden @ self.w_h + self.bias
            i = sigmoid(gates[:, :h])
            f = sigmoid(gates[:, h:2 * h])
            o = sigmoid(gates[:, 2 * h:3 * h])
            g = np.tanh(gates[:, 3 * h:])
            store["prev_cell"][:, t, :] = cell
            cell = f * cell + i * g
            hidden = o * np.tanh(cell)
            for name, value in (("i", i), ("f", f), ("o", o), ("g", g),
                                ("cell", cell), ("hiddens", hidden)):
                store[name][:, t, :] = value

        self._cache = {"inputs": inputs, **store}
        if self.return_sequences:
            return store["hiddens"]
        return store["hiddens"][:, -1, :]

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward before forward")
        cache = self._cache
        inputs = cache["inputs"]
        batch, time, _ = inputs.shape
        h = self.hidden_size

        if self.return_sequences:
            grad_seq = grad_outputs
        else:
            grad_seq = np.zeros((batch, time, h))
            grad_seq[:, -1, :] = grad_outputs

        grad_inputs = np.zeros_like(inputs)
        grad_hidden = np.zeros((batch, h))
        grad_cell = np.zeros((batch, h))

        for t in reversed(range(time)):
            dh = grad_seq[:, t, :] + grad_hidden
            i = cache["i"][:, t, :]
            f = cache["f"][:, t, :]
            o = cache["o"][:, t, :]
            g = cache["g"][:, t, :]
            cell = cache["cell"][:, t, :]
            prev_cell = cache["prev_cell"][:, t, :]
            x_t = inputs[:, t, :]
            prev_hidden = (
                cache["hiddens"][:, t - 1, :] if t > 0
                else np.zeros((batch, h))
            )

            tanh_cell = np.tanh(cell)
            do = dh * tanh_cell
            dc = dh * o * (1.0 - tanh_cell ** 2) + grad_cell
            di = dc * g
            df = dc * prev_cell
            dg = dc * i

            di_pre = di * sigmoid_grad(i)
            df_pre = df * sigmoid_grad(f)
            do_pre = do * sigmoid_grad(o)
            dg_pre = dg * tanh_grad(g)
            gate_pre = np.concatenate(
                [di_pre, df_pre, do_pre, dg_pre], axis=1
            )

            self.grads[0] += x_t.T @ gate_pre
            self.grads[1] += prev_hidden.T @ gate_pre
            self.grads[2] += gate_pre.sum(axis=0)

            grad_inputs[:, t, :] = gate_pre @ self.w_x.T
            grad_hidden = gate_pre @ self.w_h.T
            grad_cell = dc * f
        return grad_inputs


class Bidirectional(Layer):
    """Run a forward and a backward copy of an RNN; concatenate outputs.

    ``layer_factory(seed)`` must build a fresh recurrent layer with
    ``return_sequences=True``; the wrapper concatenates along features,
    giving ``(batch, time, 2 * hidden)``.
    """

    def __init__(self, forward_layer: Layer, backward_layer: Layer) -> None:
        super().__init__()
        if not getattr(forward_layer, "return_sequences", True) or \
           not getattr(backward_layer, "return_sequences", True):
            raise ModelError(
                "Bidirectional requires return_sequences=True sub-layers"
            )
        self.forward_layer = forward_layer
        self.backward_layer = backward_layer
        self.params = forward_layer.params + backward_layer.params
        self.grads = forward_layer.grads + backward_layer.grads
        self._hidden: int | None = None

    @classmethod
    def gru(cls, input_size: int, hidden_size: int,
            seed: int = 0) -> "Bidirectional":
        return cls(
            GRU(input_size, hidden_size, return_sequences=True, seed=seed),
            GRU(input_size, hidden_size, return_sequences=True,
                seed=seed + 1),
        )

    @classmethod
    def lstm(cls, input_size: int, hidden_size: int,
             seed: int = 0) -> "Bidirectional":
        return cls(
            LSTM(input_size, hidden_size, return_sequences=True, seed=seed),
            LSTM(input_size, hidden_size, return_sequences=True,
                 seed=seed + 1),
        )

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        forward_out = self.forward_layer.forward(inputs, training)
        backward_out = self.backward_layer.forward(
            inputs[:, ::-1, :], training
        )[:, ::-1, :]
        self._hidden = forward_out.shape[-1]
        return np.concatenate([forward_out, backward_out], axis=-1)

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._hidden is None:
            raise ModelError("backward before forward")
        h = self._hidden
        grad_forward = self.forward_layer.backward(grad_outputs[:, :, :h])
        grad_backward = self.backward_layer.backward(
            grad_outputs[:, ::-1, h:]
        )[:, ::-1, :]
        return grad_forward + grad_backward

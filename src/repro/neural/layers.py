"""Feed-forward layers: Dense, Embedding, Dropout, BatchNorm, Flatten.

Every layer implements the protocol

* ``forward(inputs, training=False) -> outputs``
* ``backward(grad_outputs) -> grad_inputs`` (parameter gradients are
  accumulated into ``layer.grads`` aligned with ``layer.params``)
* ``params`` / ``grads`` — lists of numpy arrays, possibly empty.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.neural.activations import (
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    tanh,
    tanh_grad,
)
from repro.neural.initializers import glorot_uniform


class Layer:
    """Base layer; stateless layers only override forward/backward."""

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for grad in self.grads:
            grad[...] = 0.0

    def __call__(self, inputs: np.ndarray,
                 training: bool = False) -> np.ndarray:
        return self.forward(inputs, training)


_ACTIVATIONS = {
    None: (lambda x: x, None),
    "relu": (relu, "pre"),
    "sigmoid": (sigmoid, "post"),
    "tanh": (tanh, "post"),
}


class Dense(Layer):
    """Fully-connected layer ``y = activation(x W + b)``.

    Accepts 2-D ``(batch, features)`` or 3-D ``(batch, time, features)``
    inputs; 3-D inputs apply the same weights at every time step.
    """

    def __init__(self, input_size: int, output_size: int,
                 activation: str | None = None, seed: int = 0) -> None:
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ModelError(f"unknown activation {activation!r}")
        rng = np.random.default_rng(seed)
        self.weights = glorot_uniform(rng, input_size, output_size)
        self.bias = np.zeros(output_size)
        self.params = [self.weights, self.bias]
        self.grads = [np.zeros_like(self.weights), np.zeros_like(self.bias)]
        self.activation = activation
        self._inputs: np.ndarray | None = None
        self._pre: np.ndarray | None = None
        self._post: np.ndarray | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        self._inputs = inputs
        self._pre = inputs @ self.weights + self.bias
        function, _ = _ACTIVATIONS[self.activation]
        self._post = function(self._pre)
        return self._post

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._inputs is None or self._pre is None or self._post is None:
            raise ModelError("backward before forward")
        if self.activation == "relu":
            grad_pre = grad_outputs * relu_grad(self._pre)
        elif self.activation == "sigmoid":
            grad_pre = grad_outputs * sigmoid_grad(self._post)
        elif self.activation == "tanh":
            grad_pre = grad_outputs * tanh_grad(self._post)
        else:
            grad_pre = grad_outputs

        inputs_2d = self._inputs.reshape(-1, self._inputs.shape[-1])
        grad_2d = grad_pre.reshape(-1, grad_pre.shape[-1])
        self.grads[0] += inputs_2d.T @ grad_2d
        self.grads[1] += grad_2d.sum(axis=0)
        return grad_pre @ self.weights.T


class Embedding(Layer):
    """Token-index lookup ``(batch, time) -> (batch, time, dim)``.

    Can be initialized from pre-trained vectors (the paper pre-trains
    Word2Vec on WDC + CORD-19 and fine-tunes end-to-end); set
    ``trainable=False`` to freeze them.
    """

    def __init__(self, vocab_size: int, dim: int, seed: int = 0,
                 weights: np.ndarray | None = None,
                 trainable: bool = True) -> None:
        super().__init__()
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (vocab_size, dim):
                raise ModelError(
                    f"pre-trained weights shape {weights.shape} != "
                    f"({vocab_size}, {dim})"
                )
            self.weights = weights.copy()
        else:
            rng = np.random.default_rng(seed)
            self.weights = rng.normal(0.0, 0.1, size=(vocab_size, dim))
        self.trainable = trainable
        if trainable:
            self.params = [self.weights]
            self.grads = [np.zeros_like(self.weights)]
        self._indices: np.ndarray | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        indices = np.asarray(inputs, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= len(self.weights)):
            raise ModelError("embedding index out of range")
        self._indices = indices
        return self.weights[indices]

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._indices is None:
            raise ModelError("backward before forward")
        if self.trainable:
            flat_idx = self._indices.reshape(-1)
            flat_grad = grad_outputs.reshape(-1, grad_outputs.shape[-1])
            np.add.at(self.grads[0], flat_idx, flat_grad)
        # Indices are not differentiable; return zeros of input shape.
        return np.zeros(self._indices.shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(inputs.shape) < keep
        ).astype(np.float64) / keep
        return inputs * self._mask

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_outputs
        return grad_outputs * self._mask


class BatchNorm(Layer):
    """Batch normalization over the batch axis with running statistics."""

    def __init__(self, size: int, momentum: float = 0.9,
                 epsilon: float = 1e-5) -> None:
        super().__init__()
        self.gamma = np.ones(size)
        self.beta = np.zeros(size)
        self.params = [self.gamma, self.beta]
        self.grads = [np.zeros_like(self.gamma), np.zeros_like(self.beta)]
        self.momentum = momentum
        self.epsilon = epsilon
        self.running_mean = np.zeros(size)
        self.running_var = np.ones(size)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        if training:
            mean = inputs.mean(axis=0)
            var = inputs.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.epsilon)
        normalized = (inputs - mean) / std
        if training:
            self._cache = (normalized, std, inputs - mean)
        else:
            self._cache = None
        return self.gamma * normalized + self.beta

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._cache is None:
            # Inference-mode backward (running stats are constants).
            return grad_outputs * self.gamma / np.sqrt(
                self.running_var + self.epsilon
            )
        normalized, std, centered = self._cache
        batch = grad_outputs.shape[0]
        self.grads[0] += np.sum(grad_outputs * normalized, axis=0)
        self.grads[1] += np.sum(grad_outputs, axis=0)
        grad_norm = grad_outputs * self.gamma
        grad_var = np.sum(
            grad_norm * centered * -0.5 / std ** 3, axis=0
        )
        grad_mean = (
            np.sum(-grad_norm / std, axis=0)
            + grad_var * np.mean(-2.0 * centered, axis=0)
        )
        return (
            grad_norm / std
            + grad_var * 2.0 * centered / batch
            + grad_mean / batch
        )


class Flatten(Layer):
    """Collapse all axes after the batch axis."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ModelError("backward before forward")
        return grad_outputs.reshape(self._shape)


class GlobalAveragePooling(Layer):
    """Mean over the time axis ``(batch, time, features) -> (batch, features)``.

    The paper argues this is ill-suited for tuple representations (it
    averages away context); it exists here as the ablation baseline.
    """

    def __init__(self) -> None:
        super().__init__()
        self._time: int | None = None

    def forward(self, inputs: np.ndarray,
                training: bool = False) -> np.ndarray:
        self._time = inputs.shape[1]
        return inputs.mean(axis=1)

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        if self._time is None:
            raise ModelError("backward before forward")
        expanded = np.repeat(
            grad_outputs[:, None, :], self._time, axis=1
        )
        return expanded / self._time

"""Loss functions (value + gradient)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

_EPSILON = 1e-12


class BinaryCrossEntropy:
    """Binary cross-entropy over sigmoid probabilities.

    ``forward`` takes probabilities in (0, 1) and binary targets; the
    returned gradient is with respect to the probabilities.
    """

    def forward(self, probabilities: np.ndarray,
                targets: np.ndarray) -> float:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if probabilities.shape != targets.shape:
            raise ModelError(
                f"shape mismatch {probabilities.shape} vs {targets.shape}"
            )
        clipped = np.clip(probabilities, _EPSILON, 1.0 - _EPSILON)
        losses = -(
            targets * np.log(clipped)
            + (1.0 - targets) * np.log(1.0 - clipped)
        )
        return float(losses.mean())

    def backward(self, probabilities: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        clipped = np.clip(probabilities, _EPSILON, 1.0 - _EPSILON)
        grad = (clipped - targets) / (clipped * (1.0 - clipped))
        return grad / targets.size


class MeanSquaredError:
    """Mean squared error."""

    def forward(self, predictions: np.ndarray,
                targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self, predictions: np.ndarray,
                 targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        return 2.0 * (predictions - targets) / targets.size

"""A small from-scratch deep-learning framework on numpy.

The paper implements its RNN models "using Keras, with Tensorflow framework
as the backend" (Section 3); neither is available offline, so this package
provides the pieces the BiGRU ensemble of Figure 3 needs: embeddings,
dense/batch-norm/dropout layers, GRU and LSTM cells with full backprop
through time, a bidirectional wrapper, binary cross-entropy, SGD/Adam, and
a Sequential model with a Keras-like ``fit``/``predict`` surface.

Shapes follow the (batch, time, features) convention throughout.
"""

from repro.neural.layers import (
    BatchNorm,
    Dense,
    Dropout,
    Embedding,
    Flatten,
)
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.metrics import binary_metrics, f1_score, precision_recall
from repro.neural.model import Sequential
from repro.neural.optimizers import SGD, Adam
from repro.neural.recurrent import GRU, LSTM, Bidirectional

__all__ = [
    "BatchNorm",
    "Dense",
    "Dropout",
    "Embedding",
    "Flatten",
    "BinaryCrossEntropy",
    "binary_metrics",
    "f1_score",
    "precision_recall",
    "Sequential",
    "SGD",
    "Adam",
    "GRU",
    "LSTM",
    "Bidirectional",
]

"""Binary classification metrics: precision, recall, F1, accuracy."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def _validate(truth: np.ndarray, predicted: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
    truth = np.asarray(truth).astype(int)
    predicted = np.asarray(predicted).astype(int)
    if truth.shape != predicted.shape:
        raise ModelError(
            f"shape mismatch {truth.shape} vs {predicted.shape}"
        )
    return truth, predicted


def precision_recall(truth: np.ndarray,
                     predicted: np.ndarray) -> tuple[float, float]:
    """(precision, recall) of the positive class; 0.0 when undefined."""
    truth, predicted = _validate(truth, predicted)
    true_pos = int(np.sum((truth == 1) & (predicted == 1)))
    pred_pos = int(np.sum(predicted == 1))
    actual_pos = int(np.sum(truth == 1))
    precision = true_pos / pred_pos if pred_pos else 0.0
    recall = true_pos / actual_pos if actual_pos else 0.0
    return precision, recall


def f1_score(truth: np.ndarray, predicted: np.ndarray) -> float:
    """F-measure (harmonic mean of precision and recall)."""
    precision, recall = precision_recall(truth, predicted)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def accuracy(truth: np.ndarray, predicted: np.ndarray) -> float:
    truth, predicted = _validate(truth, predicted)
    if truth.size == 0:
        return 0.0
    return float(np.mean(truth == predicted))


def binary_metrics(truth: np.ndarray,
                   predicted: np.ndarray) -> dict[str, float]:
    """All four metrics in one dict (the CV harness row format)."""
    precision, recall = precision_recall(truth, predicted)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1_score(truth, predicted),
        "accuracy": accuracy(truth, predicted),
    }

"""Optimizers: SGD with momentum and Adam.

Optimizers mutate parameter arrays in place; layers share their arrays
through ``params`` so the whole model updates together.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class SGD:
    """Stochastic gradient descent with optional momentum and clipping."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0,
                 clip_norm: float | None = None) -> None:
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray],
             grads: list[np.ndarray]) -> None:
        grads = _maybe_clip(grads, self.clip_norm)
        for param, grad in zip(params, grads):
            if self.momentum:
                velocity = self._velocity.setdefault(
                    id(param), np.zeros_like(param)
                )
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam:
    """Adam (Kingma & Ba, 2015) with optional gradient-norm clipping."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 clip_norm: float | None = None) -> None:
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.clip_norm = clip_norm
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray],
             grads: list[np.ndarray]) -> None:
        grads = _maybe_clip(grads, self.clip_norm)
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for param, grad in zip(params, grads):
            m = self._m.setdefault(id(param), np.zeros_like(param))
            v = self._v.setdefault(id(param), np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )


def _maybe_clip(grads: list[np.ndarray],
                clip_norm: float | None) -> list[np.ndarray]:
    if clip_norm is None:
        return grads
    total = float(np.sqrt(sum(float(np.sum(g ** 2)) for g in grads)))
    if total <= clip_norm or total == 0.0:
        return grads
    scale = clip_norm / total
    return [grad * scale for grad in grads]

"""CORD-19-style paper schema and validation.

A paper document is a plain JSON dict with the fields the real CORD-19
parse exposes (plus a ``ground_truth`` block only the synthetic generator
fills, used to score experiments):

.. code-block:: python

    {
        "paper_id": "cord-0000042",
        "title": str,
        "abstract": str,
        "authors": [{"first": str, "last": str}],
        "publish_time": "YYYY-MM-DD",
        "journal": str,
        "body_text": [{"section": str, "text": str}],
        "tables": [{"caption": str, "rows": [...], "html": str}],
        "figures": [{"caption": str}],
        "ground_truth": {            # generator-only, never indexed
            "topic": str,
            "vaccines": [str], "strains": [str], "side_effects": [str],
        },
    }
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import SchemaError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")

REQUIRED_FIELDS = ("paper_id", "title", "abstract", "authors",
                   "publish_time", "journal", "body_text", "tables",
                   "figures")

#: Fields the search engines index, in ranking-weight order.
SEARCHABLE_FIELDS = ("title", "abstract", "body_text.text",
                     "tables.caption", "figures.caption")


def validate_paper(paper: Any) -> dict[str, Any]:
    """Check ``paper`` against the schema; returns it unchanged when valid."""
    if not isinstance(paper, dict):
        raise SchemaError(f"paper must be a dict, got {type(paper)}")
    for field in REQUIRED_FIELDS:
        if field not in paper:
            raise SchemaError(f"paper missing required field {field!r}")
    if not isinstance(paper["paper_id"], str) or not paper["paper_id"]:
        raise SchemaError("paper_id must be a non-empty string")
    if not isinstance(paper["title"], str):
        raise SchemaError("title must be a string")
    if not isinstance(paper["abstract"], str):
        raise SchemaError("abstract must be a string")
    if not _DATE_RE.match(str(paper["publish_time"])):
        raise SchemaError(
            f"publish_time must be YYYY-MM-DD, got {paper['publish_time']!r}"
        )
    if not isinstance(paper["authors"], list):
        raise SchemaError("authors must be a list")
    for author in paper["authors"]:
        if not isinstance(author, dict) or "last" not in author:
            raise SchemaError(f"malformed author entry {author!r}")
    if not isinstance(paper["body_text"], list):
        raise SchemaError("body_text must be a list")
    for section in paper["body_text"]:
        if (not isinstance(section, dict) or "section" not in section
                or "text" not in section):
            raise SchemaError(f"malformed body_text entry {section!r}")
    if not isinstance(paper["tables"], list):
        raise SchemaError("tables must be a list")
    for table in paper["tables"]:
        if not isinstance(table, dict) or "rows" not in table:
            raise SchemaError(f"malformed table entry {table!r}")
    if not isinstance(paper["figures"], list):
        raise SchemaError("figures must be a list")
    for figure in paper["figures"]:
        if not isinstance(figure, dict) or "caption" not in figure:
            raise SchemaError(f"malformed figure entry {figure!r}")
    return paper


def full_text(paper: dict[str, Any]) -> str:
    """All searchable text of a paper, concatenated (for vocabularies)."""
    parts = [paper.get("title", ""), paper.get("abstract", "")]
    for section in paper.get("body_text", []):
        parts.append(section.get("text", ""))
    for table in paper.get("tables", []):
        parts.append(table.get("caption", ""))
    for figure in paper.get("figures", []):
        parts.append(figure.get("caption", ""))
    return " ".join(part for part in parts if part)

"""Deterministic synthetic CORD-19-style corpus generator.

Substitutes for the real CORD-19 dump (see DESIGN.md).  Every paper is
drawn from a topic mixture with entity mentions, template sentences,
labeled HTML tables, and a ``publish_time`` advancing ~``papers_per_week``
per week — reproducing the growth dynamics the paper reports ("more than
3,500 new publications were updated per week").

Everything is a pure function of the seed, so experiments are repeatable.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.corpus import vocabulary_data as vd
from repro.errors import SchemaError
from repro.tables.model import Table

_EPOCH = datetime.date(2020, 1, 6)  # a Monday


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic corpus.

    ``papers_per_week`` defaults to a laptop-scale stand-in for the paper's
    3,500/week; scale it up in benchmarks that stress ingest.
    """

    seed: int = 0
    papers_per_week: int = 50
    topic_purity: float = 0.8
    tables_per_paper: tuple[int, int] = (0, 3)
    sections_per_paper: tuple[int, int] = (3, 5)
    sentences_per_section: tuple[int, int] = (3, 6)
    unseen_vaccine_rate: float = 0.02
    topics: list[str] = field(
        default_factory=lambda: list(vd.TOPICS)
    )


class CorpusGenerator:
    """Generate CORD-19-style paper documents deterministically."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config or GeneratorConfig()
        unknown = set(self.config.topics) - set(vd.TOPICS)
        if unknown:
            raise SchemaError(f"unknown topics in config: {sorted(unknown)}")

    # -- public API ------------------------------------------------------

    def papers(self, count: int) -> list[dict[str, Any]]:
        """Generate ``count`` papers (index order == publish order)."""
        return [self.paper(index) for index in range(count)]

    def paper(self, index: int) -> dict[str, Any]:
        """Generate the ``index``-th paper; pure function of (seed, index)."""
        rng = np.random.default_rng((self.config.seed, index))
        topic = self.config.topics[int(rng.integers(len(self.config.topics)))]
        ground_truth: dict[str, Any] = {
            "topic": topic, "vaccines": [], "strains": [],
            "side_effects": [],
        }

        title = self._title(rng, topic)
        abstract = self._paragraph(rng, topic, sentences=4)
        body_text = self._body(rng, topic)
        tables = self._tables(rng, topic, index, ground_truth)
        figures = self._figures(rng, topic)
        self._mention_entities(rng, topic, body_text, ground_truth)

        week = index // self.config.papers_per_week
        day = int(rng.integers(7))
        publish = _EPOCH + datetime.timedelta(weeks=week, days=day)

        return {
            "paper_id": f"cord-{index:07d}",
            "title": title,
            "abstract": abstract,
            "authors": self._authors(rng),
            "publish_time": publish.isoformat(),
            "journal": str(rng.choice(vd.JOURNALS)),
            "body_text": body_text,
            "tables": tables,
            "figures": figures,
            "ground_truth": ground_truth,
        }

    def weekly_batches(self, weeks: int) -> Iterator[list[dict[str, Any]]]:
        """Yield one list of papers per simulated week (E12 ingest stream)."""
        for week in range(weeks):
            start = week * self.config.papers_per_week
            yield [
                self.paper(index)
                for index in range(start,
                                   start + self.config.papers_per_week)
            ]

    # -- text assembly ---------------------------------------------------------

    def _topic_terms(self, rng: np.random.Generator, topic: str,
                     count: int) -> list[str]:
        """Mostly in-topic terms, with (1 - purity) leakage from others."""
        terms = []
        for _ in range(count):
            if rng.random() < self.config.topic_purity:
                pool = vd.TOPICS[topic]
            else:
                other = self.config.topics[
                    int(rng.integers(len(self.config.topics)))
                ]
                pool = vd.TOPICS[other]
            terms.append(str(rng.choice(pool)))
        return terms

    def _title(self, rng: np.random.Generator, topic: str) -> str:
        template = str(rng.choice(vd.TITLE_TEMPLATES))
        t0, t1 = self._topic_terms(rng, topic, 2)
        return template.format(t0=t0, t1=t1)

    def _sentence(self, rng: np.random.Generator, topic: str) -> str:
        template = str(rng.choice(vd.SENTENCE_TEMPLATES))
        t0, t1 = self._topic_terms(rng, topic, 2)
        return template.format(t0=t0, t1=t1, n=int(rng.integers(10, 5000)))

    def _paragraph(self, rng: np.random.Generator, topic: str,
                   sentences: int) -> str:
        return " ".join(
            self._sentence(rng, topic) for _ in range(sentences)
        )

    def _body(self, rng: np.random.Generator,
              topic: str) -> list[dict[str, str]]:
        lo, hi = self.config.sections_per_paper
        num_sections = int(rng.integers(lo, hi + 1))
        slo, shi = self.config.sentences_per_section
        return [
            {
                "section": vd.SECTION_NAMES[i % len(vd.SECTION_NAMES)],
                "text": self._paragraph(
                    rng, topic, int(rng.integers(slo, shi + 1))
                ),
            }
            for i in range(num_sections)
        ]

    def _figures(self, rng: np.random.Generator,
                 topic: str) -> list[dict[str, str]]:
        count = int(rng.integers(0, 3))
        return [
            {"caption": f"Figure {i + 1}: {self._sentence(rng, topic)}"}
            for i in range(count)
        ]

    def _authors(self, rng: np.random.Generator) -> list[dict[str, str]]:
        count = int(rng.integers(1, 6))
        return [
            {
                "first": str(rng.choice(vd.FIRST_NAMES)),
                "last": str(rng.choice(vd.LAST_NAMES)),
            }
            for _ in range(count)
        ]

    def _pick_vaccine(self, rng: np.random.Generator) -> str:
        if rng.random() < self.config.unseen_vaccine_rate:
            return str(rng.choice(vd.UNSEEN_VACCINES))
        return str(rng.choice(vd.KNOWN_VACCINES))

    def _mention_entities(self, rng: np.random.Generator, topic: str,
                          body_text: list[dict[str, str]],
                          ground_truth: dict[str, Any]) -> None:
        """Weave entity mentions into body sections, recording the truth."""
        if topic in ("vaccines", "long_covid", "pediatrics") or \
                rng.random() < 0.3:
            vaccine = self._pick_vaccine(rng)
            side_effect = str(rng.choice(vd.SIDE_EFFECTS_COMMON))
            sentence = (
                f" Participants who received the {vaccine} vaccine most "
                f"frequently reported {side_effect}."
            )
            body_text[-1]["text"] += sentence
            _record(ground_truth, "vaccines", vaccine)
            _record(ground_truth, "side_effects", side_effect)
        if topic == "variants" or rng.random() < 0.2:
            strain = str(rng.choice(vd.STRAINS))
            body_text[0]["text"] += (
                f" The {strain} strain dominated sequenced samples."
            )
            _record(ground_truth, "strains", strain)

    # -- table generation -------------------------------------------------------

    def _tables(self, rng: np.random.Generator, topic: str, index: int,
                ground_truth: dict[str, Any]) -> list[dict[str, Any]]:
        lo, hi = self.config.tables_per_paper
        count = int(rng.integers(lo, hi + 1))
        tables = []
        for table_number in range(count):
            kind = str(rng.choice(
                ["side_effects", "efficacy", "demographics"]
            ))
            if kind == "side_effects":
                table = self._side_effect_table(rng, ground_truth)
            elif kind == "efficacy":
                table = self._efficacy_table(rng, ground_truth)
            else:
                table = self._demographics_table(rng)
            table.paper_id = f"cord-{index:07d}"
            table.table_id = f"t{table_number}"
            tables.append({
                **table.to_json(),
                "kind": kind,
                "html": _table_html(table),
            })
        return tables

    def _side_effect_table(self, rng: np.random.Generator,
                           ground_truth: dict[str, Any]) -> Table:
        vaccine = self._pick_vaccine(rng)
        _record(ground_truth, "vaccines", vaccine)
        num_effects = int(rng.integers(3, 7))
        effects = list(rng.choice(
            vd.SIDE_EFFECTS_COMMON + vd.SIDE_EFFECTS_RARE,
            size=num_effects, replace=False,
        ))
        grid = [["Side effect", "Dose 1 (%)", "Dose 2 (%)"]]
        for effect in effects:
            dose1 = round(float(rng.uniform(0.5, 60.0)), 1)
            dose2 = round(min(95.0, dose1 * float(rng.uniform(1.0, 1.8))), 1)
            grid.append([str(effect), str(dose1), str(dose2)])
            _record(ground_truth, "side_effects", str(effect))
        caption = (
            f"Table: Side effects reported after {vaccine} vaccination, "
            "by dose"
        )
        return Table.from_grid(grid, caption=caption, header_rows=1)

    def _efficacy_table(self, rng: np.random.Generator,
                        ground_truth: dict[str, Any]) -> Table:
        num_vaccines = int(rng.integers(2, 5))
        vaccines = list(rng.choice(vd.KNOWN_VACCINES, size=num_vaccines,
                                   replace=False))
        grid = [["Vaccine", "Doses", "Efficacy (%)", "95% CI"]]
        for vaccine in vaccines:
            efficacy = round(float(rng.uniform(55.0, 96.0)), 1)
            lo = round(efficacy - float(rng.uniform(2, 8)), 1)
            hi = round(min(99.0, efficacy + float(rng.uniform(1, 4))), 1)
            grid.append([
                str(vaccine), str(int(rng.integers(1, 4))),
                str(efficacy), f"{lo}-{hi}",
            ])
            _record(ground_truth, "vaccines", str(vaccine))
        caption = "Table: Vaccine efficacy against symptomatic infection"
        return Table.from_grid(grid, caption=caption, header_rows=1)

    def _demographics_table(self, rng: np.random.Generator) -> Table:
        groups = ["18-29", "30-49", "50-64", "65-79", "80+"]
        num_groups = int(rng.integers(3, len(groups) + 1))
        grid = [["Age group", "N", "Percent"]]
        remaining = 100.0
        for i, group in enumerate(groups[:num_groups]):
            if i == num_groups - 1:
                percent = round(remaining, 1)
            else:
                percent = round(float(rng.uniform(5, remaining / 2)), 1)
                remaining -= percent
            grid.append([group, str(int(rng.integers(20, 2000))),
                         str(percent)])
        caption = "Table: Study population demographics"
        return Table.from_grid(grid, caption=caption, header_rows=1)


def _record(ground_truth: dict[str, Any], key: str, value: str) -> None:
    if value not in ground_truth[key]:
        ground_truth[key].append(value)


def _table_html(table: Table) -> str:
    """Render a table back to the raw HTML-fragment form CORD-19 ships."""
    parts = ["<table>"]
    if table.caption:
        parts.append(f"<caption>{table.caption}</caption>")
    for row in table.rows:
        tag = "th" if row.is_metadata else "td"
        cells = "".join(
            f"<{tag}>{cell.text}</{tag}>" for cell in row.cells
        )
        parts.append(f"<tr>{cells}</tr>")
    parts.append("</table>")
    return "".join(parts)

"""COVID-19 domain vocabularies, entities, and sentence templates.

This is the "world knowledge" the synthetic corpus generator draws from.
Topic vocabularies drive the topical-cluster structure (№5 in the paper's
architecture figure); the entity lists drive extraction targets (№6:
vaccines, strains, side-effects); symptom categorizations mirror the
overlapping KG subtrees discussed in Section 4.2 (common/rare vs organ
systems).  ``NovoVac`` is the deliberately *unseen* vaccine used by the
fusion experiments (the paper's own NovoVac example).
"""

from __future__ import annotations

#: Topic -> characteristic terms.  Generated papers mix mostly their own
#: topic's vocabulary, so clustering has recoverable ground truth.
TOPICS: dict[str, list[str]] = {
    "vaccines": [
        "vaccine", "vaccination", "dose", "booster", "efficacy", "antibody",
        "immunogenicity", "mrna", "adjuvant", "immunity", "seroconversion",
        "titer", "injection", "trial", "placebo",
    ],
    "transmission": [
        "transmission", "masks", "aerosol", "droplet", "distancing",
        "ventilation", "exposure", "contact", "quarantine", "outbreak",
        "superspreading", "airborne", "surface", "shedding", "index",
    ],
    "treatment": [
        "treatment", "remdesivir", "dexamethasone", "antiviral", "therapy",
        "corticosteroid", "monoclonal", "plasma", "dosage", "randomized",
        "placebo", "mortality", "recovery", "hospitalization", "regimen",
    ],
    "critical_care": [
        "ventilator", "icu", "oxygen", "intubation", "airway", "ards",
        "saturation", "prone", "respiratory", "failure", "sedation",
        "tracheostomy", "extubation", "hypoxemia", "support",
    ],
    "variants": [
        "variant", "mutation", "strain", "spike", "genome", "lineage",
        "sequencing", "alpha", "delta", "omicron", "escape", "surveillance",
        "phylogenetic", "substitution", "recombination",
    ],
    "epidemiology": [
        "incidence", "prevalence", "cohort", "surveillance", "reproduction",
        "seroprevalence", "cases", "fatality", "demographics", "modeling",
        "lockdown", "wave", "testing", "positivity", "population",
    ],
    "long_covid": [
        "fatigue", "sequelae", "persistent", "recovery", "rehabilitation",
        "brain", "fog", "dyspnea", "followup", "chronic", "symptom",
        "quality", "impairment", "longitudinal", "post-acute",
    ],
    "pediatrics": [
        "children", "pediatric", "school", "misc", "inflammatory",
        "adolescent", "infant", "daycare", "immunization", "growth",
        "maternal", "neonatal", "parent", "closure", "playground",
    ],
}

#: Real-world vaccines present in the training corpus.
KNOWN_VACCINES = [
    "Pfizer", "Moderna", "AstraZeneca", "Janssen", "Novavax", "Sinovac",
    "Sputnik", "Covaxin",
]

#: Vaccines deliberately *absent* from seed ontologies: the KG fusion
#: experiments must place these by embedding similarity (Section 4.2).
UNSEEN_VACCINES = ["NovoVac", "ImmunoPro", "ViraShield"]

#: Viral strains / lineages.
STRAINS = [
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Lambda", "Mu", "Omicron",
    "BA.2", "BA.5", "XBB.1.5",
]

#: Vaccine side-effects with rough frequency tiers used by table generation.
SIDE_EFFECTS_COMMON = [
    "injection site pain", "fatigue", "headache", "muscle pain", "chills",
    "fever", "nausea",
]
SIDE_EFFECTS_RARE = [
    "myocarditis", "anaphylaxis", "thrombosis", "pericarditis",
    "lymphadenopathy", "bell palsy",
]
SIDE_EFFECTS_CHILDREN = [
    "rash", "irritability", "loss of appetite", "drowsiness",
]

#: Symptoms by organ system — the overlapping categorizations Section 4.2
#: insists must coexist in the KG without being merged.
SYMPTOMS_BY_SYSTEM: dict[str, list[str]] = {
    "respiratory": ["cough", "shortness of breath", "sore throat",
                    "congestion"],
    "neurological": ["headache", "loss of smell", "loss of taste",
                     "dizziness", "brain fog"],
    "cerebrovascular": ["stroke", "dizziness", "headache"],
    "gastrointestinal": ["nausea", "diarrhea", "vomiting",
                         "abdominal pain"],
    "systemic": ["fever", "fatigue", "muscle pain", "chills"],
}

SYMPTOMS_COMMON = ["fever", "cough", "fatigue", "headache",
                   "loss of smell", "sore throat"]
SYMPTOMS_RARE = ["stroke", "brain fog", "rash", "abdominal pain"]

#: Journals for synthetic publication metadata.
JOURNALS = [
    "Lancet Infectious Diseases", "Nature Medicine", "JAMA",
    "New England Journal of Medicine", "BMJ", "Cell", "Vaccine",
    "Clinical Infectious Diseases", "Eurosurveillance", "PLOS ONE",
]

FIRST_NAMES = [
    "Wei", "Maria", "John", "Aisha", "Carlos", "Yuki", "Elena", "Raj",
    "Fatima", "Lars", "Ana", "Dmitri", "Grace", "Omar", "Ingrid",
]
LAST_NAMES = [
    "Chen", "Garcia", "Smith", "Khan", "Silva", "Tanaka", "Popov",
    "Patel", "Hassan", "Nielsen", "Costa", "Ivanov", "Okafor", "Kim",
    "Muller",
]

#: Title templates; ``{t0}``/``{t1}`` are topic terms.
TITLE_TEMPLATES = [
    "Effect of {t0} on {t1} in hospitalized COVID-19 patients",
    "A retrospective study of {t0} and {t1} during the pandemic",
    "{t0} and {t1}: evidence from a multicenter cohort",
    "Assessing {t0} outcomes under {t1} protocols",
    "The role of {t0} in COVID-19 {t1}",
    "Longitudinal analysis of {t0} among patients with {t1}",
]

#: Abstract/body sentence templates.
SENTENCE_TEMPLATES = [
    "We analyzed {t0} and {t1} in a cohort of {n} patients.",
    "The association between {t0} and {t1} was significant.",
    "Patients receiving {t0} showed improved {t1} after {n} days.",
    "Our findings suggest that {t0} modulates {t1} substantially.",
    "{t0} was measured alongside {t1} at baseline and followup.",
    "Rates of {t0} declined as {t1} increased across sites.",
    "Adjusting for age, {t0} remained associated with {t1}.",
    "This study evaluates {t0} as a predictor of {t1}.",
    "Secondary outcomes included {t0} and {t1} at {n} weeks.",
    "No serious events related to {t0} or {t1} were observed.",
]

SECTION_NAMES = ["Introduction", "Methods", "Results", "Discussion",
                 "Conclusion"]

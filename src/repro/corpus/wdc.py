"""Synthetic WDC-style web tables with ground-truth metadata labels.

The paper pre-trains its metadata classifiers on the Web Data Commons
table corpus (ref [61]) before fine-tuning on CORD-19 tables.  This
generator produces relational web tables across several non-medical
domains, in both orientations, with controllable row/column counts — the
exact axes the Section 3.3 evaluation varies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.tables.model import Table

#: Domain -> (attribute names, value factories keyed by attribute kind).
_DOMAINS: dict[str, list[tuple[str, str]]] = {
    "products": [
        ("Product", "name"), ("Brand", "name"), ("Price", "money"),
        ("Rating", "small_float"), ("Stock", "int"), ("Weight", "unit_kg"),
    ],
    "movies": [
        ("Title", "name"), ("Director", "name"), ("Year", "year"),
        ("Runtime", "unit_min"), ("Rating", "small_float"),
        ("Gross", "money"),
    ],
    "cities": [
        ("City", "name"), ("Country", "name"), ("Population", "int"),
        ("Area", "int"), ("Density", "float"), ("Founded", "year"),
    ],
    "athletes": [
        ("Athlete", "name"), ("Team", "name"), ("Age", "int"),
        ("Height", "float"), ("Medals", "int"), ("Best", "small_float"),
    ],
}

_NAME_PARTS = [
    "Alpha", "Nova", "Metro", "Prime", "Vista", "Orion", "Delta", "Zen",
    "Apex", "Terra", "Luna", "Echo", "Atlas", "Polar", "Vertex", "Summit",
]


@dataclass
class WdcTable:
    """A generated table plus its ground-truth description."""

    table: Table
    domain: str
    orientation: str  # "horizontal" | "vertical"
    metadata_lines: list[int]  # indices of metadata rows (post-orientation)


class WdcTableGenerator:
    """Generate labeled WDC-style web tables deterministically."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _value(self, rng: np.random.Generator, kind: str) -> str:
        if kind == "name":
            return (f"{rng.choice(_NAME_PARTS)}"
                    f"{rng.choice(_NAME_PARTS)}".strip())
        if kind == "money":
            return f"${float(rng.uniform(1, 2000)):.2f}"
        if kind == "small_float":
            return f"{float(rng.uniform(0, 10)):.1f}"
        if kind == "float":
            return f"{float(rng.uniform(10, 9000)):.1f}"
        if kind == "int":
            return str(int(rng.integers(1, 10_000_000)))
        if kind == "year":
            return str(int(rng.integers(1900, 2023)))
        if kind == "unit_kg":
            return f"{float(rng.uniform(0.1, 50)):.1f} kg"
        if kind == "unit_min":
            return f"{int(rng.integers(60, 220))} min"
        raise SchemaError(f"unknown value kind {kind!r}")

    #: Structural variants real web tables exhibit (horizontal only):
    #: "plain" header-at-top, a full-width "title_row" above the header,
    #: "headerless" continuation tables, and a trailing "summary_row".
    VARIANTS = ("plain", "title_row", "headerless", "summary_row")

    def generate(self, index: int, orientation: str = "horizontal",
                 num_data_rows: int | None = None,
                 num_columns: int | None = None,
                 variant: str = "plain") -> WdcTable:
        """Generate table ``index``; pure function of (seed, index, shape)."""
        if orientation not in ("horizontal", "vertical"):
            raise SchemaError(f"unknown orientation {orientation!r}")
        if variant not in self.VARIANTS:
            raise SchemaError(f"unknown variant {variant!r}")
        rng = np.random.default_rng((self.seed, index))
        domain = str(rng.choice(sorted(_DOMAINS)))
        schema = _DOMAINS[domain]
        if num_columns is None:
            num_columns = int(rng.integers(2, len(schema) + 1))
        num_columns = max(2, min(num_columns, len(schema)))
        if num_data_rows is None:
            num_data_rows = int(rng.integers(2, 12))

        attributes = schema[:num_columns]
        header = [name for name, _ in attributes]
        data_rows = [
            [self._value(rng, kind) for _, kind in attributes]
            for _ in range(num_data_rows)
        ]

        if orientation == "horizontal":
            grid = [header] + data_rows
            metadata_lines = [0]
            if variant == "title_row":
                # A full-width caption-like line above the header; both the
                # title and the header line are metadata.
                title = f"{domain.capitalize()} overview {index}"
                grid = [[title] + [""] * (num_columns - 1)] + grid
                metadata_lines = [0, 1]
            elif variant == "headerless":
                grid = data_rows
                metadata_lines = []
            elif variant == "summary_row":
                total = ["Total"] + [
                    str(int(rng.integers(100, 9999)))
                    for _ in range(num_columns - 1)
                ]
                grid = grid + [total]
            table = Table.from_grid(grid, caption=f"{domain} listing")
            for position, row in enumerate(table.rows):
                row.is_metadata = position in metadata_lines
        else:
            # Attribute names down the first column; records as columns.
            grid = [
                [header[j]] + [row[j] for row in data_rows]
                for j in range(num_columns)
            ]
            table = Table.from_grid(grid, caption=f"{domain} listing")
            # The line-level label refers to the table read column-wise:
            # after transposition, line 0 (the attribute-name column) is
            # the metadata line.
            metadata_lines = [0]
        return WdcTable(
            table=table, domain=domain, orientation=orientation,
            metadata_lines=metadata_lines,
        )

    def labeled_tuples(self, count: int, orientation: str = "horizontal",
                       ) -> list[tuple[list[str], bool]]:
        """Flat (tuple, is_metadata) pairs ready for classifier training.

        Horizontal tables contribute their rows; vertical tables contribute
        their *transposed* rows (i.e. original columns), exactly what
        :func:`repro.tables.orientation.rows_for_classification` yields.
        """
        pairs: list[tuple[list[str], bool]] = []
        for index in range(count):
            generated = self.generate(index, orientation=orientation)
            if orientation == "horizontal":
                rows = generated.table.row_texts()
            else:
                rows = generated.table.transposed().row_texts()
            for position, row in enumerate(rows):
                pairs.append((row, position in generated.metadata_lines))
        return pairs

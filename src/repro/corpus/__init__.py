"""Corpus substrate: synthetic CORD-19 and WDC generators plus loaders.

The real CORD-19 dataset (450k+ publications) is not available offline, so
:mod:`repro.corpus.generator` synthesizes a corpus with the same JSON
schema and the statistical structure the system exercises: topical
clusters, entity mentions (vaccines / strains / side-effects), HTML tables
with labeled header rows, and week-over-week growth.  The WDC web-table
corpus used for classifier pre-training is synthesized likewise.
DESIGN.md records this substitution.
"""

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.corpus.loader import load_papers_jsonl, save_papers_jsonl
from repro.corpus.schema import validate_paper
from repro.corpus.wdc import WdcTableGenerator

__all__ = [
    "CorpusGenerator",
    "GeneratorConfig",
    "load_papers_jsonl",
    "save_papers_jsonl",
    "validate_paper",
    "WdcTableGenerator",
]

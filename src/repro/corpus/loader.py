"""Load/save paper corpora as JSONL (one paper per line).

The loader also accepts real CORD-19-style parses when a dump is present
on disk; every record is validated against the schema on the way in.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterator

from repro.corpus.schema import validate_paper
from repro.errors import PersistenceError, SchemaError


def save_papers_jsonl(papers: list[dict[str, Any]],
                      path: str | Path) -> int:
    """Write papers as JSONL; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for paper in papers:
            handle.write(json.dumps(paper, separators=(",", ":")) + "\n")
    return len(papers)


def iter_papers_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream validated papers from a JSONL file."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"corpus file not found: {path}")
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise PersistenceError(
                    f"corrupt corpus {path}:{line_number}: {exc}"
                ) from exc
            try:
                yield validate_paper(record)
            except SchemaError as exc:
                raise SchemaError(
                    f"{path}:{line_number}: {exc}"
                ) from exc


def load_papers_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every paper from a JSONL corpus file."""
    return list(iter_papers_jsonl(path))


def _parse_cord19_authors(raw: str) -> list[dict[str, str]]:
    """CORD-19 metadata.csv author syntax: ``Last, First; Last, First``."""
    authors = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "," in chunk:
            last, _, first = chunk.partition(",")
            authors.append({"first": first.strip(), "last": last.strip()})
        else:
            authors.append({"first": "", "last": chunk})
    return authors


def _normalize_cord19_date(raw: str) -> str | None:
    """metadata.csv dates are YYYY-MM-DD or bare YYYY; normalize or drop."""
    raw = (raw or "").strip()
    if re.fullmatch(r"\d{4}-\d{2}-\d{2}", raw):
        return raw
    if re.fullmatch(r"\d{4}", raw):
        return f"{raw}-01-01"
    return None


def load_cord19_metadata_csv(path: str | Path,
                             limit: int | None = None
                             ) -> list[dict[str, Any]]:
    """Adapt a real CORD-19 ``metadata.csv`` into schema papers.

    The real dump's metadata file carries ``cord_uid``, ``title``,
    ``abstract``, ``authors``, ``publish_time``, and ``journal``; body
    text and tables live in separate full-text parses, so those fields
    load empty (the ingest pipeline tolerates table-less papers).  Rows
    without an id, title, or usable date are skipped — exactly the rows
    the real pipeline would quarantine.
    """
    import csv

    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"metadata.csv not found: {path}")
    papers: list[dict[str, Any]] = []
    seen: set[str] = set()
    with open(path, encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            paper_id = (row.get("cord_uid") or "").strip()
            title = (row.get("title") or "").strip()
            publish_time = _normalize_cord19_date(
                row.get("publish_time", "")
            )
            if not paper_id or not title or publish_time is None:
                continue
            if paper_id in seen:
                continue  # metadata.csv carries duplicate cord_uids
            seen.add(paper_id)
            papers.append(validate_paper({
                "paper_id": paper_id,
                "title": title,
                "abstract": (row.get("abstract") or "").strip(),
                "authors": _parse_cord19_authors(row.get("authors", "")),
                "publish_time": publish_time,
                "journal": (row.get("journal") or "").strip(),
                "body_text": [],
                "tables": [],
                "figures": [],
            }))
            if limit is not None and len(papers) >= limit:
                break
    return papers

"""Synonym expansion for query matching and ranking.

Two sources, layered:

* a **curated table** of domain synonym groups (the paper's own example:
  "significant concepts and terms can be referred to differently (e.g.
  COVID-19 and coronavirus disease 2019)"), and
* optional **embedding neighbours** from a trained Word2Vec model, which
  generalize to terms the curators never listed.

Expansions carry weights < 1.0 so a synonym match contributes to the
ranking without outranking a literal match ("The ranking function
incorporates matching terms and synonyms" — Section 5).
"""

from __future__ import annotations

from repro.embeddings.word2vec import Word2Vec

#: Weight of a curated synonym relative to a literal term match.
CURATED_WEIGHT = 0.8
#: Weight scale applied to embedding-neighbour similarity.
EMBEDDING_WEIGHT = 0.5
#: Minimum cosine similarity for an embedding neighbour to qualify.
EMBEDDING_FLOOR = 0.6

#: Curated synonym groups; membership is symmetric within a group.
SYNONYM_GROUPS: tuple[tuple[str, ...], ...] = (
    ("covid-19", "covid", "coronavirus", "sars-cov-2",
     "coronavirus disease 2019"),
    ("vaccine", "vaccination", "immunization", "inoculation"),
    ("ventilator", "respirator", "mechanical ventilation"),
    ("mask", "face covering", "ppe"),
    ("fever", "pyrexia"),
    ("fatigue", "tiredness", "exhaustion"),
    ("icu", "intensive care"),
    ("strain", "variant", "lineage"),
    ("side effect", "adverse event", "adverse reaction"),
    ("efficacy", "effectiveness"),
    ("transmission", "spread", "contagion"),
    ("children", "pediatric", "paediatric"),
)


def _build_table(groups: tuple[tuple[str, ...], ...]
                 ) -> dict[str, list[str]]:
    table: dict[str, list[str]] = {}
    for group in groups:
        for term in group:
            others = [other for other in group if other != term]
            table.setdefault(term.lower(), []).extend(others)
    return table


_CURATED = _build_table(SYNONYM_GROUPS)


class SynonymExpander:
    """Expand a query term into weighted synonyms."""

    def __init__(self, word2vec: Word2Vec | None = None,
                 max_embedding_neighbors: int = 3,
                 groups: tuple[tuple[str, ...], ...] | None = None) -> None:
        self.word2vec = word2vec
        self.max_embedding_neighbors = max_embedding_neighbors
        self._table = (
            _build_table(groups) if groups is not None else _CURATED
        )

    def expand(self, term: str) -> list[tuple[str, float]]:
        """Weighted synonyms of ``term`` (never includes the term itself).

        Curated synonyms come first; embedding neighbours (when a model
        is attached) follow, weighted by their cosine similarity.
        """
        term = term.lower()
        expansions: list[tuple[str, float]] = [
            (synonym, CURATED_WEIGHT)
            for synonym in self._table.get(term, [])
        ]
        seen = {synonym for synonym, _ in expansions} | {term}
        if self.word2vec is not None and term in self.word2vec.vocabulary:
            neighbors = self.word2vec.most_similar(
                term, top_k=self.max_embedding_neighbors
            )
            for neighbor, similarity in neighbors:
                if neighbor in seen or similarity < EMBEDDING_FLOOR:
                    continue
                expansions.append(
                    (neighbor, EMBEDDING_WEIGHT * similarity)
                )
                seen.add(neighbor)
        return expansions

    def expand_all(self, terms: list[str]) -> dict[str, list[tuple[str,
                                                                   float]]]:
        return {term: self.expand(term) for term in terms}

"""Shared search-engine machinery: index, pipeline evaluation, pagination.

Pipeline shape (paper Section 2.1, verbatim design):

1. ``$match`` **first**, with stemmed-regex filters, "to minimize the
   amount of data being passed through all the latter stages";
2. ``$project`` keeping "only ... fields that were necessary for carrying
   out calculations and printing to the screen";
3. a custom ``$function`` stage deriving the ranking score per document;
4. ranking by score, then pagination "as a list of ten per page".

Step 4 no longer fully sorts the match set: serving page ``p`` only
requires the top ``p * PAGE_SIZE`` candidates, so the hot path keeps a
``heapq``-bounded selection (O(n log k)) instead of the full ``$sort``
(O(n log n)).  Ordering is exact and deterministic — score descending,
then ``paper_id`` ascending as the tie-break — so the top-k page is
byte-identical to what the full sort would emit (``full_sort = True``
restores the reference path; the differential tests compare the two).

An engine built with ``num_shards > 1`` stores its index in a
:class:`~repro.docstore.sharding.ShardedCollection` and evaluates the
``$match``/``$project``/``$function`` prefix per shard in parallel
(scatter-gather on the shared executor), merging per-shard top-k heaps.

When a query is expressible as batch array operations the whole
match/score/top-k path instead runs on the columnar numpy kernels of
:mod:`repro.search.columnar` — byte-identical results, no per-document
Python — falling back to the scalar pipeline for quoted phrases,
synonym expansion, or custom ranking functions.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.docstore.aggregation import (
    AggregationResult,
    StageStats,
    aggregate,
    top_k_documents,
)
from repro.docstore.collection import Collection
from repro.docstore.functions import FunctionRegistry
from repro.docstore.sharding import ShardedCollection
from repro.errors import QueryError
from repro.search import columnar
from repro.search.indexing import ALL_SEARCH_FIELDS, build_search_document
from repro.search.query import ParsedQuery, parse_query
from repro.search.ranking import (
    BM25RankingFunction,
    FieldLengthStats,
    RankingFunction,
)
from repro.text.stemmer import stem
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize

PAGE_SIZE = 10

#: Deterministic result order: score descending, ``paper_id`` tie-break.
SORT_SPEC = {"score": -1, "paper_id": 1}

#: Fields every engine projects (id, display fields, ranking inputs).
PROJECTED_FIELDS = [
    "paper_id", "title", "abstract", "authors", "publish_time", "journal",
    "search", "static_rank", "tables",
]


@dataclass
class SearchResult:
    """One ranked hit with its display payload."""

    paper_id: str
    title: str
    score: float
    snippets: dict[str, str] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class SearchResults:
    """One page of results plus evaluation metadata."""

    query: str
    page: int
    total_matches: int
    results: list[SearchResult]
    seconds: float
    stage_stats: list[Any] = field(default_factory=list)

    @property
    def num_pages(self) -> int:
        return (self.total_matches + PAGE_SIZE - 1) // PAGE_SIZE

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class SearchEngineBase:
    """Common index + pipeline evaluation; engines define match/rank/format."""

    #: Reference path for differential tests: full ``$sort`` instead of
    #: the bounded top-k selection.  Results are identical either way.
    full_sort: bool = False

    #: Pre-flight validate the pipeline (stage names, operators,
    #: ``$function`` resolution) before executing it.  Off by default;
    #: the serving tier turns it on via ``ServeConfig.validate_pipelines``.
    validate_pipelines: bool = False

    #: Engage the columnar numpy kernels whenever a query is eligible
    #: (see :func:`repro.search.columnar.build_query_spec`); ``False``
    #: forces the scalar ``$match``/``$project``/``$function`` pipeline.
    use_columnar: bool = True

    def __init__(self, registry: FunctionRegistry | None = None,
                 expander=None, num_shards: int = 1,
                 ranker: str = "tfidf", bm25_k1: float = 1.5,
                 bm25_b: float = 0.75) -> None:
        self.collection: Collection | ShardedCollection
        if num_shards > 1:
            self.collection = ShardedCollection(
                "publications", shard_key="paper_id",
                num_shards=num_shards,
            )
        else:
            self.collection = Collection("publications")
        self.tfidf = TfIdfModel()
        self.registry = registry or FunctionRegistry()
        self.expander = expander
        self.field_stats = FieldLengthStats()
        self.ranker = ranker
        if ranker == "bm25":
            self.ranking: RankingFunction = BM25RankingFunction(
                self.tfidf, expander=expander, stats=self.field_stats,
                k1=bm25_k1, b=bm25_b,
            )
        elif ranker == "tfidf":
            self.ranking = RankingFunction(self.tfidf, expander=expander)
        else:
            raise QueryError(
                f"unknown ranker {ranker!r} (expected 'tfidf' or 'bm25')"
            )
        self._indexed = 0
        self._rank_serial = itertools.count(1)
        # Version-stamped columnar index; refreshed lazily whenever the
        # docstore/model stamp moves — extended with delta segments for
        # append-only motion, fully rebuilt otherwise.  A refresh race
        # between readers merely duplicates work (assignment is atomic;
        # both builds see the same snapshot) — ingest vs read is
        # serialized by the serving tier's data lock, as for every other
        # read path.  The key is minted once so process-pool workers
        # evict superseded generations instead of caching them forever.
        self._columnar: columnar.ColumnarIndex | None = None
        self._columnar_key = columnar.new_index_key()

    # -- ingest -------------------------------------------------------------

    def add_paper(self, paper: dict[str, Any]) -> None:
        """Index one CORD-19-style paper."""
        document = build_search_document(paper)
        stems = []
        for field_name in ALL_SEARCH_FIELDS:
            text = self._field_text(document, field_name)
            tokens = tokenize(text)
            self.field_stats.observe(field_name, len(tokens))
            stems.extend(stem(token) for token in tokens)
        self.field_stats.add_document()
        self.tfidf.add_document_tokens(stems)
        self.collection.insert_one(document)
        self._indexed += 1

    def add_papers(self, papers: list[dict[str, Any]]) -> None:
        for paper in papers:
            self.add_paper(paper)

    @staticmethod
    def _field_text(document: dict[str, Any], dotted: str) -> str:
        value: Any = document
        for part in dotted.split("."):
            if not isinstance(value, dict):
                return ""
            value = value.get(part, "")
        return value if isinstance(value, str) else ""

    @property
    def num_documents(self) -> int:
        return self._indexed

    # -- cost estimation ----------------------------------------------------

    def pipeline_plan(self, page: int = 1) -> list[dict[str, Any]]:
        """The canonical pipeline shape one search at ``page`` executes.

        For admission-control pricing
        (:func:`repro.analysis.pipeline_check.estimate_pipeline_cost`):
        the ``$match`` spec is elided because worst-case pricing assumes
        the filter passes everything anyway, and the ``$function`` name
        is symbolic — scorers are registered per invocation.
        """
        skip = (max(1, page) - 1) * PAGE_SIZE
        return [
            {"$match": {}},
            {"$project": {name: 1 for name in PROJECTED_FIELDS}},
            {"$function": {"name": "rank", "as": "score"}},
            {"$sort": dict(SORT_SPEC)},
            {"$skip": skip},
            {"$limit": PAGE_SIZE},
        ]

    def shard_document_counts(self) -> list[int]:
        """Per-shard indexed document counts (cost-estimation input)."""
        if isinstance(self.collection, ShardedCollection):
            return self.collection.shard_sizes()
        return [len(self.collection)]

    def rank_cost_factor(self, queries: list[str | None]) -> float:
        """The ``$function`` stage's cost multiplier for these queries.

        Admission control prices the scalar ranking closure at
        ``FUNCTION_COST_FACTOR`` work units per document; when every
        query would take the columnar kernel path the per-document work
        collapses to a few array lookups, priced at
        ``KERNEL_FUNCTION_COST_FACTOR``.  Unparseable/empty queries are
        priced at the scalar factor — over-charging a request that will
        be rejected anyway is harmless.
        """
        from repro.analysis.pipeline_check import (
            FUNCTION_COST_FACTOR,
            KERNEL_FUNCTION_COST_FACTOR,
        )

        if not self.use_columnar or self.full_sort:
            return FUNCTION_COST_FACTOR
        if not columnar.HAVE_NUMPY or self.expander is not None:
            return FUNCTION_COST_FACTOR
        if type(self.ranking) not in (RankingFunction, BM25RankingFunction):
            return FUNCTION_COST_FACTOR
        # Query-side loops, bounded by query length — not per-document.
        for query in queries:  # lint: allow=REP207
            if not query:
                continue
            try:
                parsed = parse_query(str(query))
            except QueryError:
                return FUNCTION_COST_FACTOR
            for term in parsed.terms:  # lint: allow=REP207
                if term.exact or \
                        not columnar._ALNUM_RE.match(term.text) or \
                        not columnar._ALNUM_RE.match(stem(term.text)):
                    return FUNCTION_COST_FACTOR
        return KERNEL_FUNCTION_COST_FACTOR

    # -- evaluation -------------------------------------------------------------

    @staticmethod
    def _append_only_delta(old: tuple[int, int],
                           new: tuple[int, int]) -> bool:
        """True when the stamp moved by document inserts alone.

        ``add_paper`` bumps the collection version and the model's
        document count in lockstep (+1 each per paper); any other
        mutation — delete, update, ``touch``, ``advance_version`` —
        moves the version without the count, failing this check and
        forcing a full rebuild.
        """
        return new[0] - old[0] == new[1] - old[1] > 0

    def _columnar_index(self) -> columnar.ColumnarIndex:
        """One consistent columnar snapshot for the calling query.

        The returned index object is immutable: callers must do their
        whole rank + page fetch against it rather than re-fetching
        mid-query, so a concurrent refresh can never swap the arrays
        out from under a running kernel.  When the stamp advanced by
        inserts alone the refresh is incremental — only the new rows
        are tokenized, into per-shard delta segments; anything else
        rebuilds from scratch.
        """
        stamp = columnar.stamp_for(self.collection,
                                   self.tfidf.num_documents)
        index = self._columnar
        if index is not None and index.stamp == stamp:
            return index
        if index is not None and self._append_only_delta(index.stamp,
                                                         stamp):
            index = index.extend(self.collection, stamp)
        else:
            index = columnar.build_index(
                self.collection, ALL_SEARCH_FIELDS, stamp,
                key=self._columnar_key,
            )
        self._columnar = index
        return index

    @property
    def delta_rows(self) -> int:
        """Rows currently served from delta segments (merge debt)."""
        index = self._columnar
        return index.delta_rows if index is not None else 0

    def merge_segments(self) -> bool:
        """Fold delta segments back into one base segment per shard.

        A full rebuild at the current stamp, swapped in with one atomic
        assignment — in-flight queries keep their old snapshot; the
        merged index answers byte-identically (the differential tests
        assert it), so the streaming-ingest tier runs this under the
        *read* side of the serving data lock.  Returns whether a new
        index was installed.
        """
        index = self._columnar
        if index is None:
            return False
        stamp = columnar.stamp_for(self.collection,
                                   self.tfidf.num_documents)
        if index.stamp == stamp and index.delta_segments == 0:
            return False
        self._columnar = columnar.build_index(
            self.collection, ALL_SEARCH_FIELDS, stamp,
            key=self._columnar_key,
        )
        return True

    def _rank_columnar(self, index: columnar.ColumnarIndex,
                       spec: columnar.QuerySpec, skip: int,
                       top_k: int) -> tuple[AggregationResult, int]:
        """Kernel ranking: numpy match+score per segment, exact merge."""
        kernel_started = time.perf_counter()
        total, merged = index.rank(spec, top_k)
        page_entries = merged[skip:]
        documents = index.fetch(
            page_entries, {name: 1 for name in PROJECTED_FIELDS}
        )
        seconds = time.perf_counter() - kernel_started
        stages = [
            StageStats(f"$columnar({spec.ranker})", index.num_rows,
                       total, seconds),
            StageStats("$sort(top-k)", total, len(documents), 0.0),
        ]
        return AggregationResult(documents, stages), total

    def _run_pipeline(self, parsed: ParsedQuery,
                      match_stage: dict[str, Any],
                      rank_fields: list[str],
                      page: int,
                      match_plan: columnar.MatchPlan | None = None
                      ) -> tuple[AggregationResult, int, float]:
        """Execute the canonical pipeline; returns (page, total, seconds).

        The ``$match``/``$project``/``$function`` prefix always runs
        (in parallel across shards when the index is sharded); ranking
        then takes the top-k path — a bounded heap of the
        ``page * PAGE_SIZE`` best candidates — unless ``full_sort`` asks
        for the reference full ``$sort``.
        """
        if page < 1:
            raise QueryError("pages are 1-based")
        skip = (page - 1) * PAGE_SIZE
        top_k = page * PAGE_SIZE
        if match_plan is not None and self.use_columnar \
                and not self.full_sort:
            spec = columnar.build_query_spec(
                parsed, match_plan, rank_fields, self.ranking,
                ALL_SEARCH_FIELDS,
            )
            if spec is not None:
                started = time.perf_counter()
                # One atomic snapshot per query: the same index object
                # serves candidate ranking *and* page fetch, so a
                # concurrent ingest can refresh ``self._columnar``
                # without a half-updated view ever being observable.
                index = self._columnar_index()
                paged, total = self._rank_columnar(index, spec, skip,
                                                   top_k)
                return paged, total, time.perf_counter() - started
        # A per-invocation name: concurrent queries against the same
        # engine (the serving tier runs readers in parallel) must not
        # overwrite each other's scorer between register and evaluate.
        function_name = f"rank_{id(self)}_{next(self._rank_serial)}"
        self.registry.register(
            function_name, self.ranking.scorer(parsed, rank_fields)
        )
        started = time.perf_counter()
        prefix = [
            {"$match": match_stage},
            {"$project": {name: 1 for name in PROJECTED_FIELDS}},
            {"$function": {"name": function_name, "as": "score"}},
        ]
        try:
            if self.validate_pipelines:
                from repro.analysis.pipeline_check import \
                    ensure_valid_pipeline

                ensure_valid_pipeline(
                    prefix + [{"$sort": SORT_SPEC}, {"$skip": skip},
                              {"$limit": PAGE_SIZE}],
                    self.registry,
                )
            if isinstance(self.collection, ShardedCollection):
                paged, total = self._rank_sharded(prefix, skip)
            else:
                paged, total = self._rank_local(prefix, skip, top_k)
        finally:
            self.registry.unregister(function_name)
        seconds = time.perf_counter() - started
        return paged, total, seconds

    def _rank_sharded(self, prefix: list[dict[str, Any]],
                      skip: int) -> tuple[AggregationResult, int]:
        """Scatter-gather ranking: per-shard prefix + bounded-heap merge."""
        if self.full_sort:
            ranked = self.collection.aggregate(
                prefix + [{"$sort": SORT_SPEC}], self.registry
            )
            total = len(ranked.documents)
            return AggregationResult(
                ranked.documents[skip:skip + PAGE_SIZE], ranked.stages
            ), total
        ranked = self.collection.aggregate(
            prefix + [{"$sort": SORT_SPEC}, {"$skip": skip},
                      {"$limit": PAGE_SIZE}],
            self.registry,
        )
        total = next(
            (stat.docs_in for stat in ranked.stages
             if stat.stage.startswith("$sort")),
            len(ranked.documents),
        )
        return ranked, total

    def _rank_local(self, prefix: list[dict[str, Any]], skip: int,
                    top_k: int) -> tuple[AggregationResult, int]:
        """Single-collection ranking: prefix, then top-k (or full sort)."""
        matched = aggregate(self.collection, prefix, self.registry)
        total = len(matched.documents)
        if self.full_sort:
            ranked = aggregate(
                matched.documents, [{"$sort": SORT_SPEC}], self.registry
            )
            return AggregationResult(
                ranked.documents[skip:skip + PAGE_SIZE],
                matched.stages + ranked.stages,
            ), total
        heap_started = time.perf_counter()
        page_documents = top_k_documents(
            matched.documents, SORT_SPEC, top_k
        )[skip:]
        stages = matched.stages + [StageStats(
            "$sort(top-k)", total, len(page_documents),
            time.perf_counter() - heap_started,
        )]
        return AggregationResult(page_documents, stages), total

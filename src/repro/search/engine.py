"""Shared search-engine machinery: index, pipeline evaluation, pagination.

Pipeline shape (paper Section 2.1, verbatim design):

1. ``$match`` **first**, with stemmed-regex filters, "to minimize the
   amount of data being passed through all the latter stages";
2. ``$project`` keeping "only ... fields that were necessary for carrying
   out calculations and printing to the screen";
3. a custom ``$function`` stage deriving the ranking score per document;
4. ``$sort`` by score, then pagination "as a list of ten per page".
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.docstore.aggregation import AggregationResult, aggregate
from repro.docstore.collection import Collection
from repro.docstore.functions import FunctionRegistry
from repro.errors import QueryError
from repro.search.indexing import ALL_SEARCH_FIELDS, build_search_document
from repro.search.query import ParsedQuery
from repro.search.ranking import RankingFunction
from repro.text.stemmer import stem
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize

PAGE_SIZE = 10

#: Fields every engine projects (id, display fields, ranking inputs).
PROJECTED_FIELDS = [
    "paper_id", "title", "abstract", "authors", "publish_time", "journal",
    "search", "static_rank", "tables",
]


@dataclass
class SearchResult:
    """One ranked hit with its display payload."""

    paper_id: str
    title: str
    score: float
    snippets: dict[str, str] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class SearchResults:
    """One page of results plus evaluation metadata."""

    query: str
    page: int
    total_matches: int
    results: list[SearchResult]
    seconds: float
    stage_stats: list[Any] = field(default_factory=list)

    @property
    def num_pages(self) -> int:
        return (self.total_matches + PAGE_SIZE - 1) // PAGE_SIZE

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class SearchEngineBase:
    """Common index + pipeline evaluation; engines define match/rank/format."""

    def __init__(self, registry: FunctionRegistry | None = None,
                 expander=None) -> None:
        self.collection = Collection("publications")
        self.tfidf = TfIdfModel()
        self.registry = registry or FunctionRegistry()
        self.expander = expander
        self.ranking = RankingFunction(self.tfidf, expander=expander)
        self._indexed = 0
        self._rank_serial = itertools.count(1)

    # -- ingest -------------------------------------------------------------

    def add_paper(self, paper: dict[str, Any]) -> None:
        """Index one CORD-19-style paper."""
        document = build_search_document(paper)
        stems = []
        for field_name in ALL_SEARCH_FIELDS:
            text = self._field_text(document, field_name)
            stems.extend(stem(token) for token in tokenize(text))
        self.tfidf.add_document_tokens(stems)
        self.collection.insert_one(document)
        self._indexed += 1

    def add_papers(self, papers: list[dict[str, Any]]) -> None:
        for paper in papers:
            self.add_paper(paper)

    @staticmethod
    def _field_text(document: dict[str, Any], dotted: str) -> str:
        value: Any = document
        for part in dotted.split("."):
            if not isinstance(value, dict):
                return ""
            value = value.get(part, "")
        return value if isinstance(value, str) else ""

    @property
    def num_documents(self) -> int:
        return self._indexed

    # -- evaluation -------------------------------------------------------------

    def _run_pipeline(self, parsed: ParsedQuery,
                      match_stage: dict[str, Any],
                      rank_fields: list[str],
                      page: int) -> tuple[AggregationResult, int, float]:
        """Execute the canonical pipeline; returns (page, total, seconds)."""
        if page < 1:
            raise QueryError("pages are 1-based")
        # A per-invocation name: concurrent queries against the same
        # engine (the serving tier runs readers in parallel) must not
        # overwrite each other's scorer between register and evaluate.
        function_name = f"rank_{id(self)}_{next(self._rank_serial)}"
        self.registry.register(
            function_name, self.ranking.scorer(parsed, rank_fields)
        )
        started = time.perf_counter()
        stages = [
            {"$match": match_stage},
            {"$project": {name: 1 for name in PROJECTED_FIELDS}},
            {"$function": {"name": function_name, "as": "score"}},
            {"$sort": {"score": -1}},
        ]
        try:
            ranked = aggregate(self.collection, stages, self.registry)
            total = len(ranked.documents)
            paged = aggregate(ranked.documents, [
                {"$skip": (page - 1) * PAGE_SIZE},
                {"$limit": PAGE_SIZE},
            ], self.registry)
        finally:
            self.registry.unregister(function_name)
        seconds = time.perf_counter() - started
        paged.stages = ranked.stages + paged.stages
        return paged, total, seconds

"""Flatten papers into searchable documents for the docstore.

Nested structures (body sections, table grids) are materialized into flat
text fields under ``search.*`` at ingest time so the engines' ``$match``
regex stages and ranking functions can address them with simple dotted
paths — the same shape the paper's parsed-JSON publication store has.
"""

from __future__ import annotations

from typing import Any

from repro.corpus.schema import validate_paper

#: Flat search fields and their ranking weights (title counts most, body
#: least — the ranking "incorporates ... which field the term was matched
#: in").
FIELD_WEIGHTS: dict[str, float] = {
    "search.title": 3.0,
    "search.abstract": 2.0,
    "search.table_captions": 1.5,
    "search.figure_captions": 1.2,
    "search.table_text": 1.0,
    "search.body": 1.0,
}

ALL_SEARCH_FIELDS = list(FIELD_WEIGHTS)


def build_search_document(paper: dict[str, Any]) -> dict[str, Any]:
    """A paper document augmented with flattened ``search.*`` fields."""
    paper = validate_paper(paper)
    body = " ".join(
        section.get("text", "") for section in paper["body_text"]
    )
    table_captions = " ".join(
        table.get("caption", "") for table in paper["tables"]
    )
    table_text = " ".join(
        cell.get("text", "")
        for table in paper["tables"]
        for row in table.get("rows", [])
        for cell in row.get("cells", [])
    )
    figure_captions = " ".join(
        figure.get("caption", "") for figure in paper["figures"]
    )
    document = dict(paper)
    document["search"] = {
        "title": paper["title"],
        "abstract": paper["abstract"],
        "body": body,
        "table_captions": table_captions,
        "table_text": table_text,
        "figure_captions": figure_captions,
    }
    # Static ranking features (see RankingFunction): newer publications and
    # table-rich publications get a mild boost.
    document["static_rank"] = {
        "year": int(str(paper["publish_time"])[:4]),
        "num_tables": len(paper["tables"]),
        "num_authors": len(paper["authors"]),
    }
    return document

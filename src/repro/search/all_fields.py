"""Engine 2: search over all publication fields (Section 2.1.2, Figure 2).

"If the user is unsure of where exactly the term may be ... then search
over all fields is a good fit."  Results carry per-field excerpts (abstract,
body text, table captions, table text, figure captions) that the web UI
expands and collapses.
"""

from __future__ import annotations

from repro.search.columnar import MatchPlan
from repro.search.engine import SearchEngineBase, SearchResult, SearchResults
from repro.search.indexing import ALL_SEARCH_FIELDS
from repro.search.query import match_filter, parse_query
from repro.search.snippets import field_snippets


class AllFieldsEngine(SearchEngineBase):
    """Full-document search with per-field excerpt formatting."""

    def search(self, query: str, page: int = 1) -> SearchResults:
        parsed = parse_query(query)
        match_stage = match_filter(parsed, ALL_SEARCH_FIELDS,
                                   expander=self.expander)
        paged, total, seconds = self._run_pipeline(
            parsed, match_stage, ALL_SEARCH_FIELDS, page,
            match_plan=MatchPlan.terms_over_fields(
                parsed, ALL_SEARCH_FIELDS
            ),
        )
        results = []
        for document in paged.documents:
            search_fields = document.get("search", {})
            results.append(SearchResult(
                paper_id=document.get("paper_id", ""),
                title=document.get("title", ""),
                score=float(document.get("score", 0.0)),
                snippets=field_snippets({
                    "title": search_fields.get("title", ""),
                    "abstract": search_fields.get("abstract", ""),
                    "body": search_fields.get("body", ""),
                    "table_captions": search_fields.get(
                        "table_captions", ""
                    ),
                    "table_text": search_fields.get("table_text", ""),
                    "figure_captions": search_fields.get(
                        "figure_captions", ""
                    ),
                }, parsed),
                extras={
                    "journal": document.get("journal", ""),
                    "publish_time": document.get("publish_time", ""),
                },
            ))
        return SearchResults(
            query=query, page=page, total_matches=total,
            results=results, seconds=seconds, stage_stats=paged.stages,
        )

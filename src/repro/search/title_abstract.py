"""Engine 1: search over paper title, abstract, and table captions
(Section 2.1.1).

Three independent search fields with *inclusive* semantics: "if a user
searches on a field there must be a document that matches at least one
term in that field or it does not get passed on to the next stage
regardless if there are matches over the other fields".  Results are
"formatted with table captions first, the title and authors and the full
abstract".
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.search.columnar import MatchPlan
from repro.search.engine import SearchEngineBase, SearchResult, SearchResults
from repro.search.query import ParsedQuery, field_match_filter, parse_query
from repro.search.snippets import highlight, snippet

_FIELD_MAP = {
    "title": "search.title",
    "abstract": "search.abstract",
    "caption": "search.table_captions",
}


class TitleAbstractCaptionEngine(SearchEngineBase):
    """Three inclusive search fields: title / abstract / table captions."""

    def search(self, title: str | None = None, abstract: str | None = None,
               caption: str | None = None, page: int = 1) -> SearchResults:
        queries: dict[str, ParsedQuery] = {}
        if title:
            queries["title"] = parse_query(title)
        if abstract:
            queries["abstract"] = parse_query(abstract)
        if caption:
            queries["caption"] = parse_query(caption)
        if not queries:
            raise QueryError(
                "at least one of title/abstract/caption must be searched"
            )

        # Inclusive fields: AND of per-field "at least one term" clauses.
        clauses = [
            field_match_filter(parsed, _FIELD_MAP[name])
            for name, parsed in queries.items()
        ]
        match_stage = clauses[0] if len(clauses) == 1 else {"$and": clauses}

        # Ranking uses the union of all entered terms over the three fields.
        merged = ParsedQuery(
            raw=" ".join(parsed.raw for parsed in queries.values()),
            terms=tuple(
                term for parsed in queries.values() for term in parsed.terms
            ),
        )
        rank_fields = [_FIELD_MAP[name] for name in queries]
        paged, total, seconds = self._run_pipeline(
            merged, match_stage, rank_fields, page,
            match_plan=MatchPlan.fields_over_terms([
                (_FIELD_MAP[name], parsed)
                for name, parsed in queries.items()
            ]),
        )

        results = []
        for document in paged.documents:
            search_fields = document.get("search", {})
            authors = ", ".join(
                f"{a.get('first', '')} {a.get('last', '')}".strip()
                for a in document.get("authors", [])
            )
            # Format order per the paper: captions, then title+authors,
            # then the full abstract.
            snippets = {}
            caption_excerpt = snippet(
                search_fields.get("table_captions", ""), merged
            )
            if caption_excerpt:
                snippets["table_captions"] = caption_excerpt
            snippets["title"] = highlight(
                search_fields.get("title", ""), merged
            )
            snippets["authors"] = authors
            snippets["abstract"] = highlight(
                search_fields.get("abstract", ""), merged
            )
            results.append(SearchResult(
                paper_id=document.get("paper_id", ""),
                title=document.get("title", ""),
                score=float(document.get("score", 0.0)),
                snippets=snippets,
            ))
        return SearchResults(
            query=merged.raw, page=page, total_matches=total,
            results=results, seconds=seconds, stage_stats=paged.stages,
        )

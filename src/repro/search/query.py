"""Query parsing: stemmed loose terms and quoted exact phrases.

"Each one allows for exact match of the query if wrapped in quotes or
stemming match capability on a tokenized query" — the parser produces, per
token, the regular expression the ``$match`` stage uses: exact phrases
escape verbatim; loose terms match any word sharing the Porter stem's
prefix (``masks`` -> stem ``mask`` -> ``\\bmask\\w*``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError
from repro.text.stemmer import stem
from repro.text.tokenizer import QueryToken, tokenize_query


@dataclass(frozen=True)
class QueryTerm:
    """One searchable unit with its match regex."""

    text: str
    exact: bool
    pattern: str  # regex source, compiled with IGNORECASE by consumers

    @property
    def stemmed(self) -> str:
        return self.text if self.exact else stem(self.text)

    def regex(self) -> re.Pattern[str]:
        return re.compile(self.pattern, re.IGNORECASE)


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed user query: ordered terms plus convenience views."""

    raw: str
    terms: tuple[QueryTerm, ...]

    @property
    def words(self) -> list[str]:
        """Every individual word across terms (phrases contribute each)."""
        result = []
        for term in self.terms:
            result.extend(term.text.split())
        return result

    def __len__(self) -> int:
        return len(self.terms)


def _pattern_for(token: QueryToken) -> str:
    if token.exact:
        return r"\b" + re.escape(token.text) + r"\b"
    root = stem(token.text)
    # The stem is a prefix of most inflections ("mask" ~ masks/masked/...).
    # Porter stems sometimes end in 'i' for y-inflections (happi); allow
    # the original token too.
    escaped_root = re.escape(root)
    escaped_word = re.escape(token.text)
    return rf"\b(?:{escaped_root}|{escaped_word})\w*"


def parse_query(query: str) -> ParsedQuery:
    """Parse ``query``; raises :class:`QueryError` when empty."""
    tokens = tokenize_query(query)
    if not tokens:
        raise QueryError("empty query")
    terms = tuple(
        QueryTerm(text=token.text, exact=token.exact,
                  pattern=_pattern_for(token))
        for token in tokens
    )
    return ParsedQuery(raw=query, terms=terms)


def match_filter(parsed: ParsedQuery, fields: list[str],
                 expander=None) -> dict:
    """The ``$match`` document: AND over terms, OR over fields per term.

    With a :class:`~repro.search.synonyms.SynonymExpander`, a loose term
    is also satisfied by any of its synonyms (quoted terms stay literal),
    widening recall the way the ranking's synonym support widens scoring.
    """
    clauses = []
    for term in parsed.terms:
        patterns = [term.pattern]
        if expander is not None and not term.exact:
            for synonym, _weight in expander.expand(term.text):
                patterns.append(r"\b" + re.escape(synonym) + r"\w*")
        clauses.append({
            "$or": [
                {field: {"$regex": pattern, "$options": "i"}}
                for field in fields
                for pattern in patterns
            ]
        })
    if len(clauses) == 1:
        return clauses[0]
    return {"$and": clauses}


def field_match_filter(parsed: ParsedQuery, field: str) -> dict:
    """A ``$match`` clause demanding at least one term inside ``field``.

    This is the *inclusive field* semantics of Section 2.1.1: "if a user
    searches on a field there must be a document that matches at least one
    term in that field".
    """
    if len(parsed.terms) == 1:
        return {field: {"$regex": parsed.terms[0].pattern, "$options": "i"}}
    return {
        "$or": [
            {field: {"$regex": term.pattern, "$options": "i"}}
            for term in parsed.terms
        ]
    }

"""Snippet extraction and term highlighting for result pages.

Result pages display "brief snippets of the document" with matched terms
highlighted (rendered in red in the web UI — Figure 4); here highlights
are marked ``[[term]]`` so any front end can restyle them.
"""

from __future__ import annotations

import re

from repro.search.query import ParsedQuery

HIGHLIGHT_OPEN = "[["
HIGHLIGHT_CLOSE = "]]"

#: Characters of context kept on each side of the first match.
SNIPPET_RADIUS = 80


def highlight(text: str, parsed: ParsedQuery) -> str:
    """Wrap every query-term match in highlight markers."""
    if not text:
        return ""
    combined = "|".join(
        f"(?:{term.pattern})" for term in parsed.terms
    )
    pattern = re.compile(combined, re.IGNORECASE)
    return pattern.sub(
        lambda match: f"{HIGHLIGHT_OPEN}{match.group(0)}{HIGHLIGHT_CLOSE}",
        text,
    )


def first_match_span(text: str, parsed: ParsedQuery) -> tuple[int, int] | None:
    """(start, end) of the earliest term match in ``text``."""
    best: tuple[int, int] | None = None
    for term in parsed.terms:
        match = term.regex().search(text)
        if match and (best is None or match.start() < best[0]):
            best = (match.start(), match.end())
    return best


def snippet(text: str, parsed: ParsedQuery,
            radius: int = SNIPPET_RADIUS) -> str:
    """A highlighted excerpt around the first match (empty if no match)."""
    if not text:
        return ""
    span = first_match_span(text, parsed)
    if span is None:
        return ""
    start = max(0, span[0] - radius)
    end = min(len(text), span[1] + radius)
    # Snap to word boundaries so excerpts do not cut words in half.
    while start > 0 and not text[start - 1].isspace():
        start -= 1
    while end < len(text) and not text[end].isspace():
        end += 1
    excerpt = text[start:end].strip()
    prefix = "..." if start > 0 else ""
    suffix = "..." if end < len(text) else ""
    return prefix + highlight(excerpt, parsed) + suffix


def field_snippets(document_fields: dict[str, str],
                   parsed: ParsedQuery) -> dict[str, str]:
    """Per-field snippets, omitting fields with no match."""
    result = {}
    for name, text in document_fields.items():
        excerpt = snippet(text or "", parsed)
        if excerpt:
            result[name] = excerpt
    return result

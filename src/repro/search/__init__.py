"""The three advanced search engines (paper Section 2.1).

All engines share one evaluation shape, straight from the paper: a MongoDB
aggregation pipeline whose *first* stage is ``$match`` (regex filters built
from stemmed query terms), followed by ``$project`` (keep only fields the
ranking needs), custom ``$function`` ranking stages (TF-IDF, match counts,
proximity, field weights), ``$sort``, and pagination at ten results per
page.

* :class:`TitleAbstractCaptionEngine` — three inclusive search fields
  (Section 2.1.1),
* :class:`AllFieldsEngine` — search over every publication field
  (Section 2.1.2, Figure 2),
* :class:`TableSearchEngine` — search over table captions and table data
  (Section 2.1.3, Figure 4).
"""

from repro.search.all_fields import AllFieldsEngine
from repro.search.engine import SearchResult, SearchResults
from repro.search.indexing import build_search_document
from repro.search.query import ParsedQuery, parse_query
from repro.search.ranking import (
    BM25RankingFunction,
    FieldLengthStats,
    RankingFunction,
)
from repro.search.table_search import TableSearchEngine
from repro.search.title_abstract import TitleAbstractCaptionEngine

__all__ = [
    "AllFieldsEngine",
    "BM25RankingFunction",
    "FieldLengthStats",
    "SearchResult",
    "SearchResults",
    "build_search_document",
    "ParsedQuery",
    "parse_query",
    "RankingFunction",
    "TableSearchEngine",
    "TitleAbstractCaptionEngine",
]

"""Engine 3: search over paper tables (Section 2.1.3, Figure 4).

"These search results are a product of regular expression search over
table captions and all of the table's data."  Each hit lists the matching
tables with the matched cells highlighted (the web UI renders them in
red), ranked by "an advanced ranking function having both static and
dynamic features" — here the shared :class:`RankingFunction` restricted to
the table fields, plus a per-table cell-hit count.
"""

from __future__ import annotations

from typing import Any

from repro.search.columnar import MatchPlan
from repro.search.engine import SearchEngineBase, SearchResult, SearchResults
from repro.search.query import ParsedQuery, match_filter, parse_query
from repro.search.snippets import highlight, snippet

_TABLE_FIELDS = ["search.table_captions", "search.table_text"]


def _matching_tables(document: dict[str, Any],
                     parsed: ParsedQuery) -> list[dict[str, Any]]:
    """Tables of ``document`` with at least one matching caption or cell."""
    matches = []
    patterns = [term.regex() for term in parsed.terms]
    for table in document.get("tables", []):
        caption = table.get("caption", "")
        caption_hit = any(p.search(caption) for p in patterns)
        highlighted_rows = []
        cell_hits = 0
        for row in table.get("rows", []):
            texts = [cell.get("text", "") for cell in row.get("cells", [])]
            row_hits = sum(
                1 for text in texts for p in patterns if p.search(text)
            )
            cell_hits += row_hits
            highlighted_rows.append([
                highlight(text, parsed) if any(
                    p.search(text) for p in patterns
                ) else text
                for text in texts
            ])
        if caption_hit or cell_hits:
            matches.append({
                "table_id": table.get("table_id"),
                "caption": highlight(caption, parsed),
                "rows": highlighted_rows,
                "cell_hits": cell_hits,
                "caption_hit": caption_hit,
            })
    # Most relevant tables first: caption match outranks raw cell count.
    matches.sort(
        key=lambda m: (m["caption_hit"], m["cell_hits"]), reverse=True
    )
    return matches


class TableSearchEngine(SearchEngineBase):
    """Structural search over table captions and table data."""

    def search(self, query: str, page: int = 1) -> SearchResults:
        parsed = parse_query(query)
        match_stage = match_filter(parsed, _TABLE_FIELDS)
        paged, total, seconds = self._run_pipeline(
            parsed, match_stage, _TABLE_FIELDS, page,
            match_plan=MatchPlan.terms_over_fields(parsed, _TABLE_FIELDS),
        )
        results = []
        for document in paged.documents:
            tables = _matching_tables(document, parsed)
            search_fields = document.get("search", {})
            snippets = {}
            abstract_excerpt = snippet(
                search_fields.get("abstract", ""), parsed
            )
            if abstract_excerpt:
                snippets["abstract"] = abstract_excerpt
            results.append(SearchResult(
                paper_id=document.get("paper_id", ""),
                title=document.get("title", ""),
                score=float(document.get("score", 0.0)),
                snippets=snippets,
                extras={"tables": tables},
            ))
        return SearchResults(
            query=query, page=page, total_matches=total,
            results=results, seconds=seconds, stage_stats=paged.stages,
        )

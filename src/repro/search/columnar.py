"""Columnar posting lists + numpy ranking kernels for the search hot path.

The scalar ranking path walks every matched document in Python: per
document, per field, tokenize + stem + count + window-scan.  Under the
GIL that work gains nothing from the thread fan-out (bench E16 measures
~1x).  This module trades the per-document dict walking for contiguous
per-shard arrays scored with numpy batch operations:

* per shard and per field, a CSR layout of stem postings —
  ``(term-id, row, term-frequency)`` triples plus a flat positions array
  — built once from the stored documents with the exact tokenizer and
  stemmer the scalar scorer uses;
* per shard and per field, an *atom* dictionary (sorted unique ``\\w+``
  runs of the raw text, case-folded) that reproduces the ``$match``
  regex semantics (``\\b(?:stem|word)\\w*``, ``IGNORECASE``) as two
  binary searches per query term;
* per shard, the precomputed static scores, paper ids, and a
  ``math.log`` lookup table so kernel TF-IDF values are bit-identical
  to the scalar ``(1 + log(tf)) * idf``.

The kernel path only engages when it can reproduce the scalar reference
**byte-identically** (see :func:`build_query_spec`); everything else —
quoted phrases, synonym expansion, custom ``$function`` rankers,
non-alphanumeric terms — falls back to the scalar pipeline.  Ordering is
preserved exactly: score descending, ``paper_id`` ascending, then shard
/ insertion order, the same composite the heap merge uses.

The index is version-stamped like the KG derived indexes: it is
invalidated whenever ``(collection.version, tfidf.num_documents)``
moves.  Invalidation is **incremental for append-only motion**: when the
stamp advanced by inserts alone (version and document count moved in
lockstep), the new rows land in small per-shard *delta segments*
appended to the existing immutable base — queries consult every segment
and merge exactly; any other mutation triggers a full rebuild.  A
background merge (the streaming-ingest tier's
``SearchEngineBase.merge_segments``) periodically folds deltas back into
one base segment; the merged index is byte-identical to a from-scratch
rebuild, so either generation may answer a query.

With ``REPRO_EXECUTOR_KIND=process`` the per-segment kernels run on a
process pool (spawn context) behind the same thread-level ``scatter`` —
``FanoutBudget`` accounting, quiescence, and the fan-out observers all
apply unchanged.  Segment arrays are shipped to each worker process once
and cached there keyed by ``(index key, (shard, position), segment
id)``; a new segment at the same position evicts the previous
generation.  The caveats: spawn start-up costs ~100ms per worker once,
every worker eventually holds a copy of every segment it scored, and
results are identical to thread mode because the same arrays produce the
same kernels.
"""

from __future__ import annotations

import itertools
import math
import os
import re
import time
from dataclasses import dataclass
from typing import Any, Iterable

try:  # pragma: no cover - numpy is a declared dependency
    import numpy as np
    HAVE_NUMPY = True
except Exception:  # pragma: no cover - degraded env: scalar path only
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.docstore import executor as _executor
from repro.docstore.collection import Collection, apply_projection
from repro.docstore.documents import deep_set
from repro.docstore.sharding import ShardedCollection
from repro.search.query import ParsedQuery, QueryTerm
from repro.search.ranking import (
    PROXIMITY_WEIGHT,
    STATIC_WEIGHT,
    BM25RankingFunction,
    RankingFunction,
    min_window,
    static_score,
)
from repro.text.stemmer import stem
from repro.text.tokenizer import tokenize

#: The ``$match`` regexes (``\b(?:root|word)\w*``) see every ``\w+`` run
#: of the raw text; the tokenizer does not (it splits on ``_`` and glues
#: ``covid-19``).  Atoms therefore get their own dictionary.
_ATOM_RE = re.compile(r"\w+")

#: Kernel-eligible roots/words: pure lowercase ASCII alphanumerics, for
#: which "regex prefix match" and "atom prefix match" provably coincide.
_ALNUM_RE = re.compile(r"[a-z0-9]+\Z")

_INDEX_IDS = itertools.count(1)
_SEGMENT_IDS = itertools.count(1)


def new_index_key() -> str:
    """A worker-cache key prefix for one engine's index lineage.

    Engines mint one key at construction and reuse it across rebuilds
    and extends, so the process-pool worker cache's slot eviction
    (keyed on ``(index key, (shard, position))``) reclaims the previous
    generation instead of leaking it.
    """
    return f"columnar-{os.getpid()}-{next(_INDEX_IDS)}"


# -- match plans ------------------------------------------------------------

@dataclass(frozen=True)
class MatchPlan:
    """The ``$match`` stage as CNF: AND of clauses, OR of atoms inside.

    Each atom is ``(field, term)`` — "term's regex matches this field".
    Both engine shapes reduce to this: all-fields/table search ANDs
    per-term OR-over-fields clauses; title/abstract/caption ANDs
    per-field OR-over-terms clauses.
    """

    clauses: tuple[tuple[tuple[str, QueryTerm], ...], ...]

    @classmethod
    def terms_over_fields(cls, parsed: ParsedQuery,
                          fields: Iterable[str]) -> "MatchPlan":
        """AND over terms; each term may match any of ``fields``."""
        fields = tuple(fields)
        return cls(tuple(
            tuple((field, term) for field in fields)
            for term in parsed.terms
        ))

    @classmethod
    def fields_over_terms(
        cls, field_queries: Iterable[tuple[str, ParsedQuery]]
    ) -> "MatchPlan":
        """AND over searched fields; each needs at least one of its terms."""
        return cls(tuple(
            tuple((field, term) for term in parsed.terms)
            for field, parsed in field_queries
        ))


@dataclass(frozen=True)
class QuerySpec:
    """A fully-planned kernel query (picklable: plain strings/floats).

    ``clauses`` drive candidate selection (atoms as ``(field, root,
    word)``), ``words`` carry the scoring stems with their query-side
    IDFs in scalar accumulation order, ``fields`` the rank fields with
    weight and BM25 ``avgdl``, and ``prox_stems`` the per-term stems for
    the proximity window (``None`` for single-term queries).
    """

    clauses: tuple[tuple[tuple[str, str, str], ...], ...]
    words: tuple[tuple[str, float], ...]
    fields: tuple[tuple[str, float, float], ...]
    prox_stems: tuple[str, ...] | None
    ranker: str = "tfidf"
    k1: float = 1.5
    b: float = 0.75


def build_query_spec(parsed: ParsedQuery, match_plan: MatchPlan,
                     rank_fields: list[str], ranking: RankingFunction,
                     indexed_fields: Iterable[str]) -> QuerySpec | None:
    """Plan a kernel query, or ``None`` when the kernel can't be exact.

    The kernel only runs when it provably reproduces the scalar path
    bit-for-bit; anything outside that envelope falls back:

    * the ranker must be exactly :class:`RankingFunction` or
      :class:`BM25RankingFunction` (a subclass may override anything);
    * no synonym expander (expansion changes both match and score);
    * no quoted phrases (their regexes cross token boundaries);
    * every term's stem root *and* literal word must be pure lowercase
      ASCII alphanumerics, where regex-prefix == atom-prefix;
    * every matched/ranked field must be columnar-indexed.
    """
    if not HAVE_NUMPY:
        return None
    if type(ranking) not in (RankingFunction, BM25RankingFunction):
        return None
    if ranking.expander is not None:
        return None
    if ranking.tfidf.num_documents == 0:
        return None
    indexed = set(indexed_fields)
    if any(field not in indexed for field in rank_fields):
        return None
    for term in parsed.terms:
        if term.exact:
            return None
        root = stem(term.text)
        if not _ALNUM_RE.match(term.text) or not _ALNUM_RE.match(root):
            return None
    clauses = []
    for clause in match_plan.clauses:
        atoms = []
        for field, term in clause:
            if field not in indexed or term.exact:
                return None
            atoms.append((field, stem(term.text), term.text))
        clauses.append(tuple(atoms))
    words = []
    for term in parsed.terms:
        for word in term.text.split():
            stemmed = stem(word)
            idf = ranking._word_idf(stemmed)
            if idf is None:
                return None
            words.append((stemmed, idf))
    fields = tuple(
        (field, ranking.field_weights.get(field, 1.0),
         ranking._field_norm(field))
        for field in rank_fields
    )
    prox_stems = (
        tuple(stem(term.text) for term in parsed.terms)
        if len(parsed.terms) >= 2 else None
    )
    if isinstance(ranking, BM25RankingFunction):
        return QuerySpec(tuple(clauses), tuple(words), fields, prox_stems,
                         ranker="bm25", k1=ranking.k1, b=ranking.b)
    return QuerySpec(tuple(clauses), tuple(words), fields, prox_stems)


# -- columnar storage -------------------------------------------------------

class FieldColumns:
    """One shard-field's postings in CSR numpy layout."""

    __slots__ = ("stem_index", "post_starts", "post_rows", "post_tfs",
                 "pos_starts", "positions", "doc_lengths",
                 "atoms", "atom_starts", "atom_rows", "max_atom_len")

    def __init__(self, texts: list[str]) -> None:
        postings: dict[str, list[tuple[int, list[int]]]] = {}
        atom_rows: dict[str, list[int]] = {}
        doc_lengths = []
        for row, text in enumerate(texts):
            tokens = tokenize(text)
            doc_lengths.append(len(tokens))
            occurrences: dict[str, list[int]] = {}
            for position, token in enumerate(tokens):
                occurrences.setdefault(stem(token), []).append(position)
            for stemmed, positions in occurrences.items():
                postings.setdefault(stemmed, []).append((row, positions))
            for atom in set(_ATOM_RE.findall(text)):
                folded = atom.casefold()
                rows = atom_rows.setdefault(folded, [])
                if not rows or rows[-1] != row:
                    rows.append(row)
        self.stem_index = {s: i for i, s in enumerate(postings)}
        starts, rows, tfs, pos_starts, flat_positions = [0], [], [], [0], []
        for entries in postings.values():
            for row, positions in entries:
                rows.append(row)
                tfs.append(len(positions))
                flat_positions.extend(positions)
                pos_starts.append(len(flat_positions))
            starts.append(len(rows))
        self.post_starts = np.asarray(starts, dtype=np.int64)
        self.post_rows = np.asarray(rows, dtype=np.int64)
        self.post_tfs = np.asarray(tfs, dtype=np.int64)
        self.pos_starts = np.asarray(pos_starts, dtype=np.int64)
        self.positions = np.asarray(flat_positions, dtype=np.int64)
        self.doc_lengths = np.asarray(doc_lengths, dtype=np.int64)
        sorted_atoms = sorted(atom_rows)
        self.max_atom_len = max((len(a) for a in sorted_atoms), default=0)
        self.atoms = np.asarray(sorted_atoms, dtype="<U1") \
            if not sorted_atoms else np.asarray(sorted_atoms)
        astarts, arows = [0], []
        for atom in sorted_atoms:
            arows.extend(atom_rows[atom])
            astarts.append(len(arows))
        self.atom_starts = np.asarray(astarts, dtype=np.int64)
        self.atom_rows = np.asarray(arows, dtype=np.int64)

    def prefix_rows(self, prefix: str) -> "np.ndarray":
        """Rows whose text has a ``\\w+`` run starting with ``prefix``."""
        if len(prefix) > self.max_atom_len or not len(self.atoms):
            return self.atom_rows[:0]
        lo = int(np.searchsorted(self.atoms, prefix, side="left"))
        # Successor string of the same length: prefix upper bound without
        # widening the array dtype (roots/words are ASCII alnum, so the
        # incremented code point stays in range).
        upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        hi = int(np.searchsorted(self.atoms, upper, side="left"))
        if lo >= hi:
            return self.atom_rows[:0]
        pieces = [
            self.atom_rows[self.atom_starts[a]:self.atom_starts[a + 1]]
            for a in range(lo, hi)
        ]
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def posting_slice(self, stemmed: str) -> tuple[int, int] | None:
        sid = self.stem_index.get(stemmed)
        if sid is None:
            return None
        return int(self.post_starts[sid]), int(self.post_starts[sid + 1])


class ShardColumns:
    """All columnar state of one shard (picklable; no raw documents)."""

    __slots__ = ("num_rows", "fields", "paper_ids", "static", "log_table")

    def __init__(self, documents: list[dict[str, Any]],
                 field_names: Iterable[str]) -> None:
        self.num_rows = len(documents)
        self.fields = {
            name: FieldColumns([_field_text(doc, name)
                                for doc in documents])
            for name in field_names
        }
        self.paper_ids = (
            np.asarray([str(doc.get("paper_id", "")) for doc in documents])
            if documents else np.asarray([], dtype="<U1")
        )
        self.static = np.asarray(
            [static_score(doc) for doc in documents], dtype=np.float64
        )
        max_tf = max(
            (int(fc.post_tfs.max()) for fc in self.fields.values()
             if len(fc.post_tfs)),
            default=0,
        )
        # Bit-exact (1 + log(tf)): index the scalar path's math.log by
        # integer tf instead of trusting np.log to agree to the ULP.
        self.log_table = np.asarray(
            [0.0] + [math.log(tf) for tf in range(1, max_tf + 1)],
            dtype=np.float64,
        )


def _field_text(document: dict[str, Any], dotted: str) -> str:
    value: Any = document
    for part in dotted.split("."):
        if not isinstance(value, dict):
            return ""
        value = value.get(part, "")
    if isinstance(value, list):
        return " ".join(str(part) for part in value)
    return value if isinstance(value, str) else ""


# -- kernels ----------------------------------------------------------------

def _candidate_rows(cols: ShardColumns, spec: QuerySpec) -> "np.ndarray":
    """Rows satisfying the CNF match plan, in insertion (row) order."""
    mask = np.ones(cols.num_rows, dtype=bool)
    for clause in spec.clauses:
        clause_mask = np.zeros(cols.num_rows, dtype=bool)
        for field, root, word in clause:
            fc = cols.fields.get(field)
            if fc is None:
                continue
            for prefix in dict.fromkeys((root, word)):
                rows = fc.prefix_rows(prefix)
                if len(rows):
                    clause_mask[rows] = True
        mask &= clause_mask
        if not mask.any():
            break
    return np.nonzero(mask)[0]


def _gather_tf(cols: ShardColumns, fc: FieldColumns, stemmed: str,
               cand: "np.ndarray") -> "np.ndarray | None":
    span = fc.posting_slice(stemmed)
    if span is None:
        return None
    scratch = np.zeros(cols.num_rows, dtype=np.int64)
    scratch[fc.post_rows[span[0]:span[1]]] = fc.post_tfs[span[0]:span[1]]
    return scratch[cand]


def _field_word_scores(cols: ShardColumns, fc: FieldColumns,
                       spec: QuerySpec, cand: "np.ndarray",
                       avgdl: float) -> "np.ndarray":
    """Σ over query words of the word score, in scalar accumulation order."""
    acc = np.zeros(len(cand), dtype=np.float64)
    for stemmed, idf in spec.words:
        tf = _gather_tf(cols, fc, stemmed, cand)
        if tf is None:
            continue
        nz = tf > 0
        if not nz.any():
            continue
        contrib = np.zeros(len(cand), dtype=np.float64)
        if spec.ranker == "bm25":
            tf_nz = tf[nz].astype(np.float64)
            dl_nz = fc.doc_lengths[cand][nz].astype(np.float64)
            norm = spec.k1 * (1.0 - spec.b + spec.b * (dl_nz / avgdl))
            contrib[nz] = idf * (tf_nz * (spec.k1 + 1.0)) / (tf_nz + norm)
        else:
            contrib[nz] = (1.0 + cols.log_table[tf[nz]]) * idf
        acc = acc + contrib
    return acc


def _proximity_bonus(cols: ShardColumns, spec: QuerySpec,
                     cand: "np.ndarray") -> "np.ndarray":
    """Best per-field 1/min-window bonus per candidate row."""
    best = np.zeros(len(cand), dtype=np.float64)
    for name, _weight, _avgdl in spec.fields:
        fc = cols.fields.get(name)
        if fc is None:
            continue
        present = np.ones(len(cand), dtype=bool)
        term_postings = []
        for stemmed in spec.prox_stems:
            span = fc.posting_slice(stemmed)
            if span is None:
                present[:] = False
                break
            scratch = np.full(cols.num_rows, -1, dtype=np.int64)
            scratch[fc.post_rows[span[0]:span[1]]] = np.arange(
                span[0], span[1], dtype=np.int64
            )
            gathered = scratch[cand]
            term_postings.append(gathered)
            present &= gathered >= 0
        if not present.any():
            continue
        # The window scan itself stays scalar: it only runs on the
        # (typically small) all-terms-present intersection, and must be
        # the very min_window the reference scorer uses.
        for j in np.nonzero(present)[0]:  # lint: allow=REP207
            positions = [
                fc.positions[
                    fc.pos_starts[tp[j]]:fc.pos_starts[tp[j] + 1]
                ].tolist()
                for tp in term_postings
            ]
            window = min_window(positions)
            if window is not None:
                bonus = 1.0 / window
                if bonus > best[j]:
                    best[j] = bonus
    return best


def score_shard(cols: ShardColumns, spec: QuerySpec,
                top_k: int) -> tuple[int, list[tuple[float, str, int]]]:
    """Match + score one shard; returns (candidates, top-k partials).

    Partials are ``(score, paper_id, row)`` in final page order — score
    descending, paper_id ascending, insertion (row) ascending — the
    exact composite the scalar heap merge sorts by.
    """
    cand = _candidate_rows(cols, spec)
    total = int(cand.size)
    if not total:
        return 0, []
    scores = np.zeros(total, dtype=np.float64)
    # Per-field, not per-document: each iteration is one batch kernel.
    for name, weight, avgdl in spec.fields:  # lint: allow=REP207
        fc = cols.fields.get(name)
        if fc is None:
            continue
        scores = scores + weight * _field_word_scores(
            cols, fc, spec, cand, avgdl
        )
    if spec.prox_stems is not None:
        scores = scores + PROXIMITY_WEIGHT * _proximity_bonus(
            cols, spec, cand
        )
    scores = scores + STATIC_WEIGHT * cols.static[cand]
    paper_ids = cols.paper_ids[cand]
    order = np.lexsort((cand, paper_ids, -scores))[:top_k]
    return total, [
        (float(scores[i]), str(paper_ids[i]), int(cand[i])) for i in order
    ]


# -- process-pool dispatch --------------------------------------------------

#: Worker-side segment cache:
#: ``(index_key, (shard, position), segment_id) -> ShardColumns``.
#: Payloads ship once per worker; a new segment id at the same
#: ``(index_key, (shard, position))`` slot evicts the old generation.
_WORKER_SHARDS: dict[tuple[str, Any, Any], ShardColumns] = {}


def _worker_rank(key: tuple[str, Any, Any],
                 payload: ShardColumns | None, spec: QuerySpec,
                 top_k: int) -> tuple[int, list] | None:
    """Runs in a worker process; ``None`` signals a cache miss."""
    cols = _WORKER_SHARDS.get(key)
    if cols is None:
        if payload is None:
            return None
        slot = key[:2]
        for stale in [k for k in _WORKER_SHARDS if k[:2] == slot]:
            del _WORKER_SHARDS[stale]
        _WORKER_SHARDS[key] = payload
        cols = payload
    return score_shard(cols, spec, top_k)


def _rank_via_process(key: tuple[str, Any, Any], cols: ShardColumns,
                      spec: QuerySpec, top_k: int
                      ) -> tuple[int, list[tuple[float, str, int]]]:
    """Probe the worker cache; resend the shard payload on a miss.

    Any process-pool failure (broken pool, mid-shutdown submit) degrades
    to scoring in-process — results are identical either way.
    """
    from concurrent.futures.process import BrokenProcessPool
    try:
        pool = _executor.get_process_executor()
        result = pool.submit(_worker_rank, key, None, spec, top_k).result()
        if result is None:
            result = pool.submit(
                _worker_rank, key, cols, spec, top_k
            ).result()
        return result
    except (BrokenProcessPool, RuntimeError, OSError):
        return score_shard(cols, spec, top_k)


# -- the index --------------------------------------------------------------

class Segment:
    """One immutable slice of a shard's rows: arrays + raw documents.

    ``offset`` is the segment's first global row; local kernel rows map
    to global rows by addition.  Segments never mutate after
    construction — extending an index appends *new* segments, so a query
    holding an older index object keeps scoring a consistent snapshot.
    """

    __slots__ = ("cols", "documents", "offset", "id")

    def __init__(self, documents: list[dict[str, Any]],
                 field_names: tuple[str, ...], offset: int) -> None:
        self.cols = ShardColumns(documents, field_names)
        self.documents = documents
        self.offset = offset
        self.id = next(_SEGMENT_IDS)

    @property
    def num_rows(self) -> int:
        return self.cols.num_rows


def _shard_sources(
        collection: Collection | ShardedCollection) -> list[Collection]:
    if isinstance(collection, ShardedCollection):
        return list(collection.shards)
    return [collection]


class ColumnarIndex:
    """Per-shard segment lists + the raw documents for page fetch.

    A fresh build is one tokenize/stem pass over the corpus — about the
    cost of a single scalar query — amortized across every query until
    the next docstore mutation moves the stamp.  Append-only motion is
    much cheaper: :meth:`extend` tokenizes only the new rows into delta
    segments (one per shard per extend) and shares the existing base
    arrays.  Index objects are immutable snapshots; extend/merge produce
    *new* objects, and the engines swap them in with a single atomic
    attribute assignment.
    """

    def __init__(self, stamp: Any, segments: list[list[Segment]],
                 field_names: tuple[str, ...],
                 key: str | None = None) -> None:
        self.stamp = stamp
        self.segments = segments
        self.field_names = field_names
        self.key = key or new_index_key()

    @classmethod
    def build(cls, collection: Collection | ShardedCollection,
              field_names: Iterable[str], stamp: Any,
              key: str | None = None) -> "ColumnarIndex":
        field_names = tuple(field_names)
        segments = [
            [Segment(source.find({}).to_list(), field_names, 0)]
            for source in _shard_sources(collection)
        ]
        return cls(stamp, segments, field_names, key=key)

    def extend(self, collection: Collection | ShardedCollection,
               stamp: Any) -> "ColumnarIndex":
        """A new index covering rows appended since this one was built.

        Only sound for append-only motion (the engine checks the stamp
        arithmetic before calling); shards whose row count did not move
        get no new segment.  The result shares this index's base/delta
        arrays and worker-cache key — ``self`` stays fully usable by
        queries already holding it.
        """
        sources = _shard_sources(collection)
        if len(sources) != len(self.segments):
            return type(self).build(collection, self.field_names, stamp,
                                    key=self.key)
        lists = []
        for shard_segments, source in zip(self.segments, sources):
            indexed = sum(seg.num_rows for seg in shard_segments)
            delta = source.find({}).to_list()[indexed:]
            if delta:
                shard_segments = shard_segments + [
                    Segment(delta, self.field_names, indexed)
                ]
            else:
                shard_segments = list(shard_segments)
            lists.append(shard_segments)
        return type(self)(stamp, lists, self.field_names, key=self.key)

    @property
    def num_rows(self) -> int:
        return sum(seg.num_rows
                   for shard in self.segments for seg in shard)

    @property
    def delta_segments(self) -> int:
        """Segments beyond each shard's base (the merge debt)."""
        return sum(max(0, len(shard) - 1) for shard in self.segments)

    @property
    def delta_rows(self) -> int:
        """Rows living outside the base segments."""
        return sum(seg.num_rows
                   for shard in self.segments for seg in shard[1:])

    def rank(self, spec: QuerySpec, top_k: int
             ) -> tuple[int, list[tuple[float, str, int, int]]]:
        """Scatter the kernel per segment; merge in exact page order.

        Returns ``(total_matches, merged)`` with merged entries
        ``(score, paper_id, shard, row)`` truncated to ``top_k`` —
        ``row`` is global (segment offset + local row), so the composite
        order is identical whether the rows live in one base segment or
        across deltas.  Thread tasks go through
        :func:`repro.docstore.executor.scatter`, so ambient
        ``FanoutBudget``s, quiescence-on-error, and fan-out observers
        behave exactly as on the scalar path; with
        ``REPRO_EXECUTOR_KIND=process`` each task round-trips its
        segment kernel through the process pool.
        """
        use_process = _executor.executor_kind() == "process"
        tasks = [
            (shard, position, segment)
            for shard, shard_segments in enumerate(self.segments)
            for position, segment in enumerate(shard_segments)
            if segment.num_rows
        ]

        def segment_task(shard: int, position: int, segment: Segment):
            if use_process:
                total, partial = _rank_via_process(
                    (self.key, (shard, position), segment.id),
                    segment.cols, spec, top_k,
                )
            else:
                total, partial = score_shard(segment.cols, spec, top_k)
            return total, [
                (score, paper_id, shard, segment.offset + row)
                for score, paper_id, row in partial
            ]

        partials = _executor.scatter([
            (lambda t=task: segment_task(*t)) for task in tasks
        ])
        total = sum(partial[0] for partial in partials)
        merged = [entry for partial in partials for entry in partial[1]]
        merged.sort(key=lambda entry: (-entry[0], entry[1], entry[2],
                                       entry[3]))
        return total, merged[:top_k]

    def _segment_for(self, shard: int, row: int) -> Segment:
        for segment in reversed(self.segments[shard]):
            if row >= segment.offset:
                return segment
        raise IndexError(f"row {row} not in shard {shard}")

    def fetch(self, entries: list[tuple[float, str, int, int]],
              projection: dict[str, int]) -> list[dict[str, Any]]:
        """Materialize page documents exactly like ``$project``+``$function``.

        ``apply_projection`` deep-copies the kept values, so returned
        pages never alias the index's snapshot.
        """
        page = []
        for score, _paper_id, shard, row in entries:
            segment = self._segment_for(shard, row)
            document = apply_projection(
                segment.documents[row - segment.offset], projection
            )
            deep_set(document, "score", score)
            page.append(document)
        return page


def stamp_for(collection: Collection | ShardedCollection,
              num_documents: int) -> tuple[int, int]:
    """The invalidation stamp: docstore version + model document count."""
    return (collection.version, num_documents)


def build_index(collection: Collection | ShardedCollection,
                field_names: Iterable[str], stamp: Any,
                key: str | None = None) -> ColumnarIndex:
    """Convenience wrapper (import surface for the engines)."""
    return ColumnarIndex.build(collection, field_names, stamp, key=key)

"""The ranking function behind all three search engines.

"The ranking is an accumulation of various weighted features per document,
such as the number of matches, proximity between the matched terms and
which field the term was matched in.  Each term in the corpus has an
associated TF-IDF weight in order to reward more important terms."

Score per document =

    sum over fields f:  field_weight(f) * sum over terms t: tfidf(t, f)
  + proximity_bonus  (1 / (min window covering all distinct terms), on the
                      best field; multi-term queries only)
  + static score     (publication-level features: recency, table count)

Instances are registered as ``$function`` stages so engines invoke them
from inside the aggregation pipeline exactly as the paper's custom
JavaScript functions do.
"""

from __future__ import annotations

from typing import Any

from repro.docstore.documents import deep_get
from repro.search.indexing import FIELD_WEIGHTS
from repro.search.query import ParsedQuery
from repro.text.stemmer import stem
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize

#: Weight of the proximity bonus relative to TF-IDF matter.
PROXIMITY_WEIGHT = 2.0
#: Weight of static (query-independent) document features.
STATIC_WEIGHT = 0.1


def min_window(positions_per_term: list[list[int]]) -> int | None:
    """Smallest token window covering one position of every term.

    Returns None when any term has no positions.
    """
    if not positions_per_term or any(not p for p in positions_per_term):
        return None
    if len(positions_per_term) == 1:
        return 1
    events = sorted(
        (position, term_index)
        for term_index, positions in enumerate(positions_per_term)
        for position in positions
    )
    counts = [0] * len(positions_per_term)
    covered = 0
    best: int | None = None
    left = 0
    for right, (right_pos, right_term) in enumerate(events):
        if counts[right_term] == 0:
            covered += 1
        counts[right_term] += 1
        while covered == len(counts):
            left_pos, left_term = events[left]
            window = right_pos - left_pos + 1
            if best is None or window < best:
                best = window
            counts[left_term] -= 1
            if counts[left_term] == 0:
                covered -= 1
            left += 1
    return best


class RankingFunction:
    """TF-IDF + proximity + field-weight + static-feature ranking.

    With a :class:`~repro.search.synonyms.SynonymExpander` attached, each
    query term also contributes down-weighted TF-IDF mass for its
    synonyms ("the ranking function incorporates matching terms and
    synonyms") — a document saying "immunization" gains score for the
    query "vaccine", below what a literal match earns.
    """

    def __init__(self, tfidf: TfIdfModel,
                 field_weights: dict[str, float] | None = None,
                 expander=None) -> None:
        self.tfidf = tfidf
        self.field_weights = dict(field_weights or FIELD_WEIGHTS)
        self.expander = expander

    # -- per-field machinery ------------------------------------------------

    def _term_positions(self, parsed: ParsedQuery,
                        tokens: list[str]) -> list[list[int]]:
        stemmed_tokens = [stem(token) for token in tokens]
        positions = []
        for term in parsed.terms:
            if term.exact:
                words = term.text.split()
                first = words[0].lower()
                hits = [
                    i for i, token in enumerate(tokens)
                    if token == first
                    and tokens[i:i + len(words)] == [
                        w.lower() for w in words
                    ]
                ]
            else:
                target = stem(term.text)
                hits = [
                    i for i, token_stem in enumerate(stemmed_tokens)
                    if token_stem == target
                ]
            positions.append(hits)
        return positions

    def field_score(self, parsed: ParsedQuery, text: str) -> float:
        """TF-IDF mass of the query terms inside one field's text.

        Quoted (exact) terms never expand to synonyms — the user asked
        for that literal phrase.
        """
        if not text:
            return 0.0
        stemmed_tokens = [stem(token) for token in tokenize(text)]
        score = 0.0
        for term in parsed.terms:
            for word in term.text.split():
                score += self.tfidf.tfidf(stem(word), stemmed_tokens)
            if self.expander is None or term.exact:
                continue
            for synonym, weight in self.expander.expand(term.text):
                for word in synonym.split():
                    score += weight * self.tfidf.tfidf(
                        stem(word), stemmed_tokens
                    )
        return score

    def proximity_bonus(self, parsed: ParsedQuery, text: str) -> float:
        """1/window bonus; 0 when not every term occurs in the text."""
        if len(parsed.terms) < 2 or not text:
            return 0.0
        tokens = tokenize(text)
        window = min_window(self._term_positions(parsed, tokens))
        if window is None:
            return 0.0
        return 1.0 / window

    def static_score(self, document: dict[str, Any]) -> float:
        """Query-independent document weight."""
        year = deep_get(document, "static_rank.year", 2020) or 2020
        num_tables = deep_get(document, "static_rank.num_tables", 0) or 0
        recency = max(0, int(year) - 2019)
        return recency + 0.5 * min(num_tables, 4)

    # -- document-level score -------------------------------------------------

    def score(self, parsed: ParsedQuery, document: dict[str, Any],
              fields: list[str] | None = None) -> float:
        """The full ranking score of ``document`` for ``parsed``."""
        fields = fields or list(self.field_weights)
        total = 0.0
        best_proximity = 0.0
        for field in fields:
            text = deep_get(document, field, "") or ""
            if isinstance(text, list):
                text = " ".join(str(part) for part in text)
            weight = self.field_weights.get(field, 1.0)
            total += weight * self.field_score(parsed, text)
            best_proximity = max(
                best_proximity, self.proximity_bonus(parsed, text)
            )
        total += PROXIMITY_WEIGHT * best_proximity
        total += STATIC_WEIGHT * self.static_score(document)
        return total

    def scorer(self, parsed: ParsedQuery,
               fields: list[str] | None = None):
        """A single-argument callable for ``$function`` registration."""
        def rank(document: dict[str, Any]) -> float:
            return self.score(parsed, document, fields)
        return rank

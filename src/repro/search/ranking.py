"""The ranking functions behind all three search engines.

"The ranking is an accumulation of various weighted features per document,
such as the number of matches, proximity between the matched terms and
which field the term was matched in.  Each term in the corpus has an
associated TF-IDF weight in order to reward more important terms."

Score per document =

    sum over fields f:  field_weight(f) * sum over terms t: word_score(t, f)
  + proximity_bonus  (1 / (min window covering all distinct terms), on the
                      best field; multi-term queries only)
  + static score     (publication-level features: recency, table count)

``word_score`` is pluggable: :class:`RankingFunction` uses the paper's
TF-IDF weighting, :class:`BM25RankingFunction` swaps in Okapi BM25 with
per-field length normalization (``CovidKGConfig.ranker = "bm25"``).  The
proximity and static terms are shared so the two rankers stay comparable.

Instances are registered as ``$function`` stages so engines invoke them
from inside the aggregation pipeline exactly as the paper's custom
JavaScript functions do.  ``scorer`` hoists every piece of query-side
state (term words, stems, IDFs, synonym expansions, per-field average
lengths) out of the per-document loop: the returned closure tokenizes and
stems each field exactly once per document and shares the token/stem
lists between TF counting and proximity-window extraction.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any

from repro.docstore.documents import deep_get
from repro.search.indexing import FIELD_WEIGHTS
from repro.search.query import ParsedQuery
from repro.text.stemmer import stem
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import tokenize

#: Weight of the proximity bonus relative to TF-IDF matter.
PROXIMITY_WEIGHT = 2.0
#: Weight of static (query-independent) document features.
STATIC_WEIGHT = 0.1

#: Okapi BM25 defaults (Robertson & Walker); tunable per system via
#: ``CovidKGConfig.bm25_k1`` / ``bm25_b``.
BM25_K1 = 1.5
BM25_B = 0.75


def min_window(positions_per_term: list[list[int]]) -> int | None:
    """Smallest token window covering one position of every term.

    Returns None when any term has no positions.
    """
    if not positions_per_term or any(not p for p in positions_per_term):
        return None
    if len(positions_per_term) == 1:
        return 1
    events = sorted(
        (position, term_index)
        for term_index, positions in enumerate(positions_per_term)
        for position in positions
    )
    counts = [0] * len(positions_per_term)
    covered = 0
    best: int | None = None
    left = 0
    for right, (right_pos, right_term) in enumerate(events):
        if counts[right_term] == 0:
            covered += 1
        counts[right_term] += 1
        while covered == len(counts):
            left_pos, left_term = events[left]
            window = right_pos - left_pos + 1
            if best is None or window < best:
                best = window
            counts[left_term] -= 1
            if counts[left_term] == 0:
                covered -= 1
            left += 1
    return best


def static_score(document: dict[str, Any]) -> float:
    """Query-independent document weight (recency + table richness).

    Module-level so the columnar index can precompute it per stored
    document with the exact arithmetic the scalar path uses.
    """
    year = deep_get(document, "static_rank.year", 2020) or 2020
    num_tables = deep_get(document, "static_rank.num_tables", 0) or 0
    recency = max(0, int(year) - 2019)
    return recency + 0.5 * min(num_tables, 4)


def bm25_idf(num_documents: int, document_frequency: int) -> float:
    """The non-negative ("plus one") BM25 IDF."""
    return math.log(
        1.0 + (num_documents - document_frequency + 0.5)
        / (document_frequency + 0.5)
    )


class FieldLengthStats:
    """Per-field token totals for BM25 average-length normalization.

    The owning engine observes every indexed document's per-field token
    count; ``average_length`` is then ``total_tokens / documents`` over
    the whole corpus (documents missing the field count as length 0,
    like any search over them would find).
    """

    __slots__ = ("_totals", "_documents")

    def __init__(self) -> None:
        self._totals: dict[str, int] = {}
        self._documents = 0

    def observe(self, field: str, num_tokens: int) -> None:
        self._totals[field] = self._totals.get(field, 0) + num_tokens

    def add_document(self) -> None:
        self._documents += 1

    @property
    def num_documents(self) -> int:
        return self._documents

    def average_length(self, field: str) -> float:
        if not self._documents:
            return 0.0
        return self._totals.get(field, 0) / self._documents


@dataclass(frozen=True)
class PlannedWord:
    """One scoring word with its query-time-constant state.

    ``weight`` is ``None`` for a literal query word and the synonym
    down-weight for an expansion.  ``idf`` is ``None`` only when the
    model has seen no documents — the per-document loop then defers to
    the model so an unfitted scorer still raises ``NotFittedError`` the
    moment a term actually occurs, exactly like the unhoisted code did.
    """

    stemmed: str
    idf: float | None
    weight: float | None = None


@dataclass(frozen=True)
class QueryPlan:
    """Everything about a query the per-document loop must not re-derive."""

    words: tuple[PlannedWord, ...]
    #: Per original term: ("loose", stem) or ("exact", lowercased words);
    #: ``None`` for single-term queries (no proximity bonus).
    proximity: tuple[tuple[str, Any], ...] | None


class RankingFunction:
    """TF-IDF + proximity + field-weight + static-feature ranking.

    With a :class:`~repro.search.synonyms.SynonymExpander` attached, each
    query term also contributes down-weighted TF-IDF mass for its
    synonyms ("the ranking function incorporates matching terms and
    synonyms") — a document saying "immunization" gains score for the
    query "vaccine", below what a literal match earns.
    """

    def __init__(self, tfidf: TfIdfModel,
                 field_weights: dict[str, float] | None = None,
                 expander=None) -> None:
        self.tfidf = tfidf
        self.field_weights = dict(field_weights or FIELD_WEIGHTS)
        self.expander = expander

    # -- per-field machinery ------------------------------------------------

    def _term_positions(self, parsed: ParsedQuery,
                        tokens: list[str]) -> list[list[int]]:
        stemmed_tokens = [stem(token) for token in tokens]
        return self._planned_positions(
            self._proximity_plan(parsed), tokens, stemmed_tokens
        )

    @staticmethod
    def _proximity_plan(parsed: ParsedQuery
                        ) -> tuple[tuple[str, Any], ...]:
        plan = []
        for term in parsed.terms:
            if term.exact:
                plan.append(
                    ("exact", tuple(w.lower() for w in term.text.split()))
                )
            else:
                plan.append(("loose", stem(term.text)))
        return tuple(plan)

    @staticmethod
    def _planned_positions(proximity: tuple[tuple[str, Any], ...],
                           tokens: list[str],
                           stemmed_tokens: list[str]) -> list[list[int]]:
        positions = []
        for kind, target in proximity:
            if kind == "exact":
                words = list(target)
                first = words[0] if words else ""
                hits = [
                    i for i, token in enumerate(tokens)
                    if token == first
                    and tokens[i:i + len(words)] == words
                ]
            else:
                hits = [
                    i for i, token_stem in enumerate(stemmed_tokens)
                    if token_stem == target
                ]
            positions.append(hits)
        return positions

    def field_score(self, parsed: ParsedQuery, text: str) -> float:
        """TF-IDF mass of the query terms inside one field's text.

        Quoted (exact) terms never expand to synonyms — the user asked
        for that literal phrase.  (Reference implementation; the hot
        path runs the hoisted closure from :meth:`scorer`.)
        """
        if not text:
            return 0.0
        stemmed_tokens = [stem(token) for token in tokenize(text)]
        score = 0.0
        for term in parsed.terms:
            for word in term.text.split():
                score += self.tfidf.tfidf(stem(word), stemmed_tokens)
            if self.expander is None or term.exact:
                continue
            for synonym, weight in self.expander.expand(term.text):
                for word in synonym.split():
                    score += weight * self.tfidf.tfidf(
                        stem(word), stemmed_tokens
                    )
        return score

    def proximity_bonus(self, parsed: ParsedQuery, text: str) -> float:
        """1/window bonus; 0 when not every term occurs in the text."""
        if len(parsed.terms) < 2 or not text:
            return 0.0
        tokens = tokenize(text)
        window = min_window(self._term_positions(parsed, tokens))
        if window is None:
            return 0.0
        return 1.0 / window

    def static_score(self, document: dict[str, Any]) -> float:
        """Query-independent document weight."""
        return static_score(document)

    # -- query-time planning ------------------------------------------------

    def _word_idf(self, stemmed: str) -> float | None:
        if self.tfidf.num_documents == 0:
            return None
        return self.tfidf.idf(stemmed)

    def query_plan(self, parsed: ParsedQuery) -> QueryPlan:
        """Hoist term/stem/IDF/synonym state out of the document loop."""
        words: list[PlannedWord] = []
        for term in parsed.terms:
            for word in term.text.split():
                stemmed = stem(word)
                words.append(PlannedWord(stemmed, self._word_idf(stemmed)))
            if self.expander is None or term.exact:
                continue
            for synonym, weight in self.expander.expand(term.text):
                for word in synonym.split():
                    stemmed = stem(word)
                    words.append(PlannedWord(
                        stemmed, self._word_idf(stemmed), weight
                    ))
        proximity = (
            self._proximity_plan(parsed) if len(parsed.terms) >= 2 else None
        )
        return QueryPlan(words=tuple(words), proximity=proximity)

    def _field_norm(self, field: str) -> float:
        """Per-field normalizer (BM25 average length; unused by TF-IDF)."""
        return 1.0

    def _word_score(self, tf: int, dl: int, avgdl: float,
                    planned: PlannedWord) -> float:
        """Score of one query word with term frequency ``tf > 0``."""
        idf = planned.idf
        if idf is None:  # unfitted model: preserve NotFittedError
            idf = self.tfidf.idf(planned.stemmed)
        return (1.0 + math.log(tf)) * idf

    # -- document-level score -----------------------------------------------

    def score(self, parsed: ParsedQuery, document: dict[str, Any],
              fields: list[str] | None = None) -> float:
        """The full ranking score of ``document`` for ``parsed``."""
        return self.scorer(parsed, fields)(document)

    def scorer(self, parsed: ParsedQuery,
               fields: list[str] | None = None):
        """A single-argument callable for ``$function`` registration.

        All query-side state is computed here, once; the closure only
        does per-document work (one tokenize + one stem pass per field,
        shared between TF counting and proximity extraction).
        """
        field_names = list(fields or self.field_weights)
        field_plan = [
            (name, self.field_weights.get(name, 1.0),
             self._field_norm(name))
            for name in field_names
        ]
        plan = self.query_plan(parsed)

        def rank(document: dict[str, Any]) -> float:
            total = 0.0
            best_proximity = 0.0
            for field_name, weight, avgdl in field_plan:
                text = deep_get(document, field_name, "") or ""
                if isinstance(text, list):
                    text = " ".join(str(part) for part in text)
                if not text:
                    continue
                tokens = tokenize(text)
                stemmed_tokens = [stem(token) for token in tokens]
                counts = Counter(stemmed_tokens)
                dl = len(tokens)
                field_total = 0.0
                for planned in plan.words:
                    tf = counts.get(planned.stemmed, 0)
                    if not tf:
                        continue
                    value = self._word_score(tf, dl, avgdl, planned)
                    if planned.weight is not None:
                        value = planned.weight * value
                    field_total += value
                total += weight * field_total
                if plan.proximity is not None:
                    window = min_window(self._planned_positions(
                        plan.proximity, tokens, stemmed_tokens
                    ))
                    if window is not None:
                        best_proximity = max(best_proximity, 1.0 / window)
            total += PROXIMITY_WEIGHT * best_proximity
            total += STATIC_WEIGHT * static_score(document)
            return total

        return rank


class BM25RankingFunction(RankingFunction):
    """Okapi BM25 word scoring under the shared ranking skeleton.

    Replaces the TF-IDF word score with

        idf * (tf * (k1 + 1)) / (tf + k1 * (1 - b + b * dl / avgdl))

    where ``idf = log(1 + (N - df + 0.5) / (df + 0.5))`` and ``avgdl``
    is the corpus-average token length of the field being scored (from
    ``stats``; without stats the normalizer degrades to ``avgdl = 1``).
    Field weights, synonym expansion, the proximity bonus, and the
    static score are inherited unchanged so ``ranker="tfidf"`` and
    ``ranker="bm25"`` rank over identical feature sets.
    """

    def __init__(self, tfidf: TfIdfModel,
                 field_weights: dict[str, float] | None = None,
                 expander=None,
                 stats: FieldLengthStats | None = None,
                 k1: float = BM25_K1, b: float = BM25_B) -> None:
        super().__init__(tfidf, field_weights, expander)
        self.stats = stats
        self.k1 = float(k1)
        self.b = float(b)

    def _word_idf(self, stemmed: str) -> float | None:
        if self.tfidf.num_documents == 0:
            return None
        return bm25_idf(self.tfidf.num_documents,
                        self.tfidf.document_frequency(stemmed))

    def _field_norm(self, field: str) -> float:
        if self.stats is None:
            return 1.0
        return self.stats.average_length(field)

    def _word_score(self, tf: int, dl: int, avgdl: float,
                    planned: PlannedWord) -> float:
        idf = planned.idf
        if idf is None:  # unfitted model: preserve NotFittedError
            self.tfidf.idf(planned.stemmed)
            idf = 0.0
        norm = self.k1 * (1.0 - self.b + self.b * (dl / avgdl))
        return idf * (tf * (self.k1 + 1.0)) / (tf + norm)

"""Runtime lock-order and fan-out race checking.

Drop-in instrumented ``Lock`` / ``RLock`` / ``Condition`` wrappers.  The
serve/docstore modules create their locks through the factory functions
here (:func:`make_lock`, :func:`make_rlock`, :func:`make_condition`):
with checking disabled (the default) the factories return the plain
``threading`` primitives — zero overhead; with ``REPRO_RACECHECK=1``
(or :func:`enable`) they return tracked wrappers that record, per
thread, the acquisition order of every lock into one global
**lock-order graph**.

What the report flags:

* **cycles** — lock A taken while holding B somewhere, and B taken
  while holding A somewhere else: a potential deadlock even if the two
  paths have never yet interleaved;
* **violations** — hazards observed directly: an executor fan-out
  (``scatter``/``scatter_first``) started while the calling thread
  holds a tracked lock (blocks every other thread for the whole
  scatter, and can deadlock the bounded pool), or a non-reentrant lock
  re-acquired by its owning thread (self-deadlock).

Wire-up: ``tests/conftest.py`` asserts a clean report at session end,
so running the existing serve/docstore stress tests with
``REPRO_RACECHECK=1`` doubles as a race test suite.

This module must stay dependency-free (stdlib only): the docstore
imports it at startup.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

#: Environment flag turning instrumentation on at lock-construction time.
ENV_FLAG = "REPRO_RACECHECK"

#: Guards the global graph/violation state.  A *plain* lock on purpose:
#: the checker must never trace itself.
_state_lock = threading.Lock()

_enabled_override: bool | None = None
_edges: dict[tuple[str, str], str] = {}
_violations: list[dict[str, Any]] = []
_acquisitions: dict[str, int] = {}

_held = threading.local()


def enabled() -> bool:
    """True when lock instrumentation is on (env flag or programmatic)."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ENV_FLAG, "") == "1"


def enable() -> None:
    """Turn checking on for locks created from now on (tests)."""
    global _enabled_override
    _enabled_override = True


def disable() -> None:
    global _enabled_override
    _enabled_override = False


def reset() -> None:
    """Clear the recorded graph and violations (not the enabled state)."""
    with _state_lock:
        _edges.clear()
        _violations.clear()
        _acquisitions.clear()


def _stack_summary(skip: int = 3, limit: int = 6) -> str:
    frames = traceback.format_stack()[:-skip]
    return "".join(frames[-limit:])


def _held_stack() -> list["_TrackedBase"]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


# -- tracked primitives ----------------------------------------------------

class _TrackedBase:
    """Shared acquire/release bookkeeping for every tracked primitive."""

    reentrant = False

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    # The wrapper records the would-be edge *before* blocking on the
    # underlying primitive, so a real deadlock still leaves the cycle
    # in the graph for a post-mortem report.
    def _before_acquire(self) -> None:
        stack = _held_stack()
        if any(entry is self for entry in stack):
            if not self.reentrant:
                with _state_lock:
                    _violations.append({
                        "kind": "self_deadlock",
                        "lock": self.name,
                        "stack": _stack_summary(),
                    })
            return
        held_names = {entry.name for entry in stack
                      if entry.name != self.name}
        if held_names:
            with _state_lock:
                for held_name in held_names:
                    _edges.setdefault(
                        (held_name, self.name), _stack_summary()
                    )

    def _after_acquire(self) -> None:
        _held_stack().append(self)
        with _state_lock:
            _acquisitions[self.name] = \
                _acquisitions.get(self.name, 0) + 1

    def _after_release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._before_acquire()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._after_acquire()
        return acquired

    def release(self) -> None:
        self._after_release()
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class TrackedLock(_TrackedBase):
    """Instrumented non-reentrant mutex."""

    def __init__(self, name: str) -> None:
        super().__init__(threading.Lock(), name)

    def locked(self) -> bool:
        return self._inner.locked()


class TrackedRLock(_TrackedBase):
    """Instrumented reentrant mutex (re-entry records no edges)."""

    reentrant = True

    def __init__(self, name: str) -> None:
        super().__init__(threading.RLock(), name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._before_acquire()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._after_acquire()
        return acquired


class TrackedCondition(_TrackedBase):
    """Instrumented condition variable.

    ``wait()`` releases the underlying lock, so the held-stack entry is
    popped for the duration of the wait and re-pushed after wake-up —
    otherwise every waiter would look like it deadlocks with the
    notifier.
    """

    reentrant = True

    def __init__(self, name: str) -> None:
        super().__init__(threading.Condition(), name)

    def wait(self, timeout: float | None = None) -> bool:
        self._after_release()
        try:
            return self._inner.wait(timeout)
        finally:
            self._after_acquire()

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float | None = None) -> bool:
        self._after_release()
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._after_acquire()

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


# -- factories (what the serve/docstore modules call) ----------------------

def make_lock(name: str) -> "TrackedLock | threading.Lock":
    """A mutex: tracked when race checking is enabled, plain otherwise."""
    if enabled():
        return TrackedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> "TrackedRLock | threading.RLock":
    if enabled():
        return TrackedRLock(name)
    return threading.RLock()


def make_condition(name: str) -> "TrackedCondition | threading.Condition":
    if enabled():
        return TrackedCondition(name)
    return threading.Condition()


# -- fan-out hook (called by repro.docstore.executor) ----------------------

def note_fanout(description: str = "scatter") -> None:
    """Record a fan-out started while the caller holds tracked locks.

    Holding a lock across a multi-shard fan-out blocks every other
    thread for the whole scatter and, on the bounded pool, can deadlock
    when a worker needs that same lock.  The executor calls this on
    entry to ``scatter``/``scatter_first`` when checking is enabled.
    """
    held = [entry.name for entry in _held_stack()]
    if not held:
        return
    with _state_lock:
        _violations.append({
            "kind": "fanout_while_locked",
            "locks": held,
            "description": description,
            "stack": _stack_summary(),
        })


# -- reporting -------------------------------------------------------------

@dataclass
class RaceCheckReport:
    """Everything the checker observed since the last reset."""

    edges: dict[tuple[str, str], str] = field(default_factory=dict)
    cycles: list[list[str]] = field(default_factory=list)
    violations: list[dict[str, Any]] = field(default_factory=list)
    acquisitions: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.cycles and not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "clean": self.clean,
            "edges": [
                {"from": a, "to": b} for (a, b) in sorted(self.edges)
            ],
            "cycles": self.cycles,
            "violations": self.violations,
            "acquisitions": dict(sorted(self.acquisitions.items())),
        }

    def summary(self) -> str:
        lines = [
            f"racecheck: {len(self.acquisitions)} lock(s), "
            f"{len(self.edges)} order edge(s), "
            f"{len(self.cycles)} cycle(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for cycle in self.cycles:
            lines.append("  potential deadlock: " + " -> ".join(
                cycle + [cycle[0]]
            ))
        for violation in self.violations:
            if violation["kind"] == "fanout_while_locked":
                lines.append(
                    "  fan-out while holding "
                    + ", ".join(violation["locks"])
                )
            else:
                lines.append(
                    f"  {violation['kind']}: {violation.get('lock', '?')}"
                )
        return "\n".join(lines)


def find_cycles(edges: set[tuple[str, str]]) -> list[list[str]]:
    """Distinct elementary cycles in the lock-order graph (DFS).

    Public because the static analyzer (REP209) runs the same cycle
    detector over its compile-time lock-order edges — one algorithm,
    two graphs, directly comparable output.
    """
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
    cycles: list[list[str]] = []
    seen_sets: set[frozenset[str]] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        for successor in graph.get(node, ()):
            if successor in on_path:
                start = path.index(successor)
                cycle = path[start:]
                marker = frozenset(cycle)
                if marker not in seen_sets:
                    seen_sets.add(marker)
                    cycles.append(cycle)
                continue
            path.append(successor)
            on_path.add(successor)
            dfs(successor, path, on_path)
            on_path.discard(successor)
            path.pop()

    for start in sorted(graph):
        dfs(start, [start], {start})
    return cycles


def report() -> RaceCheckReport:
    """Snapshot the graph, detect cycles, and return the full report."""
    with _state_lock:
        edges = dict(_edges)
        violations = list(_violations)
        acquisitions = dict(_acquisitions)
    return RaceCheckReport(
        edges=edges,
        cycles=find_cycles(set(edges)),
        violations=violations,
        acquisitions=acquisitions,
    )

"""``repro.analysis`` — static analysis and runtime race checking.

Three correctness tools for the concurrent serving/docstore tiers:

* :mod:`repro.analysis.lint` — a visitor-based AST lint framework with
  repo-specific concurrency rules (unguarded shared state, blocking
  calls under locks, nested fan-out, nondeterministic rank functions)
  plus generic hygiene rules, a suppression comment syntax, and a
  checked-in baseline so CI fails only on *new* findings.
* :mod:`repro.analysis.racecheck` — instrumented drop-in ``Lock`` /
  ``RLock`` / ``Condition`` wrappers (enabled via ``REPRO_RACECHECK=1``)
  that build a global lock-order graph, report cycles (potential
  deadlocks), and flag executor fan-outs performed while holding a lock.
* :mod:`repro.analysis.pipeline_check` — a pre-flight validator for
  aggregation pipelines: stage names, expression operators, ``$function``
  resolution against the registry, shape errors, and perf warnings —
  so malformed requests fail fast instead of mid-scatter.

The package ``__init__`` is deliberately lazy: the docstore/serve
modules import :mod:`repro.analysis.racecheck` at startup, and that
must not drag the AST tooling (or anything heavier) into every process.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "Finding",
    "PipelineIssue",
    "PipelineValidationError",
    "default_rules",
    "lint_paths",
    "validate_pipeline",
    "ensure_valid_pipeline",
]

_LAZY = {
    "Finding": ("repro.analysis.lint", "Finding"),
    "lint_paths": ("repro.analysis.lint", "lint_paths"),
    "default_rules": ("repro.analysis.rules", "default_rules"),
    "PipelineIssue": ("repro.analysis.pipeline_check", "PipelineIssue"),
    "PipelineValidationError": (
        "repro.analysis.pipeline_check", "PipelineValidationError"
    ),
    "validate_pipeline": (
        "repro.analysis.pipeline_check", "validate_pipeline"
    ),
    "ensure_valid_pipeline": (
        "repro.analysis.pipeline_check", "ensure_valid_pipeline"
    ),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)

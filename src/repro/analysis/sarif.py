"""SARIF 2.1.0 output for the analyzer, plus a structural validator.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest: one ``run`` with a ``tool.driver`` describing the rules and
a ``results`` array locating each finding.  The emitter here covers the
subset those UIs actually read — rule metadata with default levels,
result locations with region + snippet, and ``%SRCROOT%``-relative URIs
so the same file works from any checkout directory.

``validate_sarif`` is a dependency-free structural check of the SARIF
2.1.0 schema constraints this emitter can violate (required properties,
enum values, types).  CI runs it on every emitted file; it is not a
general-purpose schema engine, but any document it accepts is also
accepted by the official schema for the features used here.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.analysis.lint import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_descriptor(rule_id: str, severity: str,
                     description: str) -> dict[str, Any]:
    descriptor: dict[str, Any] = {
        "id": rule_id,
        "defaultConfiguration": {
            "level": _LEVELS.get(severity, "warning"),
        },
    }
    if description:
        descriptor["shortDescription"] = {"text": description}
    return descriptor


def to_sarif(findings: Sequence[Finding],
             rule_metadata: Iterable[tuple[str, str, str]] = (),
             tool_version: str = "0") -> dict[str, Any]:
    """A SARIF 2.1.0 document for ``findings``.

    ``rule_metadata`` is ``(rule_id, severity, description)`` triples
    for the full rule set, so the driver advertises every rule — not
    just the ones that fired — and UIs can render the catalog.
    """
    rules: dict[str, dict[str, Any]] = {}
    for rule_id, severity, description in rule_metadata:
        rules[rule_id] = _rule_descriptor(rule_id, severity,
                                          description)
    for finding in findings:
        rules.setdefault(finding.rule, _rule_descriptor(
            finding.rule, finding.severity, ""))
    rule_index = {rule_id: position
                  for position, rule_id in enumerate(rules)}

    results = []
    for finding in findings:
        region: dict[str, Any] = {"startLine": max(1, finding.line)}
        if finding.snippet:
            region["snippet"] = {"text": finding.snippet}
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": region,
                },
            }],
        })

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "informationUri":
                        "https://github.com/covidkg/repro",
                    "version": tool_version,
                    "rules": list(rules.values()),
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///%SRCROOT%/"},
            },
            "results": results,
        }],
    }


def dump_sarif(findings: Sequence[Finding],
               rule_metadata: Iterable[tuple[str, str, str]] = (),
               tool_version: str = "0") -> str:
    return json.dumps(
        to_sarif(findings, rule_metadata, tool_version), indent=2,
    ) + "\n"


# -- structural validation -------------------------------------------------

_RESULT_LEVELS = frozenset({"none", "note", "warning", "error"})


def validate_sarif(document: Any) -> list[str]:
    """Violations of the SARIF 2.1.0 structure; empty means valid.

    Checks the required-property/type/enum constraints from the
    official schema for every construct :func:`to_sarif` emits.
    """
    problems: list[str] = []

    def need(obj: Any, key: str, kind: type, where: str) -> Any:
        if not isinstance(obj, dict):
            problems.append(f"{where}: expected object")
            return None
        if key not in obj:
            problems.append(f"{where}: missing required '{key}'")
            return None
        if not isinstance(obj[key], kind):
            problems.append(
                f"{where}.{key}: expected {kind.__name__}, got "
                f"{type(obj[key]).__name__}")
            return None
        return obj[key]

    version = need(document, "version", str, "sarifLog")
    if version is not None and version != SARIF_VERSION:
        problems.append(
            f"sarifLog.version: must be '{SARIF_VERSION}', got "
            f"'{version}'")
    runs = need(document, "runs", list, "sarifLog")
    if runs is None:
        return problems
    for run_no, run in enumerate(runs):
        where = f"runs[{run_no}]"
        tool = need(run, "tool", dict, where)
        if tool is not None:
            driver = need(tool, "driver", dict, f"{where}.tool")
            if driver is not None:
                need(driver, "name", str, f"{where}.tool.driver")
                for rule_no, rule in enumerate(
                        driver.get("rules", [])):
                    need(rule, "id", str,
                         f"{where}.tool.driver.rules[{rule_no}]")
        results = run.get("results", []) if isinstance(run, dict) \
            else []
        if not isinstance(results, list):
            problems.append(f"{where}.results: expected array")
            continue
        for result_no, result in enumerate(results):
            rwhere = f"{where}.results[{result_no}]"
            message = need(result, "message", dict, rwhere)
            if message is not None:
                need(message, "text", str, f"{rwhere}.message")
            if isinstance(result, dict):
                level = result.get("level")
                if level is not None and level not in _RESULT_LEVELS:
                    problems.append(
                        f"{rwhere}.level: '{level}' not one of "
                        f"{sorted(_RESULT_LEVELS)}")
                for loc_no, location in enumerate(
                        result.get("locations", [])):
                    lwhere = f"{rwhere}.locations[{loc_no}]"
                    physical = location.get("physicalLocation") \
                        if isinstance(location, dict) else None
                    if physical is None:
                        continue
                    artifact = physical.get("artifactLocation")
                    if artifact is not None:
                        need(artifact, "uri", str,
                             f"{lwhere}.physicalLocation"
                             f".artifactLocation")
                    region = physical.get("region")
                    if isinstance(region, dict):
                        start = region.get("startLine")
                        if start is not None and (
                                not isinstance(start, int) or
                                start < 1):
                            problems.append(
                                f"{lwhere}.physicalLocation.region"
                                f".startLine: must be a positive "
                                f"integer")
    return problems

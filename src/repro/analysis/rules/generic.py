"""Generic hygiene rules (not concurrency-specific)."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, LintRule, Source


class MutableDefaultArg(LintRule):
    """REP101: ``def f(x=[])`` — the default is shared across calls."""

    rule_id = "REP101"
    severity = "warning"
    description = (
        "a mutable default argument is created once and shared by every "
        "call; use None and construct inside the body"
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                                "Counter", "OrderedDict"})

    def _is_mutable(self, default: ast.expr | None) -> bool:
        if default is None:
            return False
        if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(default, ast.Call):
            name = default.func.id if isinstance(default.func, ast.Name) \
                else getattr(default.func, "attr", "")
            return name in self._MUTABLE_CALLS
        return False

    def check(self, source: Source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        source, default,
                        f"mutable default argument in {name}()",
                    )


class BareExcept(LintRule):
    """REP102: ``except:`` catches SystemExit/KeyboardInterrupt too."""

    rule_id = "REP102"
    severity = "warning"
    description = (
        "a bare except swallows KeyboardInterrupt and SystemExit; catch "
        "Exception (or something narrower) instead"
    )

    def check(self, source: Source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    source, node, "bare except clause",
                )


class SwallowedAggregationError(LintRule):
    """REP103: ``except AggregationError: pass`` hides pipeline bugs."""

    rule_id = "REP103"
    severity = "warning"
    description = (
        "an AggregationError caught and discarded hides malformed "
        "pipelines; handle it, log it, or let it propagate"
    )

    @staticmethod
    def _catches_aggregation_error(handler: ast.ExceptHandler) -> bool:
        exc_types = []
        if isinstance(handler.type, ast.Tuple):
            exc_types = list(handler.type.elts)
        elif handler.type is not None:
            exc_types = [handler.type]
        for exc_type in exc_types:
            name = exc_type.id if isinstance(exc_type, ast.Name) else \
                getattr(exc_type, "attr", None)
            if name == "AggregationError":
                return True
        return False

    @staticmethod
    def _is_noop_body(body: list[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, (ast.Pass, ast.Continue)):
                continue
            if isinstance(statement, ast.Expr) and \
                    isinstance(statement.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    def check(self, source: Source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and \
                    self._catches_aggregation_error(node) and \
                    self._is_noop_body(node.body):
                yield self.finding(
                    source, node,
                    "AggregationError caught and silently discarded",
                )

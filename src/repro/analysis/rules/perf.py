"""Performance lint rules.

REP207 guards the search hot path: ranking work must run on the
columnar kernels (:mod:`repro.search.columnar`), not as per-document
Python loops.  The rule is deliberately path-restricted — a ``for``
loop that scores documents one at a time is idiomatic everywhere else
in the repo (ingest, KG fusion, tests); it is only a regression inside
``repro/search`` where the batch path exists.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.lint import Finding, LintRule, Source

#: Function (or closure) names that mark a scoring/ranking hot path.
_HOT_FUNC_RE = re.compile(r"(^|_)(score|scorer|rank|ranking)")

#: Callable names whose presence inside a loop body marks the loop as
#: doing per-document scoring work rather than bookkeeping.
_SCORING_CALL_RE = re.compile(
    r"(^|_)(score|rank|idf|tokenize|stem|min_window|positions)"
)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class PerDocumentScoringLoop(LintRule):
    """REP207: per-document Python scoring loop in a search hot path.

    Flags ``for`` loops inside scoring/ranking functions under
    ``repro/search`` whose body calls scoring work per iteration.
    Reference implementations kept for the differential tests carry a
    ``# lint: allow=REP207`` escape (or live in the checked-in
    baseline); new per-document loops must use the columnar kernels.
    """

    rule_id = "REP207"
    severity = "warning"
    description = (
        "per-document Python scoring loop in a repro/search hot path; "
        "use the columnar kernels (repro.search.columnar) or add "
        "'# lint: allow=REP207' for a deliberate reference path"
    )

    def __init__(self, restrict_to: str = "repro/search") -> None:
        self.restrict_to = restrict_to

    def _scoring_calls(self, loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and \
                    _SCORING_CALL_RE.search(_call_name(node)):
                return True
        return False

    def check(self, source: Source) -> Iterator[Finding]:
        path = source.path.replace("\\", "/")
        if self.restrict_to and self.restrict_to not in path:
            return
        flagged: set[int] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not _HOT_FUNC_RE.search(node.name):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.For) and \
                        inner.lineno not in flagged and \
                        self._scoring_calls(inner):
                    flagged.add(inner.lineno)
                    yield self.finding(
                        source, inner,
                        f"per-document scoring loop in {node.name}(); "
                        "hot-path ranking belongs on the columnar "
                        "kernels",
                    )

"""Concurrency lint rules tuned to this repo's serving/docstore tiers.

All four rules reason about the same two primitives the codebase builds
on: mutual exclusion via ``with <lock>:`` blocks, and shard fan-out via
:func:`repro.docstore.executor.scatter` / ``scatter_first``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import Finding, LintRule, Source

#: A `with` context expression counts as a lock guard when its terminal
#: name looks like a mutex (``self._lock``, ``ObjectId._lock``,
#: ``self._condition``, a bare module-level ``_lock`` ...).
_LOCKISH = ("lock", "condition", "mutex")

#: Method calls that mutate their receiver (so ``self._entries.pop(...)``
#: counts as a *write* to ``self._entries``).
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "move_to_end", "sort",
    "reverse",
})

#: Methods where lock-free initialization of shared attributes is fine.
_SETUP_METHODS = frozenset({
    "__init__", "__new__", "__post_init__", "__del__", "__enter__",
    "__exit__",
})

_FANOUT_CALLS = frozenset({"scatter", "scatter_first"})


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_lock_guard(expr: ast.expr) -> bool:
    name = _terminal_name(expr)
    if name is None:
        return False
    lowered = name.lower()
    return any(token in lowered for token in _LOCKISH)


def _lock_guard_name(with_node: ast.With) -> str | None:
    for item in with_node.items:
        if _is_lock_guard(item.context_expr):
            return _terminal_name(item.context_expr)
    return None


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Access:
    """One read or write of a shared name inside a function."""

    __slots__ = ("name", "function", "lineno", "is_write", "under_lock")

    def __init__(self, name: str, function: str, lineno: int,
                 is_write: bool, under_lock: bool) -> None:
        self.name = name
        self.function = function
        self.lineno = lineno
        self.is_write = is_write
        self.under_lock = under_lock


def _first_level_attr(node: ast.Attribute, owner: str) -> str | None:
    """The ``X`` in ``<owner>.X[.anything]``; None for other receivers."""
    chain = _attr_chain(node)
    if len(chain) >= 2 and chain[0] == owner:
        return chain[1]
    return None


class _AccessCollector(ast.NodeVisitor):
    """Record shared-state accesses within one function body.

    ``owner`` selects what counts as shared state: a method's ``self``
    argument name (attribute accesses ``self.X``), or ``None`` for
    module-level functions (accesses to module globals from ``names``).
    """

    def __init__(self, function_name: str, owner: str | None,
                 names: frozenset[str]) -> None:
        self.function = function_name
        self.owner = owner
        self.names = names
        self.lock_depth = 0
        self.accesses: list[_Access] = []

    # -- helpers ----------------------------------------------------------

    def _record(self, name: str | None, lineno: int,
                is_write: bool) -> None:
        if name is None or name not in self.names:
            return
        lowered = name.lower()
        if any(token in lowered for token in _LOCKISH):
            return
        self.accesses.append(_Access(
            name, self.function, lineno, is_write, self.lock_depth > 0,
        ))

    def _target_name(self, node: ast.expr) -> tuple[str | None, int]:
        """The shared name a store/delete target touches, with its line."""
        while isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Attribute):
            if self.owner is not None:
                return _first_level_attr(node, self.owner), node.lineno
            return None, node.lineno
        if isinstance(node, ast.Name) and self.owner is None:
            return node.id, node.lineno
        return None, getattr(node, "lineno", 0)

    def _record_store_targets(self, targets: list[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._record_store_targets(list(target.elts))
                continue
            name, lineno = self._target_name(target)
            self._record(name, lineno, is_write=True)

    # -- visitors ---------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        guarded = any(
            _is_lock_guard(item.context_expr) for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if guarded:
            self.lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if guarded:
            self.lock_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_store_targets(node.targets)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name, lineno = self._target_name(node.target)
        self._record(name, lineno, is_write=True)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store_targets([node.target])
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_store_targets(node.targets)

    def visit_Call(self, node: ast.Call) -> None:
        # Mutating method calls are writes to the receiver.
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _MUTATING_METHODS:
            name, lineno = self._target_name(func.value)
            self._record(name, lineno, is_write=True)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.owner is not None and isinstance(node.ctx, ast.Load):
            self._record(
                _first_level_attr(node, self.owner), node.lineno,
                is_write=False,
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self.owner is None and isinstance(node.ctx, ast.Load):
            self._record(node.id, node.lineno, is_write=False)

    # Nested defs share the enclosing function's lock context only when
    # they run inline; treat them as part of the same function (closures
    # passed to scatter() are covered by the nested-fan-out rule).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for statement in node.body:
            self.visit(statement)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


class UnguardedSharedState(LintRule):
    """REP201: state locked in one method, touched lock-free in another."""

    rule_id = "REP201"
    severity = "error"
    description = (
        "an attribute (or module global) written under a lock in one "
        "function is read or written without the lock in another"
    )

    def check(self, source: Source) -> Iterator[Finding]:
        for scope in self._scopes(source.tree):
            yield from self._check_scope(source, *scope)

    def _scopes(self, tree: ast.Module):
        # Classes: shared state is `self.X`.
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                methods = [
                    child for child in node.body
                    if isinstance(child, ast.FunctionDef)
                ]
                yield node.name, methods, self._self_name, None
        # Module level: shared state is assigned module globals.
        functions = [
            child for child in tree.body
            if isinstance(child, ast.FunctionDef)
        ]
        module_names = frozenset(
            target.id
            for child in tree.body
            if isinstance(child, (ast.Assign, ast.AnnAssign))
            for target in (
                child.targets if isinstance(child, ast.Assign)
                else [child.target]
            )
            if isinstance(target, ast.Name)
        )
        yield "<module>", functions, lambda method: None, module_names

    @staticmethod
    def _self_name(method: ast.FunctionDef) -> str | None:
        for decorator in method.decorator_list:
            if isinstance(decorator, ast.Name) and \
                    decorator.id in ("staticmethod", "classmethod"):
                return None
        if method.args.args:
            return method.args.args[0].arg
        return None

    def _check_scope(self, source: Source, scope_name: str,
                     functions: list[ast.FunctionDef], owner_of,
                     module_names: frozenset[str] | None
                     ) -> Iterator[Finding]:
        accesses: list[_Access] = []
        for function in functions:
            owner = owner_of(function)
            if module_names is None and owner is None:
                continue  # static method: no shared `self` state
            collector = _AccessCollector(
                function.name, owner,
                module_names if module_names is not None else _AnyName(),
            )
            for statement in function.body:
                collector.visit(statement)
            accesses.extend(collector.accesses)

        guarded = {
            access.name for access in accesses
            if access.is_write and access.under_lock
        }
        if not guarded:
            return
        seen: set[tuple[str, str]] = set()
        for access in accesses:
            if access.name not in guarded or access.under_lock:
                continue
            if access.function in _SETUP_METHODS:
                continue
            marker = (access.function, access.name)
            if marker in seen:
                continue
            seen.add(marker)
            kind = "written" if access.is_write else "read"
            yield self.finding(
                source, access.lineno,
                f"{scope_name}.{access.name} is guarded by a lock "
                f"elsewhere but {kind} lock-free in "
                f"{access.function}()",
            )


class _AnyName:
    """A name universe that contains every string (for `self.X` scopes)."""

    def __contains__(self, name: object) -> bool:
        return True


class BlockingCallUnderLock(LintRule):
    """REP202: sleeping / joining / I/O while holding a lock."""

    rule_id = "REP202"
    severity = "error"
    description = (
        "a blocking call (sleep, Future.result, executor submit/"
        "shutdown, file or socket I/O) inside a `with <lock>:` body "
        "serializes every other thread behind it and can deadlock "
        "bounded pools"
    )

    _BLOCKING_ATTRS = frozenset({
        "result", "submit", "recv", "send", "connect", "accept",
    })

    def check(self, source: Source) -> Iterator[Finding]:
        time_sleep_names = self._imported_names(
            source.tree, "time", {"sleep"}
        )
        yield from self._walk(
            source, source.tree, guard=None,
            time_sleep_names=time_sleep_names,
        )

    @staticmethod
    def _imported_names(tree: ast.Module, module: str,
                        wanted: set[str]) -> frozenset[str]:
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == module:
                for alias in node.names:
                    if alias.name in wanted:
                        names.add(alias.asname or alias.name)
        return frozenset(names)

    def _walk(self, source: Source, node: ast.AST, guard: str | None,
              time_sleep_names: frozenset[str]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_guard = guard
            if isinstance(child, ast.With):
                child_guard = _lock_guard_name(child) or guard
            if guard is not None and isinstance(child, ast.Call):
                blocked = self._blocking_reason(child, time_sleep_names)
                if blocked is not None:
                    yield self.finding(
                        source, child,
                        f"{blocked} while holding {guard!r}",
                    )
            yield from self._walk(
                source, child, child_guard, time_sleep_names
            )

    def _blocking_reason(self, call: ast.Call,
                         time_sleep_names: frozenset[str]) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "file I/O (open)"
            if func.id in time_sleep_names:
                return "time.sleep"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if chain[:2] == ["time", "sleep"]:
            return "time.sleep"
        if chain and chain[0] in ("socket", "requests", "urllib",
                                  "http", "httpx"):
            return f"network I/O ({'.'.join(chain)})"
        if func.attr == "shutdown":
            if not self._wait_is_false(call):
                return "blocking executor shutdown"
            return None
        if func.attr == "join" and not call.args:
            return "thread join"
        if func.attr in self._BLOCKING_ATTRS:
            return f"blocking call .{func.attr}()"
        return None

    @staticmethod
    def _wait_is_false(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "wait" and \
                    isinstance(keyword.value, ast.Constant):
                return keyword.value.value is False
        return False


class NestedFanOut(LintRule):
    """REP203: a scatter() task that itself scatters on the shared pool."""

    rule_id = "REP203"
    severity = "error"
    description = (
        "a task submitted to the shared shard executor performs its own "
        "fan-out; nested submissions to a bounded pool can deadlock "
        "(the executor runs nested fan-outs inline, so this also "
        "silently serializes)"
    )

    def check(self, source: Source) -> Iterator[Finding]:
        local_defs: dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ast.walk(source.tree)
            if isinstance(node, ast.FunctionDef)
        }
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name not in _FANOUT_CALLS or not node.args:
                continue
            for task in self._task_bodies(node.args[0], local_defs):
                yield from self._scan_task(source, task, local_defs)

    @staticmethod
    def _task_bodies(tasks_expr: ast.expr,
                     local_defs: dict[str, ast.FunctionDef]
                     ) -> list[ast.AST]:
        candidates: list[ast.expr] = []
        if isinstance(tasks_expr, (ast.List, ast.Tuple, ast.Set)):
            candidates = list(tasks_expr.elts)
        elif isinstance(tasks_expr, (ast.ListComp, ast.GeneratorExp,
                                     ast.SetComp)):
            candidates = [tasks_expr.elt]
        bodies: list[ast.AST] = []
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                bodies.append(candidate.body)
            elif isinstance(candidate, ast.Name) and \
                    candidate.id in local_defs:
                bodies.append(local_defs[candidate.id])
        return bodies

    def _scan_task(self, source: Source, body: ast.AST,
                   local_defs: dict[str, ast.FunctionDef],
                   depth: int = 0,
                   visited: set[str] | None = None) -> Iterator[Finding]:
        visited = visited if visited is not None else set()
        for node in ast.walk(body):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name in _FANOUT_CALLS:
                yield self.finding(
                    source, node,
                    "fan-out inside a task already running on the shard "
                    "executor (nested scatter)",
                )
            elif isinstance(node.func, ast.Name) and depth < 2 and \
                    node.func.id in local_defs and \
                    node.func.id not in visited:
                visited.add(node.func.id)
                yield from self._scan_task(
                    source, local_defs[node.func.id], local_defs,
                    depth + 1, visited,
                )


class AbandonedFutureGather(LintRule):
    """REP205: a ``future.result()`` loop that can abandon siblings."""

    rule_id = "REP205"
    severity = "error"
    description = (
        "a loop (or comprehension) calling .result() on each future "
        "in turn stops consuming at the first exception, abandoning "
        "the sibling futures still running (in-flight work keeps "
        "mutating after the caller saw the error); call wait() on the "
        "whole set, or iterate as_completed(), before raising"
    )

    #: A call to either of these anywhere in the enclosing scope means
    #: the author quiesced (or consumed completions in completion
    #: order), which is exactly the fix for this bug class.
    _BARRIER_CALLS = frozenset({"wait", "as_completed"})

    def check(self, source: Source) -> Iterator[Finding]:
        yield from self._visit(
            source, source.tree, self._scope_has_barrier(source.tree)
        )

    def _visit(self, source: Source, node: ast.AST,
               barrier: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_barrier = barrier
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                # A barrier in an *enclosing* scope counts too: a helper
                # may loop over futures its caller already waited on.
                child_barrier = barrier or self._scope_has_barrier(child)
            if not child_barrier:
                yield from self._check_node(source, child)
            yield from self._visit(source, child, child_barrier)

    def _check_node(self, source: Source,
                    node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            yield from self._result_calls(
                source, node.body, node.target.id
            )
        elif isinstance(node, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                if isinstance(generator.target, ast.Name):
                    yield from self._result_calls(
                        source, [node.elt], generator.target.id
                    )

    def _result_calls(self, source: Source, body: list[ast.AST],
                      variable: str) -> Iterator[Finding]:
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "result" and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id == variable:
                    yield self.finding(
                        source, node,
                        f"{variable}.result() consumed in submission "
                        "order with no wait()/as_completed() barrier; "
                        "an early exception abandons the futures still "
                        "running",
                    )

    def _scope_has_barrier(self, scope: ast.AST) -> bool:
        """A barrier call in ``scope``, not counting nested functions.

        A ``wait()`` inside a nested helper does not quiesce the
        enclosing scope's futures, so only this scope's own statements
        count; enclosing-scope barriers are inherited in ``_visit``.
        """
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call) and \
                    _terminal_name(node.func) in self._BARRIER_CALLS:
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False


class BlockingCallInAsync(LintRule):
    """REP206: a blocking call on the event loop (inside ``async def``)."""

    rule_id = "REP206"
    severity = "error"
    description = (
        "a blocking call (time.sleep, Future.result, bare lock "
        "acquire, thread join, synchronous socket or file I/O, "
        "subprocess) inside an `async def` body stalls the event loop "
        "for every connection it is multiplexing; await the async "
        "equivalent or push the work onto an executor"
    )

    #: Socket-style methods that block the calling thread.
    _SOCKET_ATTRS = frozenset({
        "recv", "recv_into", "recvfrom", "send", "sendall", "sendto",
        "accept", "connect",
    })

    def check(self, source: Source) -> Iterator[Finding]:
        time_sleep_names = BlockingCallUnderLock._imported_names(
            source.tree, "time", {"sleep"}
        )
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._scan_async_body(
                    source, node, time_sleep_names
                )

    def _scan_async_body(self, source: Source,
                         function: ast.AsyncFunctionDef,
                         time_sleep_names: frozenset[str]
                         ) -> Iterator[Finding]:
        # Direct children only, skipping nested sync defs (their bodies
        # run wherever they are *called* — often an executor thread —
        # and nested async defs are visited by the outer walk).
        stack: list[tuple[ast.AST, bool]] = [
            (child, False) for child in ast.iter_child_nodes(function)
        ]
        while stack:
            node, awaited = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Await):
                # Whatever is directly awaited yields the loop; its
                # arguments are still evaluated synchronously.
                stack.extend(
                    (child, True)
                    for child in ast.iter_child_nodes(node)
                )
                continue
            if isinstance(node, ast.Call) and not awaited:
                reason = self._blocking_reason(node, time_sleep_names)
                if reason is not None:
                    yield self.finding(
                        source, node,
                        f"{reason} blocks the event loop in async "
                        f"{function.name}()",
                    )
            stack.extend(
                (child, False) for child in ast.iter_child_nodes(node)
            )

    def _blocking_reason(self, call: ast.Call,
                         time_sleep_names: frozenset[str]) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "file I/O (open)"
            if func.id in time_sleep_names:
                return "time.sleep"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if chain[:2] == ["time", "sleep"]:
            return "time.sleep"
        if chain and chain[0] == "subprocess":
            return f"subprocess ({'.'.join(chain)})"
        if chain and chain[0] in ("socket", "requests", "urllib",
                                  "http", "httpx"):
            return f"synchronous network I/O ({'.'.join(chain)})"
        if func.attr == "result":
            return "Future.result()"
        if func.attr in self._SOCKET_ATTRS and chain and \
                chain[0] not in ("self",):
            return f"synchronous socket op .{func.attr}()"
        if func.attr == "acquire" and not call.args and \
                not call.keywords:
            return "bare lock acquire()"
        if func.attr == "join" and not call.args:
            return "thread join"
        return None


class NondeterministicRankFunction(LintRule):
    """REP204: clock/RNG use in a registered ``$function`` callable."""

    rule_id = "REP204"
    severity = "error"
    description = (
        "a function registered with a FunctionRegistry uses time or "
        "randomness, so repeated pipeline runs (and per-shard partials) "
        "rank differently"
    )

    _NONDETERMINISTIC_ROOTS = ("random", "secrets", "uuid")
    _TIME_CALLS = frozenset({
        "time", "monotonic", "perf_counter", "time_ns", "process_time",
    })
    _DATETIME_CALLS = frozenset({"now", "utcnow", "today"})

    def check(self, source: Source) -> Iterator[Finding]:
        nondeterministic_imports = self._nondeterministic_imports(
            source.tree
        )
        for registered, name in self._registered_functions(source.tree):
            for node in ast.walk(registered):
                reason = self._reason(node, nondeterministic_imports)
                if reason is not None:
                    yield self.finding(
                        source, node,
                        f"registered $function {name!r} uses {reason}; "
                        "pipeline rankings become nondeterministic",
                    )

    @staticmethod
    def _nondeterministic_imports(tree: ast.Module) -> frozenset[str]:
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and \
                    node.module in ("random", "time", "secrets", "uuid"):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return frozenset(names)

    def _registered_functions(self, tree: ast.Module):
        defs: dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                for decorator in node.decorator_list:
                    target = decorator.func if \
                        isinstance(decorator, ast.Call) else decorator
                    if isinstance(target, ast.Attribute) and \
                            target.attr == "register":
                        yield node, node.name
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "register":
                receiver = _terminal_name(node.func.value) or ""
                if "registr" not in receiver.lower() and \
                        receiver != "functions":
                    continue
                for arg in node.args[1:2]:
                    if isinstance(arg, ast.Name) and arg.id in defs:
                        yield defs[arg.id], arg.id
                    elif isinstance(arg, ast.Lambda):
                        yield arg, "<lambda>"

    def _reason(self, node: ast.AST,
                imported: frozenset[str]) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name) and func.id in imported:
            return f"{func.id}() (imported from a nondeterministic module)"
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if not chain:
            return None
        if any(part in self._NONDETERMINISTIC_ROOTS for part in
               chain[:-1]):
            return ".".join(chain)
        if chain[0] == "time" and chain[-1] in self._TIME_CALLS:
            return ".".join(chain)
        if func.attr in self._DATETIME_CALLS and any(
                "date" in part for part in chain[:-1]):
            return ".".join(chain)
        return None

"""The repo's lint rule set.

``default_rules()`` returns one instance of every per-file rule, and
``project_rules()`` one instance of every interprocedural rule;
the CLI and the tests both go through them so the two can never
disagree about what "the linter" means.
"""

from __future__ import annotations

from repro.analysis.lint import LintRule, ProjectRule
from repro.analysis.rules.concurrency import (
    AbandonedFutureGather,
    BlockingCallInAsync,
    BlockingCallUnderLock,
    NestedFanOut,
    NondeterministicRankFunction,
    UnguardedSharedState,
)
from repro.analysis.rules.generic import (
    BareExcept,
    MutableDefaultArg,
    SwallowedAggregationError,
)
from repro.analysis.rules.interprocedural import (
    StaticLockOrderCycle,
    TransitiveBlockingInAsync,
    TransitiveFanoutUnderLock,
)
from repro.analysis.rules.perf import PerDocumentScoringLoop
from repro.analysis.rules.resources import ResourceLeak

__all__ = [
    "default_rules",
    "project_rules",
    "UnguardedSharedState",
    "BlockingCallInAsync",
    "BlockingCallUnderLock",
    "NestedFanOut",
    "NondeterministicRankFunction",
    "AbandonedFutureGather",
    "MutableDefaultArg",
    "BareExcept",
    "PerDocumentScoringLoop",
    "SwallowedAggregationError",
    "ResourceLeak",
    "TransitiveBlockingInAsync",
    "StaticLockOrderCycle",
    "TransitiveFanoutUnderLock",
]


def default_rules() -> list[LintRule]:
    """One instance of every per-file rule, in stable rule-id order."""
    rules = [
        MutableDefaultArg(),
        BareExcept(),
        SwallowedAggregationError(),
        UnguardedSharedState(),
        BlockingCallUnderLock(),
        NestedFanOut(),
        NondeterministicRankFunction(),
        AbandonedFutureGather(),
        BlockingCallInAsync(),
        PerDocumentScoringLoop(),
        ResourceLeak(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)


def project_rules() -> list[ProjectRule]:
    """One instance of every interprocedural rule, in rule-id order."""
    rules: list[ProjectRule] = [
        TransitiveBlockingInAsync(),
        StaticLockOrderCycle(),
        TransitiveFanoutUnderLock(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)

"""The repo's lint rule set.

``default_rules()`` returns one instance of every rule, concurrency and
generic alike; the CLI and the tests both go through it so the two can
never disagree about what "the linter" means.
"""

from __future__ import annotations

from repro.analysis.lint import LintRule
from repro.analysis.rules.concurrency import (
    AbandonedFutureGather,
    BlockingCallInAsync,
    BlockingCallUnderLock,
    NestedFanOut,
    NondeterministicRankFunction,
    UnguardedSharedState,
)
from repro.analysis.rules.generic import (
    BareExcept,
    MutableDefaultArg,
    SwallowedAggregationError,
)
from repro.analysis.rules.perf import PerDocumentScoringLoop

__all__ = [
    "default_rules",
    "UnguardedSharedState",
    "BlockingCallInAsync",
    "BlockingCallUnderLock",
    "NestedFanOut",
    "NondeterministicRankFunction",
    "AbandonedFutureGather",
    "MutableDefaultArg",
    "BareExcept",
    "PerDocumentScoringLoop",
    "SwallowedAggregationError",
]


def default_rules() -> list[LintRule]:
    """One instance of every rule, in stable rule-id order."""
    rules = [
        MutableDefaultArg(),
        BareExcept(),
        SwallowedAggregationError(),
        UnguardedSharedState(),
        BlockingCallUnderLock(),
        NestedFanOut(),
        NondeterministicRankFunction(),
        AbandonedFutureGather(),
        BlockingCallInAsync(),
        PerDocumentScoringLoop(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)

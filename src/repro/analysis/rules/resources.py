"""REP211: resources acquired but not released on every path.

Tracks executors, sockets, and files bound to a *local* name and asks
whether an exception between acquisition and release/ownership-transfer
can strand the resource.  The analysis is linear and lexical — no CFG —
but errs quiet: anything that plausibly transfers ownership (returned,
stored on an attribute, passed to a call, aliased, declared ``global``)
stops tracking, and a release inside a ``finally`` or ``except`` block
counts as protected no matter where it sits.

The shape this exists to catch (a real gateway-client bug)::

    sock = socket.create_connection(addr)
    sock.setsockopt(...)        # raises -> sock leaks
    return sock
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.lint import Finding, LintRule, Source

#: Constructor terminals that hand back something needing release.
_EXECUTOR_CTORS = frozenset({"ThreadPoolExecutor",
                             "ProcessPoolExecutor"})
_SOCKET_CALLS = frozenset({"create_connection"})
_FILE_CALLS = frozenset({"open", "fdopen"})

#: Methods that release the tracked resource.
_RELEASE_METHODS = frozenset({"close", "shutdown", "terminate",
                              "detach", "release", "__exit__"})


def _attr_chain(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _acquire_kind(value: ast.expr) -> str | None:
    """What kind of resource a RHS expression acquires, if any."""
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    terminal = chain[-1] if chain else ""
    if terminal in _EXECUTOR_CTORS:
        return "executor"
    if terminal in _SOCKET_CALLS or chain == ["socket", "socket"]:
        return "socket"
    if chain == ["open"] or terminal in _FILE_CALLS and \
            (len(chain) == 1 or chain[0] in ("os", "io")):
        return "file"
    return None


@dataclass
class _Stmt:
    """One flattened statement with its cleanup context."""

    node: ast.stmt
    in_cleanup: bool  # inside a finally block or except handler


def _flatten(body: list[ast.stmt], in_cleanup: bool,
             out: list[_Stmt]) -> None:
    """Own statements in source order; nested defs are separate scopes."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        out.append(_Stmt(stmt, in_cleanup))
        if isinstance(stmt, (ast.Try,)):
            _flatten(stmt.body, in_cleanup, out)
            for handler in stmt.handlers:
                _flatten(handler.body, True, out)
            _flatten(stmt.orelse, in_cleanup, out)
            _flatten(stmt.finalbody, True, out)
        else:
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field, None)
                if isinstance(nested, list):
                    _flatten(nested, in_cleanup, out)


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expression nodes belonging to this statement, not sub-blocks."""
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
        return
    if isinstance(stmt, ast.For):
        yield from ast.walk(stmt.target)
        yield from ast.walk(stmt.iter)
        return
    if isinstance(stmt, ast.With):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
        return
    if isinstance(stmt, ast.Try):
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            continue
        for node in ast.walk(child):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                break
            yield node


def _releases(stmt: ast.stmt, name: str) -> bool:
    for node in _own_exprs(stmt):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == name and \
                node.func.attr in _RELEASE_METHODS:
            return True
    return False


def _escapes(stmt: ast.stmt, name: str) -> bool:
    """Ownership leaves the local scope: stop tracking, assume safe."""
    for node in _own_exprs(stmt):
        if isinstance(node, ast.Call):
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = getattr(stmt, "value", None)
        if value is not None:
            for node in ast.walk(value):
                if isinstance(node, ast.Name) and node.id == name and \
                        not _is_receiver_only(value, node):
                    return True
    if isinstance(stmt, ast.With):
        for item in stmt.items:
            for node in ast.walk(item.context_expr):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
    if isinstance(stmt, ast.Expr) and stmt.value is not None:
        for node in ast.walk(stmt.value):
            if isinstance(node, (ast.Yield, ast.YieldFrom)) and \
                    node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
    return False


def _is_receiver_only(value: ast.expr, name_node: ast.Name) -> bool:
    """True when the name only appears as ``name.method(...)`` receiver."""
    for node in ast.walk(value):
        if isinstance(node, ast.Attribute) and node.value is name_node:
            return True
    return False


def _risky(stmt: ast.stmt, name: str) -> bool:
    """Can this statement raise before the resource is safe?"""
    if isinstance(stmt, ast.Raise):
        return True
    for node in _own_exprs(stmt):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id == name and \
                    node.func.attr in _RELEASE_METHODS:
                continue
            return True
    return False


class ResourceLeak(LintRule):
    """REP211: executor/socket/file not released on an exception path."""

    rule_id = "REP211"
    severity = "error"
    description = ("resource acquired but not released on every "
                   "exception path")

    def check(self, source: Source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)

    def _check_function(self, source: Source,
                        fn: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> Iterator[Finding]:
        statements: list[_Stmt] = []
        _flatten(fn.body, False, statements)
        declared_elsewhere: set[str] = set()
        for entry in statements:
            if isinstance(entry.node, (ast.Global, ast.Nonlocal)):
                declared_elsewhere.update(entry.node.names)
        for position, entry in enumerate(statements):
            for name, kind, lineno in self._acquisitions(entry.node):
                if name in declared_elsewhere:
                    continue  # stored beyond this scope by declaration
                problem = self._leak_verdict(statements, position,
                                             name)
                if problem is not None:
                    yield self.finding(
                        source, lineno,
                        f"{kind} `{name}` acquired here {problem}; "
                        f"use `with`, or release it in a "
                        f"finally/except block",
                    )

    @staticmethod
    def _acquisitions(stmt: ast.stmt
                      ) -> Iterator[tuple[str, str, int]]:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        value = getattr(stmt, "value", None)
        if value is None:
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else \
            [stmt.target]
        kind = _acquire_kind(value)
        if kind is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id, kind, stmt.lineno

    @staticmethod
    def _leak_verdict(statements: list[_Stmt], position: int,
                      name: str) -> str | None:
        """Why the acquisition leaks, or ``None`` when it is safe."""
        # A release inside any finally/except block protects every
        # path; scan the whole function for one first.
        for entry in statements[position + 1:]:
            if entry.in_cleanup and _releases(entry.node, name):
                return None
        risky_line: int | None = None
        for entry in statements[position + 1:]:
            node = entry.node
            if _releases(node, name):
                if risky_line is not None:
                    return (f"is not released when line {risky_line} "
                            f"raises (release at line {node.lineno} "
                            f"is skipped)")
                return None
            if _escapes(node, name):
                if risky_line is not None:
                    return (f"leaks when line {risky_line} raises "
                            f"before ownership transfers at line "
                            f"{node.lineno}")
                return None
            if risky_line is None and _risky(node, name):
                risky_line = node.lineno
        return "and never released"

"""Interprocedural rules: findings that need the whole call graph.

These run once per analysis over the :class:`ProjectIndex` rather than
per file — a blocking call three frames below an ``async def`` or a
lock-order cycle split across modules is invisible to any single-file
rule.  Everything here inherits the call graph's conservatism: an
unresolvable callee contributes *nothing*, so every finding is backed
by an explicit chain of project code.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import racecheck
from repro.analysis.callgraph import ProjectIndex, format_chain
from repro.analysis.lint import Finding, ProjectRule

#: Call terminals that move work off the calling thread; a reference to
#: a blocking function handed to these is the *point*, not a bug.
_HANDOFF = frozenset({"run_in_executor", "submit", "map", "create_task",
                      "ensure_future", "call_soon",
                      "call_soon_threadsafe"})

#: Fan-out entry points (same set the summaries record).
_FANOUT = frozenset({"scatter", "scatter_first"})


class TransitiveBlockingInAsync(ProjectRule):
    """REP208: an ``async def`` reaches a blocking call through sync code.

    The call-graph upgrade of REP206: REP206 flags ``time.sleep`` typed
    directly inside an ``async def``; this rule follows sync callees any
    number of frames down.  Awaited call sites are exempt (an awaited
    coroutine yields to the loop), as are executor hand-offs
    (``run_in_executor``, ``submit``, ...) whose entire purpose is to
    run blocking code elsewhere.
    """

    rule_id = "REP208"
    severity = "error"
    description = ("blocking call transitively reachable from an "
                   "async def")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for key in index.async_functions():
            fn = index.functions[key]
            path = index.module_of(key).path
            for call in fn.calls:
                if call.awaited:
                    continue
                if call.callee.rsplit(".", 1)[-1] in _HANDOFF:
                    continue
                callee_key = index.resolve_call(key, call.callee)
                if callee_key is None:
                    continue
                if index.functions[callee_key].is_async:
                    continue
                chain = index.blocking_chain(callee_key)
                if chain is None:
                    continue
                reason, steps = chain
                yield self.finding(
                    path, call.lineno,
                    f"async {fn.qualname}() reaches blocking "
                    f"{reason} via {call.callee}(): "
                    f"{format_chain(steps)}; await the work or hand "
                    f"it to an executor",
                )


class StaticLockOrderCycle(ProjectRule):
    """REP209: a lock-order cycle visible at compile time.

    Builds the static held→acquired edge graph (lexical ``with``
    nesting plus call sites made while holding a lock, expanded through
    each callee's transitive acquisitions) and runs the *same* cycle
    detector racecheck applies to its runtime graph — the two layers
    speak one vocabulary (racecheck factory names) and are
    cross-checked in the test suite.
    """

    rule_id = "REP209"
    severity = "error"
    description = "static lock-order cycle across functions"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        edges = index.lock_order_edges()
        for cycle in racecheck.find_cycles(set(edges)):
            pairs = [(cycle[i], cycle[(i + 1) % len(cycle)])
                     for i in range(len(cycle))]
            sites = [edges[pair] for pair in pairs if pair in edges]
            if not sites:
                continue
            anchor = min((chain[0] for chain in sites),
                         key=lambda step: (step.path, step.lineno))
            order = " -> ".join([*cycle, cycle[0]])
            detail = "; ".join(
                f"({a} -> {b}) via {format_chain(edges[(a, b)])}"
                for a, b in pairs if (a, b) in edges
            )
            yield self.finding(
                anchor.path, anchor.lineno,
                f"static lock-order cycle {order}: {detail}",
            )


class TransitiveFanoutUnderLock(ProjectRule):
    """REP210: fan-out reachable while a lock is held.

    ``scatter``/``scatter_first`` wait on a bounded executor; doing so
    while holding a lock couples lock hold time to pool latency and can
    deadlock outright when tasks need the same lock.  Racecheck's
    ``note_fanout`` catches this at runtime on exercised paths; this is
    the static complement, and it also follows call chains (the fan-out
    may be several frames below the ``with``).
    """

    rule_id = "REP210"
    severity = "error"
    description = "fan-out while holding a lock (transitively)"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for key, fn in index.functions.items():
            path = index.module_of(key).path
            for site in fn.fanouts:
                if site.locks_held:
                    yield self.finding(
                        path, site.lineno,
                        f"{fn.qualname}() fans out via {site.kind}() "
                        f"while holding "
                        f"{', '.join(site.locks_held)}",
                    )
            for call in fn.calls:
                if not call.locks_held:
                    continue
                if call.callee.rsplit(".", 1)[-1] in _FANOUT:
                    continue  # direct site: reported above
                callee_key = index.resolve_call(key, call.callee)
                if callee_key is None:
                    continue
                chain = index.fanout_chain(callee_key)
                if chain is None:
                    continue
                yield self.finding(
                    path, call.lineno,
                    f"{fn.qualname}() holds "
                    f"{', '.join(call.locks_held)} across "
                    f"{call.callee}(), which fans out: "
                    f"{format_chain(chain)}",
                )

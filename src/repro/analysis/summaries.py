"""Per-function summaries: the cacheable unit of interprocedural analysis.

One :class:`ModuleSummary` is derived from one module's AST alone — no
cross-module information — so the analysis engine can cache it under a
content hash and rebuild only edited files.  Everything the
interprocedural rules (REP208–REP210) need from a function is distilled
here:

* **call sites** — every call the function body makes directly (nested
  ``def``/``lambda`` bodies are deferred work and deliberately excluded),
  with the raw dotted callee expression (``self.flush``, ``mod.fn``),
  whether the call is directly awaited, and which locks are lexically
  held at the site;
* **blocking calls** — direct calls the REP202/REP206 family classifies
  as event-loop/thread blockers (``time.sleep``, ``Future.result``,
  synchronous socket/file I/O, ...);
* **lock acquisitions** — every ``with <lock>:`` entry, resolved to a
  stable *lock identity*, plus the identities already held at that point
  (the static lock-order edges);
* **fan-outs** — ``scatter``/``scatter_first`` call sites and the locks
  held across them.

Lock identity
    Locks created through the :mod:`repro.analysis.racecheck` factories
    (``make_lock("docstore.executor")``) take the factory's string name,
    so the static lock-order graph and the runtime racecheck graph speak
    the same vocabulary and can be cross-checked.  Plain ``threading``
    locks are qualified by where they are bound (``module.Class.attr``,
    ``module.attr``, ``module.func.var``) so same-named locks in
    different classes never alias into false cycles.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

#: Lock-ish terminal names (mirrors the REP201/REP202 heuristic).
LOCKISH = ("lock", "condition", "mutex")

#: The racecheck factory callables whose string argument names the lock.
_LOCK_FACTORIES = frozenset({"make_lock", "make_rlock", "make_condition"})

#: Plain stdlib lock constructors (``threading.Lock()`` etc.).
_PLAIN_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                               "BoundedSemaphore"})

_FANOUT_CALLS = frozenset({"scatter", "scatter_first"})

#: Socket-style methods that block the calling thread (REP206's list).
_SOCKET_ATTRS = frozenset({
    "recv", "recv_into", "recvfrom", "send", "sendall", "sendto",
    "accept", "connect",
})


def attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def imported_names(tree: ast.AST, module: str,
                   wanted: set[str]) -> frozenset[str]:
    """Local aliases of ``from <module> import <wanted>`` in ``tree``."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name in wanted:
                    names.add(alias.asname or alias.name)
    return frozenset(names)


def blocking_call_reason(call: ast.Call,
                         time_sleep_names: frozenset[str]) -> str | None:
    """Why ``call`` blocks the calling thread, or ``None`` if it doesn't.

    The classification REP206 applies inside ``async def`` bodies; the
    summaries reuse it verbatim so REP208's transitive reachability and
    REP206's local rule can never disagree about what "blocking" means.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file I/O (open)"
        if func.id in time_sleep_names:
            return "time.sleep"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    chain = attr_chain(func)
    if chain[:2] == ["time", "sleep"]:
        return "time.sleep"
    if chain and chain[0] == "subprocess":
        return f"subprocess ({'.'.join(chain)})"
    if chain and chain[0] in ("socket", "requests", "urllib",
                              "http", "httpx"):
        return f"synchronous network I/O ({'.'.join(chain)})"
    if func.attr == "result":
        return "Future.result()"
    if func.attr in _SOCKET_ATTRS and chain and chain[0] not in ("self",):
        return f"synchronous socket op .{func.attr}()"
    if func.attr == "acquire" and not call.args and not call.keywords:
        return "bare lock acquire()"
    if func.attr == "join" and not call.args:
        return "thread join"
    return None


# -- summary records -------------------------------------------------------

@dataclass(frozen=True)
class CallSite:
    """One direct call made by a function body."""

    callee: str  # dotted callee expression; "?" marks an opaque receiver
    lineno: int
    awaited: bool = False
    locks_held: tuple[str, ...] = ()


@dataclass(frozen=True)
class BlockingSite:
    """One direct blocking call (REP206 classification)."""

    reason: str
    lineno: int


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <lock>:`` entry, with the identities already held."""

    lock: str
    lineno: int
    held: tuple[str, ...] = ()


@dataclass(frozen=True)
class FanoutSite:
    """One ``scatter``/``scatter_first`` call site."""

    kind: str
    lineno: int
    locks_held: tuple[str, ...] = ()


@dataclass(frozen=True)
class FunctionSummary:
    """Everything interprocedural analysis needs from one function."""

    name: str
    qualname: str  # module-relative: "func" or "Class.method"
    lineno: int
    is_async: bool = False
    calls: tuple[CallSite, ...] = ()
    blocking: tuple[BlockingSite, ...] = ()
    lock_acquires: tuple[LockAcquire, ...] = ()
    fanouts: tuple[FanoutSite, ...] = ()


@dataclass(frozen=True)
class ClassSummary:
    """A class: its method summaries and (raw) base-class expressions."""

    name: str
    bases: tuple[str, ...] = ()  # dotted base expressions, as written
    methods: dict[str, FunctionSummary] = field(default_factory=dict)


@dataclass(frozen=True)
class ModuleSummary:
    """One module's contribution to the project index (cacheable)."""

    name: str  # dotted module name ("repro.gateway.server")
    path: str  # repo-relative, forward slashes
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: Module-level lock bindings (name -> identity), published so other
    #: modules' imported-guard provisionals (``@pkg.locks.A``) can be
    #: resolved by the project index.
    locks: dict[str, str] = field(default_factory=dict)

    def all_functions(self) -> Iterator[FunctionSummary]:
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()

    # -- (de)serialization for the on-disk summary cache -------------------

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ModuleSummary":
        def fn(raw: dict[str, Any]) -> FunctionSummary:
            return FunctionSummary(
                name=raw["name"], qualname=raw["qualname"],
                lineno=raw["lineno"], is_async=raw["is_async"],
                calls=tuple(CallSite(callee=c["callee"],
                                     lineno=c["lineno"],
                                     awaited=c["awaited"],
                                     locks_held=tuple(c["locks_held"]))
                            for c in raw["calls"]),
                blocking=tuple(BlockingSite(**b) for b in raw["blocking"]),
                lock_acquires=tuple(
                    LockAcquire(lock=a["lock"], lineno=a["lineno"],
                                held=tuple(a["held"]))
                    for a in raw["lock_acquires"]),
                fanouts=tuple(
                    FanoutSite(kind=f["kind"], lineno=f["lineno"],
                               locks_held=tuple(f["locks_held"]))
                    for f in raw["fanouts"]),
            )

        return cls(
            name=payload["name"], path=payload["path"],
            imports=dict(payload["imports"]),
            functions={name: fn(raw)
                       for name, raw in payload["functions"].items()},
            classes={
                name: ClassSummary(
                    name=raw["name"], bases=tuple(raw["bases"]),
                    methods={m: fn(f)
                             for m, f in raw["methods"].items()},
                )
                for name, raw in payload["classes"].items()
            },
            locks=dict(payload.get("locks", {})),
        )


# -- module naming ---------------------------------------------------------

def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/gateway/server.py`` -> ``repro.gateway.server``;
    other trees keep their path-derived name (``tests/test_x.py`` ->
    ``tests.test_x``), so absolute imports resolve whenever the repo
    layout matches the import layout.
    """
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


# -- lock identity resolution ----------------------------------------------

def _lock_binding(value: ast.expr) -> str | None:
    """The lock identity a RHS expression creates, if it creates one.

    ``make_lock("X")`` (any receiver) -> ``"X"``;
    ``threading.Lock()`` -> ``""`` (caller qualifies by binding site);
    anything else -> ``None`` (not a lock construction).
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else ""
    if name in _LOCK_FACTORIES:
        if value.args and isinstance(value.args[0], ast.Constant) and \
                isinstance(value.args[0].value, str):
            return value.args[0].value
        return ""
    if name in _PLAIN_LOCK_CTORS:
        return ""
    return None


def _binding_pairs(node: ast.stmt) -> Iterator[tuple[ast.expr, ast.expr]]:
    """(target, value) pairs a statement binds, unpacking tuple assigns."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)) and \
                    isinstance(node.value, (ast.Tuple, ast.List)) and \
                    len(target.elts) == len(node.value.elts):
                yield from zip(target.elts, node.value.elts)
            else:
                yield target, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target, node.value


class _LockEnv:
    """Lexically scoped lock-name bindings for one module.

    ``module_locks`` maps module-global names, ``class_locks`` maps
    ``self.<attr>`` per class (collected from every method's
    ``self.X = make_lock(...)`` assignments), and function scopes stack
    so closures see enclosing bindings (the racecheck-test workload
    shape: locks made in the test, used in nested defs).
    """

    def __init__(self, module: str) -> None:
        self.module = module
        self.module_locks: dict[str, str] = {}
        self.class_locks: dict[str, dict[str, str]] = {}
        #: Import aliases (from :func:`_collect_imports`).  A guard that
        #: is an imported name gets the *provisional* identity
        #: ``@<dotted target>``; :class:`~repro.analysis.callgraph.\
        #: ProjectIndex` resolves it against the defining module's lock
        #: table (and drops it when the target is not a lock).
        self.imports: dict[str, str] = {}

    def collect_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            for target, value in _binding_pairs(node):
                bound = _lock_binding(value)
                if bound is None or not isinstance(target, ast.Name):
                    continue
                self.module_locks[target.id] = \
                    bound or f"{self.module}.{target.id}"

    def collect_class(self, cls: ast.ClassDef) -> None:
        attrs: dict[str, str] = {}
        for node in ast.walk(cls):
            for target, value in _binding_pairs(node):
                bound = _lock_binding(value)
                if bound is None:
                    continue
                chain = attr_chain(target) if \
                    isinstance(target, ast.Attribute) else []
                if len(chain) == 2 and chain[0] in ("self", "cls"):
                    attrs[chain[1]] = \
                        bound or f"{self.module}.{cls.name}.{chain[1]}"
        self.class_locks[cls.name] = attrs

    def resolve_guard(self, expr: ast.expr, class_name: str | None,
                      function_qualname: str,
                      local_scopes: list[dict[str, str]]) -> str | None:
        """The lock identity a ``with`` context expression refers to."""
        chain = attr_chain(expr)
        if not chain:
            return None
        terminal = chain[-1]
        if not any(token in terminal.lower() for token in LOCKISH) and \
                not self._known_binding(chain, class_name, local_scopes):
            return self._provisional(chain)
        if len(chain) == 1:
            name = chain[0]
            for scope in reversed(local_scopes):
                if name in scope:
                    return scope[name]
            if name in self.module_locks:
                return self.module_locks[name]
            if name in self.imports:
                return f"@{self.imports[name]}"
            return f"{self.module}.{name}"
        if chain[0] in ("self", "cls") and len(chain) == 2:
            attrs = self.class_locks.get(class_name or "", {})
            if chain[1] in attrs:
                return attrs[chain[1]]
            return f"{self.module}.{class_name or '?'}.{chain[1]}"
        if chain[0] in self.imports:
            return f"@{'.'.join([self.imports[chain[0]], *chain[1:]])}"
        return f"{self.module}.{'.'.join(chain)}"

    def _provisional(self, chain: list[str]) -> str | None:
        """Provisional cross-module identity for an imported guard.

        ``with A:`` where ``A`` came from ``from pkg.locks import A`` is
        a lock the *defining* module names; emit ``@pkg.locks.A`` and
        let the project index look it up (or discard it when the target
        turns out not to be a lock at all).
        """
        if chain[0] in self.imports:
            return f"@{'.'.join([self.imports[chain[0]], *chain[1:]])}"
        return None

    def _known_binding(self, chain: list[str], class_name: str | None,
                       local_scopes: list[dict[str, str]]) -> bool:
        if len(chain) == 1:
            return any(chain[0] in scope for scope in local_scopes) \
                or chain[0] in self.module_locks
        if chain[0] in ("self", "cls") and len(chain) == 2:
            return chain[1] in self.class_locks.get(class_name or "", {})
        return False


# -- function body walk ----------------------------------------------------

class _BodyScanner:
    """Collect one function's call/blocking/lock/fan-out sites.

    Nested ``def``/``lambda`` bodies are skipped everywhere: their code
    runs when *called* (often on an executor thread or as deferred task
    thunks), so attributing their effects to the enclosing function
    would turn every ``pool.submit(lambda: ...)`` into a false
    positive.  Lock bindings made in the enclosing scopes remain
    visible to nested defs when those are scanned as their own
    functions.
    """

    def __init__(self, env: _LockEnv, class_name: str | None,
                 qualname: str, time_sleep_names: frozenset[str],
                 local_scopes: list[dict[str, str]]) -> None:
        self.env = env
        self.class_name = class_name
        self.qualname = qualname
        self.time_sleep_names = time_sleep_names
        self.local_scopes = local_scopes
        self.calls: list[CallSite] = []
        self.blocking: list[BlockingSite] = []
        self.lock_acquires: list[LockAcquire] = []
        self.fanouts: list[FanoutSite] = []
        self._held: list[str] = []

    def scan(self, function: ast.FunctionDef | ast.AsyncFunctionDef
             ) -> None:
        for statement in function.body:
            self._visit(statement, awaited=False)

    # -- walk --------------------------------------------------------------

    def _visit(self, node: ast.AST, awaited: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # deferred work: scanned as its own function
        if isinstance(node, ast.Await):
            for child in ast.iter_child_nodes(node):
                self._visit(child, awaited=True)
            return
        if isinstance(node, ast.stmt):
            self._track_local_locks(node)
        if isinstance(node, ast.With):
            self._visit_with(node)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, awaited)
            for child in ast.iter_child_nodes(node):
                self._visit(child, awaited=False)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, awaited=False)

    def _track_local_locks(self, node: ast.stmt) -> None:
        for target, value in _binding_pairs(node):
            bound = _lock_binding(value)
            if bound is None or not isinstance(target, ast.Name):
                continue
            self.local_scopes[-1][target.id] = \
                bound or f"{self.env.module}.{self.qualname}.{target.id}"

    def _visit_with(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            self._visit(item.context_expr, awaited=False)
            if item.optional_vars is not None:
                self._visit(item.optional_vars, awaited=False)
            guard = self.env.resolve_guard(
                item.context_expr, self.class_name, self.qualname,
                self.local_scopes,
            )
            if guard is not None:
                self.lock_acquires.append(LockAcquire(
                    lock=guard, lineno=node.lineno,
                    held=tuple(self._held),
                ))
                self._held.append(guard)
                acquired.append(guard)
        for statement in node.body:
            self._visit(statement, awaited=False)
        for _ in acquired:
            self._held.pop()

    def _record_call(self, node: ast.Call, awaited: bool) -> None:
        callee = self._callee_expr(node.func)
        if callee is None:
            return
        terminal = callee.rsplit(".", 1)[-1]
        if terminal in _FANOUT_CALLS:
            self.fanouts.append(FanoutSite(
                kind=terminal, lineno=node.lineno,
                locks_held=tuple(self._held),
            ))
        reason = blocking_call_reason(node, self.time_sleep_names)
        if reason is not None:
            self.blocking.append(BlockingSite(reason=reason,
                                              lineno=node.lineno))
        self.calls.append(CallSite(
            callee=callee, lineno=node.lineno, awaited=awaited,
            locks_held=tuple(self._held),
        ))

    @staticmethod
    def _callee_expr(func: ast.expr) -> str | None:
        chain = attr_chain(func)
        if chain:
            return ".".join(chain)
        if isinstance(func, ast.Attribute):
            return f"?.{func.attr}"  # opaque receiver: x().y, a[i].y ...
        return None


# -- module summarization --------------------------------------------------

def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds `a`; attribute chains resolve
                    # the rest at lookup time.
                    imports[alias.name.split(".")[0]] = \
                        alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and \
                node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return imports


def summarize_module(path: str, tree: ast.Module) -> ModuleSummary:
    """Distill one parsed module into its :class:`ModuleSummary`."""
    module = module_name_for(path)
    imports = _collect_imports(tree)
    env = _LockEnv(module)
    env.imports = imports
    env.collect_module(tree)
    time_sleep_names = imported_names(tree, "time", {"sleep"})

    functions: dict[str, FunctionSummary] = {}
    classes: dict[str, ClassSummary] = {}

    def summarize_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                           qualname: str, class_name: str | None,
                           scopes: list[dict[str, str]]
                           ) -> FunctionSummary:
        own_scope: dict[str, str] = {}
        scanner = _BodyScanner(env, class_name, qualname,
                               time_sleep_names, scopes + [own_scope])
        scanner.scan(node)
        summary = FunctionSummary(
            name=node.name, qualname=qualname, lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            calls=tuple(scanner.calls),
            blocking=tuple(scanner.blocking),
            lock_acquires=tuple(scanner.lock_acquires),
            fanouts=tuple(scanner.fanouts),
        )
        # Nested defs become sibling entries (qualified by the parent),
        # preserving access to the enclosing lock scope — the closure
        # workload racecheck's own tests exercise.
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)) and \
                    _is_directly_nested(node, child):
                nested = summarize_function(
                    child, f"{qualname}.{child.name}", class_name,
                    scopes + [own_scope],
                )
                functions[nested.qualname] = nested
        return summary

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = summarize_function(
                node, node.name, None, [])
        elif isinstance(node, ast.ClassDef):
            env.collect_class(node)
            methods: dict[str, FunctionSummary] = {}
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{child.name}"
                    methods[child.name] = summarize_function(
                        child, qualname, node.name, [])
            classes[node.name] = ClassSummary(
                name=node.name,
                bases=tuple(".".join(attr_chain(base))
                            for base in node.bases if attr_chain(base)),
                methods=methods,
            )

    return ModuleSummary(
        name=module, path=path, imports=imports,
        functions=functions, classes=classes,
        locks=dict(env.module_locks),
    )


def _is_directly_nested(parent: ast.AST, child: ast.AST) -> bool:
    """True when ``child`` is a def in ``parent``'s body, not deeper."""
    for node in ast.iter_child_nodes(parent):
        if node is child:
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if _is_directly_nested(node, child):
            return True
    return False

"""The analysis engine: parallel parsing, caching, config, assembly.

``lint_paths`` re-reads and re-parses every file on every run, which
was fine at 40 files and is not at 160+.  The engine splits analysis
into a *per-file* step — parse, run the per-file rules, build the
module summary and suppression index — and a *project* step that
stitches summaries into a :class:`~repro.analysis.callgraph.ProjectIndex`
and runs the interprocedural rules.

The per-file step is pure in the file's content, so its output is
cached under ``.repro-analysis-cache/`` keyed by a content hash (plus
an engine version stamped with the rule set, so rule changes invalidate
everything).  A warm run touches each file only to hash it.  Per-file
work runs on a thread pool; findings come out in the same deterministic
order regardless of parallelism or cache state.

Severity overrides and rule disabling live in ``pyproject.toml``::

    [tool.repro.analysis]
    disable = ["REP101"]

    [tool.repro.analysis.severity]
    REP208 = "warning"

Parsed with :mod:`tomllib` where available (3.11+) and a small
line-oriented fallback on 3.10 — the section grammar used here is flat
enough that the fallback handles it exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.callgraph import ProjectIndex
from repro.analysis.lint import (
    Finding,
    LintRule,
    ProjectRule,
    Source,
    SuppressionIndex,
    iter_python_files,
)
from repro.analysis.summaries import ModuleSummary, summarize_module

#: Bump when rule logic or summary shape changes: invalidates the cache.
ENGINE_VERSION = "2"

DEFAULT_CACHE_DIR = ".repro-analysis-cache"


# -- configuration ---------------------------------------------------------

@dataclass
class AnalysisConfig:
    """Severity overrides and disabled rules from ``pyproject.toml``."""

    severity: dict[str, str] = field(default_factory=dict)
    disable: frozenset[str] = frozenset()

    def apply(self, findings: Iterable[Finding]) -> list[Finding]:
        out = []
        for finding in findings:
            if finding.rule in self.disable:
                continue
            override = self.severity.get(finding.rule)
            if override and override != finding.severity:
                finding = dataclasses.replace(finding,
                                              severity=override)
            out.append(finding)
        return out


def _parse_toml_subset(text: str) -> dict[str, dict[str, Any]]:
    """Flat ``[section]`` / ``key = value`` TOML subset (3.10 fallback).

    Handles exactly what ``[tool.repro.analysis]`` uses: string values,
    and single-line arrays of strings.
    """
    sections: dict[str, dict[str, Any]] = {}
    current: dict[str, Any] | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = sections.setdefault(line[1:-1].strip(), {})
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.split("#")[0].strip()
        if value.startswith("[") and value.endswith("]"):
            items = [item.strip().strip('"').strip("'")
                     for item in value[1:-1].split(",")]
            current[key] = [item for item in items if item]
        else:
            current[key] = value.strip('"').strip("'")
    return sections


def load_config(root: str | Path = ".") -> AnalysisConfig:
    """The ``[tool.repro.analysis]`` config from ``pyproject.toml``."""
    pyproject = Path(root) / "pyproject.toml"
    if not pyproject.exists():
        return AnalysisConfig()
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
        section = tomllib.loads(text).get("tool", {}) \
            .get("repro", {}).get("analysis", {})
    except ModuleNotFoundError:  # Python 3.10
        flat = _parse_toml_subset(text)
        section = dict(flat.get("tool.repro.analysis", {}))
        section["severity"] = flat.get("tool.repro.analysis.severity",
                                       {})
    severity = {str(rule): str(level)
                for rule, level in (section.get("severity") or
                                    {}).items()}
    disable = frozenset(str(rule)
                        for rule in (section.get("disable") or []))
    return AnalysisConfig(severity=severity, disable=disable)


# -- per-file step ---------------------------------------------------------

@dataclass
class FileRecord:
    """Everything the per-file step produces (the cacheable unit)."""

    path: str
    findings: list[Finding]  # per-file rule hits, pre-suppression
    summary: ModuleSummary | None  # None when the file does not parse
    suppressions: SuppressionIndex
    from_cache: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "findings": [finding.to_json()
                         for finding in self.findings],
            "summary": self.summary.to_json() if self.summary else None,
            "suppressions": self.suppressions.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "FileRecord":
        return cls(
            path=payload["path"],
            findings=[Finding(**raw) for raw in payload["findings"]],
            summary=ModuleSummary.from_json(payload["summary"])
            if payload["summary"] else None,
            suppressions=SuppressionIndex.from_json(
                payload["suppressions"]),
            from_cache=True,
        )


def _analyze_file(path: str, text: str,
                  rules: Sequence[LintRule]) -> FileRecord:
    try:
        source = Source(path, text)
    except SyntaxError as exc:
        return FileRecord(
            path=path,
            findings=[Finding(
                rule="REP000", severity="error", path=path,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            )],
            summary=None,
            suppressions=SuppressionIndex({}, {}),
        )
    findings = []
    for rule in rules:
        findings.extend(rule.check(source))
    return FileRecord(
        path=path,
        findings=findings,
        summary=summarize_module(path, source.tree),
        suppressions=source.suppressions,
    )


# -- the engine ------------------------------------------------------------

@dataclass
class AnalysisResult:
    """Assembled findings plus cache statistics."""

    findings: list[Finding]
    files: int = 0
    cache_hits: int = 0
    analyzed_paths: list[str] = field(default_factory=list)
    index: ProjectIndex | None = None


def _rules_fingerprint(rules: Sequence[LintRule],
                       proj: Sequence[ProjectRule]) -> str:
    ids = [f"{r.rule_id}:{r.severity}" for r in [*rules, *proj]]
    return hashlib.sha256(
        "|".join([ENGINE_VERSION, *sorted(ids)]).encode()
    ).hexdigest()[:16]


def _cache_key(fingerprint: str, path: str, text: str) -> str:
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(b"\0")
    digest.update(path.encode())
    digest.update(b"\0")
    digest.update(text.encode())
    return digest.hexdigest()


def analyze_paths(paths: Sequence[str | Path],
                  root: str | Path | None = None,
                  *,
                  rules: Sequence[LintRule] | None = None,
                  project_rules: Sequence[ProjectRule] | None = None,
                  config: AnalysisConfig | None = None,
                  use_cache: bool = True,
                  cache_dir: str | Path = DEFAULT_CACHE_DIR,
                  jobs: int | None = None) -> AnalysisResult:
    """Analyze every Python file under ``paths``, project rules included.

    The drop-in successor to :func:`repro.analysis.lint.lint_paths`:
    same path semantics and finding order, plus interprocedural rules,
    caching, and severity config.
    """
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    if project_rules is None:
        from repro.analysis.rules import project_rules as _project
        project_rules = _project()
    root = Path(root) if root is not None else Path.cwd()
    if config is None:
        config = load_config(root)
    fingerprint = _rules_fingerprint(rules, project_rules)
    cache_path = Path(cache_dir)
    if not cache_path.is_absolute():
        cache_path = root / cache_path
    if use_cache:
        cache_path.mkdir(parents=True, exist_ok=True)

    files = iter_python_files(paths)
    texts: dict[str, str] = {}
    jobs = jobs or 8

    def load_one(file_path: Path) -> FileRecord:
        try:
            relative = file_path.resolve().relative_to(root.resolve())
            rel = relative.as_posix()
        except ValueError:
            rel = file_path.as_posix()
        text = file_path.read_text(encoding="utf-8")
        texts[rel] = text
        key = _cache_key(fingerprint, rel, text)
        entry = cache_path / f"{key}.json"
        if use_cache and entry.exists():
            try:
                payload = json.loads(entry.read_text(encoding="utf-8"))
                return FileRecord.from_json(payload)
            except (json.JSONDecodeError, KeyError, TypeError):
                pass  # corrupt entry: fall through and rebuild
        record = _analyze_file(rel, text, rules)
        if use_cache:
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(record.to_json()),
                           encoding="utf-8")
            tmp.replace(entry)
        return record

    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        records = list(pool.map(load_one, files))

    index = ProjectIndex(
        record.summary for record in records
        if record.summary is not None
    )

    findings: list[Finding] = []
    suppressions = {record.path: record.suppressions
                    for record in records}
    for record in records:
        for finding in record.findings:
            if finding.rule == "REP000" or \
                    not record.suppressions.allows(finding.rule,
                                                   finding.line):
                findings.append(finding)
    lines_by_path: dict[str, list[str]] = {}
    for rule in project_rules:
        for finding in rule.check_project(index):
            index_for_path = suppressions.get(finding.path)
            if index_for_path is not None and \
                    index_for_path.allows(finding.rule, finding.line):
                continue
            if finding.path in texts and not finding.snippet:
                lines = lines_by_path.setdefault(
                    finding.path, texts[finding.path].splitlines())
                if 1 <= finding.line <= len(lines):
                    finding = dataclasses.replace(
                        finding,
                        snippet=lines[finding.line - 1].strip())
            findings.append(finding)

    findings = config.apply(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AnalysisResult(
        findings=findings,
        files=len(records),
        cache_hits=sum(1 for r in records if r.from_cache),
        analyzed_paths=sorted(r.path for r in records
                              if not r.from_cache),
        index=index,
    )


# -- changed-only support --------------------------------------------------

def changed_files(root: str | Path = ".",
                  since: str = "HEAD") -> set[str] | None:
    """Repo-relative paths changed vs ``since`` plus untracked files.

    ``None`` means "could not tell" (not a git checkout, bad ref):
    callers should fall back to analyzing everything rather than
    silently skipping files.
    """
    def run(*argv: str) -> list[str] | None:
        try:
            proc = subprocess.run(
                ["git", *argv], cwd=str(root), capture_output=True,
                text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return [line.strip() for line in proc.stdout.splitlines()
                if line.strip()]

    diffed = run("diff", "--name-only", since)
    if diffed is None:
        return None
    untracked = run("ls-files", "--others", "--exclude-standard")
    if untracked is None:
        return None
    return set(diffed) | set(untracked)

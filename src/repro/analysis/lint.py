"""Custom AST lint framework: findings, suppressions, baselines.

The engine is deliberately small: a rule is an object with a ``rule_id``
and a ``check(source)`` generator; the framework handles file discovery,
parsing, suppression comments, stable ordering, and baseline diffing.

Suppressing a finding
    Append ``# lint: allow=<rule-id>`` (comma-separate several ids, or
    ``allow=all``) to the flagged line, or put the comment alone on the
    line directly above it.  For decorated defs and multi-line
    statements, a comment on the ``def``/opening line (or above the
    first decorator) suppresses findings reported anywhere in the
    statement header — rules anchor findings to different lines of the
    same statement (the decorator, the ``def``, an argument default),
    and one suppression should cover them all.

Baselines
    A baseline is a JSON file recording accepted findings as
    ``(rule, path, source-line-text)`` triples — line *text*, not line
    numbers, so unrelated edits that shift code do not resurrect old
    findings.  :func:`new_findings` returns only findings not covered by
    the baseline (multiset semantics: two identical lines need two
    baseline entries).
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

#: Marker introducing a suppression comment.
SUPPRESS_MARKER = "lint: allow="


@dataclass(frozen=True)
class Finding:
    """One lint hit: where, which rule, how bad, and why."""

    rule: str
    severity: str  # "error" | "warning"
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str
    snippet: str = ""  # stripped source line (baseline matching key)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across unrelated line-number drift."""
        return (self.rule, self.path, self.snippet)

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} "
                f"[{self.severity}] {self.message}")


class Source:
    """One parsed module handed to every rule."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self._suppressions: SuppressionIndex | None = None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def suppressions(self) -> "SuppressionIndex":
        if self._suppressions is None:
            self._suppressions = SuppressionIndex.from_ast(
                self.lines, self.tree)
        return self._suppressions


class LintRule:
    """Base class: subclasses set the id/severity and implement check()."""

    rule_id: str = ""
    severity: str = "warning"
    description: str = ""

    def check(self, source: Source) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: Source, node: ast.AST | int,
                message: str) -> Finding:
        lineno = node if isinstance(node, int) else node.lineno
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=source.path,
            line=lineno,
            message=message,
            snippet=source.line_text(lineno).strip(),
        )


class ProjectRule:
    """Base for interprocedural rules: one pass over the whole project.

    Unlike :class:`LintRule`, which sees one file, a project rule runs
    once against the :class:`~repro.analysis.callgraph.ProjectIndex`
    after every module summary is built.  Findings come back with empty
    snippets; the engine fills those in (it already holds every file's
    text) and applies suppression via the per-file
    :class:`SuppressionIndex`.
    """

    rule_id: str = ""
    severity: str = "warning"
    description: str = ""

    def check_project(self, index: Any) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, lineno: int, message: str) -> Finding:
        return Finding(rule=self.rule_id, severity=self.severity,
                       path=path, line=lineno, message=message)


def _allowed_rules(line: str) -> set[str] | None:
    """The rule ids a source line's suppression comment allows, if any."""
    marker = line.find(SUPPRESS_MARKER)
    if marker < 0 or "#" not in line[:marker]:
        return None
    spec = line[marker + len(SUPPRESS_MARKER):].split()[0] if \
        line[marker + len(SUPPRESS_MARKER):].split() else ""
    return {rule.strip() for rule in spec.split(",") if rule.strip()}


class SuppressionIndex:
    """Which rules each line allows — statement-header aware.

    ``allowed`` maps line numbers carrying a suppression comment to the
    rule ids they permit.  ``owner`` maps every line inside a
    *multi-line statement header* (decorators, a ``def``'s argument
    list, a parenthesized ``with``) to ``(stmt_line, first_line)`` —
    the ``def``/opening line and the first line including decorators —
    so a suppression on the opening line covers findings anywhere in
    the header.  Serializable, so the analysis cache can keep it
    without re-parsing the file.
    """

    def __init__(self, allowed: dict[int, frozenset[str]],
                 owner: dict[int, tuple[int, int]]) -> None:
        self.allowed = allowed
        self.owner = owner

    @classmethod
    def from_ast(cls, lines: Sequence[str],
                 tree: ast.AST) -> "SuppressionIndex":
        allowed: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            rules = _allowed_rules(line)
            if rules is not None:
                allowed[lineno] = frozenset(rules)
        owner: dict[int, tuple[int, int]] = {}
        # ast.walk is breadth-first: outer statements register their
        # spans first and inner ones overwrite, so the innermost
        # statement owns each header line.
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            first = _stmt_first_line(node)
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and \
                    isinstance(body[0], ast.stmt):
                header_end = _stmt_first_line(body[0]) - 1
            else:
                header_end = node.end_lineno or node.lineno
            if header_end <= first:
                continue  # single-line header: base lookup suffices
            for lineno in range(first, header_end + 1):
                owner[lineno] = (node.lineno, first)
        return cls(allowed, owner)

    def allows(self, rule: str, lineno: int) -> bool:
        candidates = [lineno, lineno - 1]
        span = self.owner.get(lineno)
        if span is not None:
            stmt_line, first = span
            candidates += [stmt_line, first, first - 1]
        for candidate in candidates:
            allowed = self.allowed.get(candidate)
            if allowed and (rule in allowed or "all" in allowed):
                return True
        return False

    def to_json(self) -> dict[str, Any]:
        return {
            "allowed": {str(line): sorted(rules)
                        for line, rules in self.allowed.items()},
            "owner": {str(line): list(span)
                      for line, span in self.owner.items()},
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "SuppressionIndex":
        return cls(
            allowed={int(line): frozenset(rules)
                     for line, rules in payload["allowed"].items()},
            owner={int(line): (span[0], span[1])
                   for line, span in payload["owner"].items()},
        )


def _stmt_first_line(node: ast.stmt) -> int:
    """A statement's first physical line, decorators included."""
    first = node.lineno
    for decorator in getattr(node, "decorator_list", []):
        first = min(first, decorator.lineno)
    return first


def is_suppressed(source: Source, finding: Finding) -> bool:
    """True when the statement header or adjacent line allows the rule."""
    return source.suppressions.allows(finding.rule, finding.line)


# -- running ---------------------------------------------------------------

def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_source(source: Source,
                rules: Iterable[LintRule]) -> list[Finding]:
    """Apply every rule to one parsed module, dropping suppressed hits."""
    findings = []
    for rule in rules:
        for finding in rule.check(source):
            if not is_suppressed(source, finding):
                findings.append(finding)
    return findings


def lint_paths(paths: Sequence[str | Path],
               rules: Iterable[LintRule] | None = None,
               root: str | Path | None = None) -> list[Finding]:
    """Lint every Python file under ``paths`` with ``rules``.

    Paths in findings are made relative to ``root`` (default: the
    current directory) with forward slashes, so baselines are portable
    across machines and OSes.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    rules = list(rules)
    root = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            relative = file_path.resolve().relative_to(root.resolve())
        except ValueError:
            relative = file_path
        text = file_path.read_text(encoding="utf-8")
        try:
            source = Source(relative.as_posix(), text)
        except SyntaxError as exc:
            findings.append(Finding(
                rule="REP000", severity="error",
                path=relative.as_posix(), line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        findings.extend(lint_source(source, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# -- baselines -------------------------------------------------------------

def load_baseline(path: str | Path) -> Counter:
    """The accepted-finding multiset from a baseline file (empty if absent)."""
    path = Path(path)
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return Counter(
        (entry["rule"], entry["path"], entry.get("snippet", ""))
        for entry in payload.get("findings", [])
    )


def save_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    payload = {
        "version": 1,
        "comment": (
            "Accepted repro.analysis lint findings. CI fails only on "
            "findings NOT listed here; regenerate with "
            "`repro-covidkg analyze --update-baseline`."
        ),
        "findings": [finding.to_json() for finding in findings],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def new_findings(findings: Iterable[Finding],
                 baseline: Counter) -> list[Finding]:
    """Findings not covered by the baseline (multiset semantics)."""
    remaining = Counter(baseline)
    fresh = []
    for finding in findings:
        if remaining[finding.key()] > 0:
            remaining[finding.key()] -= 1
        else:
            fresh.append(finding)
    return fresh


def format_findings(findings: Sequence[Finding],
                    output_format: str = "text") -> str:
    """Render findings for the CLI (``text`` or ``json``)."""
    if output_format == "json":
        return json.dumps(
            [finding.to_json() for finding in findings], indent=2
        )
    lines = [str(finding) for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)

"""Project-wide symbol table, call graph, and transitive analyses.

:class:`ProjectIndex` stitches the per-module summaries
(:mod:`repro.analysis.summaries`) into one queryable structure:

* **symbol table** — every module/class/function keyed by a
  fully-qualified name (``"repro.gateway.server:Gateway.serve"`` —
  ``module:qualname``, the colon keeps module paths and class nesting
  from aliasing);
* **call resolution** — ``self.m()`` via project-local MRO walk, bare
  names via local defs → classes → imports, dotted chains via import
  substitution and longest-module-prefix lookup.  Anything that cannot
  be pinned to a project function resolves to ``None`` and the
  analyses assume **no effects** for it (conservative: unknown callees
  never manufacture findings);
* **transitive analyses** — memoized, cycle-safe DFS answering "can
  this function block?", "which locks can it end up holding?", and
  "can it fan out?", each with a provenance chain so findings can show
  the full path from symptom to root cause.

The analyses are deliberately an *under*-approximation on call-graph
cycles (a function currently on the DFS stack contributes nothing to
its callers), which keeps them terminating and deterministic; a linter
must never loop, and recursive lock acquisition is racecheck's job at
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.analysis.summaries import (
    FunctionSummary,
    LockAcquire,
    ModuleSummary,
)

#: Callee terminals that hand work to an executor instead of blocking
#: the caller — exempt from REP208's transitive blocking search.
_EXECUTOR_HANDOFF = frozenset({"run_in_executor", "submit", "map",
                               "create_task", "ensure_future",
                               "call_soon", "call_soon_threadsafe"})


@dataclass(frozen=True)
class ChainStep:
    """One hop of a provenance chain (function → site → what happened)."""

    function: str  # fully-qualified "module:qualname"
    path: str
    lineno: int
    note: str

    def __str__(self) -> str:
        return f"{self.function} ({self.path}:{self.lineno}: {self.note})"


def format_chain(chain: Iterable[ChainStep]) -> str:
    return " -> ".join(str(step) for step in chain)


class ProjectIndex:
    """The project call graph: symbols, resolution, transitive queries."""

    def __init__(self, modules: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        #: "module:qualname" -> summary, functions and methods alike.
        self.functions: dict[str, FunctionSummary] = {}
        self._function_module: dict[str, ModuleSummary] = {}
        for module in sorted(modules, key=lambda m: m.name):
            # Last write wins on duplicate module names (shadowed test
            # fixtures); project analysis is per-snapshot, not per-path.
            self.modules[module.name] = module
        self._resolve_imported_locks()
        for module in self.modules.values():
            for fn in module.all_functions():
                key = f"{module.name}:{fn.qualname}"
                self.functions[key] = fn
                self._function_module[key] = module
        self._blocking_memo: dict[str, tuple[str, tuple[ChainStep, ...]]
                                  | None] = {}
        self._locks_memo: dict[str, dict[str,
                                         tuple[ChainStep, ...]]] = {}
        self._fanout_memo: dict[str, tuple[ChainStep, ...] | None] = {}
        self._visiting: set[str] = set()

    # -- imported-guard lock resolution ------------------------------------

    def _resolve_imported_locks(self) -> None:
        """Replace ``@dotted`` provisional lock identities in place.

        Summaries are per-module, so a ``with A:`` over an *imported*
        ``A`` records the provisional identity ``@pkg.locks.A``.  With
        every module in hand we can ask the defining module what ``A``
        actually is: its factory name when it is a lock, nothing when
        it is not (the acquire is dropped — an imported context manager
        is not evidence of locking).
        """
        for name, module in self.modules.items():
            rebuilt_fns = {
                qual: self._rewrite_locks(fn)
                for qual, fn in module.functions.items()
            }
            rebuilt_classes = {
                cname: replace(cls, methods={
                    m: self._rewrite_locks(fn)
                    for m, fn in cls.methods.items()
                })
                for cname, cls in module.classes.items()
            }
            self.modules[name] = replace(
                module, functions=rebuilt_fns, classes=rebuilt_classes)

    def _rewrite_locks(self, fn: FunctionSummary) -> FunctionSummary:
        def needs_work(identities: Iterable[str]) -> bool:
            return any(raw.startswith("@") for raw in identities)

        if not (any(needs_work((a.lock, *a.held))
                    for a in fn.lock_acquires)
                or any(needs_work(c.locks_held) for c in fn.calls)
                or any(needs_work(f.locks_held) for f in fn.fanouts)):
            return fn

        def held(identities: tuple[str, ...]) -> tuple[str, ...]:
            resolved = (self._lock_identity(raw) for raw in identities)
            return tuple(lock for lock in resolved if lock is not None)

        acquires = []
        for acquire in fn.lock_acquires:
            lock = self._lock_identity(acquire.lock)
            if lock is None:
                continue
            acquires.append(LockAcquire(lock=lock,
                                        lineno=acquire.lineno,
                                        held=held(acquire.held)))
        return replace(
            fn,
            lock_acquires=tuple(acquires),
            calls=tuple(replace(c, locks_held=held(c.locks_held))
                        for c in fn.calls),
            fanouts=tuple(replace(f, locks_held=held(f.locks_held))
                          for f in fn.fanouts),
        )

    def _lock_identity(self, raw: str) -> str | None:
        if not raw.startswith("@"):
            return raw
        parts = raw[1:].split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:split]))
            if module is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                return module.locks.get(rest[0])
            return None
        return None

    # -- symbol helpers ----------------------------------------------------

    def module_of(self, key: str) -> ModuleSummary:
        return self._function_module[key]

    def location(self, key: str) -> tuple[str, int]:
        fn = self.functions[key]
        return self._function_module[key].path, fn.lineno

    def _class_of(self, key: str) -> str | None:
        """The class context of a function key, if it is a method."""
        module = self._function_module[key]
        head = self.functions[key].qualname.split(".")[0]
        return head if head in module.classes else None

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, caller: str, callee: str) -> str | None:
        """The function key ``callee`` refers to at ``caller``'s site.

        ``None`` means "unknown": stdlib, third-party, dynamic receiver,
        or a re-export the longest-prefix lookup cannot see through.
        Unknown callees contribute nothing to any transitive analysis.
        """
        if not callee or callee.startswith("?."):
            return None
        module = self._function_module.get(caller)
        if module is None:
            return None
        parts = callee.split(".")
        class_name = self._class_of(caller)
        if parts[0] in ("self", "cls"):
            if class_name is None or len(parts) != 2:
                return None
            return self._resolve_method(module.name, class_name,
                                        parts[1])
        if len(parts) == 1:
            return self._resolve_bare(module, caller, parts[0])
        if parts[0] in module.imports:
            dotted = ".".join([module.imports[parts[0]], *parts[1:]])
        else:
            dotted = callee
        return self._resolve_dotted(dotted)

    def _resolve_bare(self, module: ModuleSummary, caller: str,
                      name: str) -> str | None:
        # Nested siblings first: a closure sees the def beside it.
        qualname = self.functions[caller].qualname
        prefix = qualname
        while prefix:
            candidate = f"{module.name}:{prefix}.{name}"
            if candidate in self.functions:
                return candidate
            prefix = prefix.rsplit(".", 1)[0] if "." in prefix else ""
        if f"{module.name}:{name}" in self.functions:
            return f"{module.name}:{name}"
        if name in module.classes:
            return self._resolve_method(module.name, name, "__init__")
        if name in module.imports:
            return self._resolve_dotted(module.imports[name])
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:split])
            module = self.modules.get(module_name)
            if module is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                if rest[0] in module.functions:
                    return f"{module_name}:{rest[0]}"
                if rest[0] in module.classes:
                    return self._resolve_method(module_name, rest[0],
                                                "__init__")
                return None
            if len(rest) == 2 and rest[0] in module.classes:
                return self._resolve_method(module_name, rest[0],
                                            rest[1])
            return None
        return None

    def _resolve_method(self, module_name: str, class_name: str,
                        method: str) -> str | None:
        """Method lookup along project-visible bases (approximate MRO).

        Bases outside the project stop the walk for that branch —
        the method may live there, which makes the callee *unknown*,
        not absent.
        """
        seen: set[tuple[str, str]] = set()
        queue = [(module_name, class_name)]
        while queue:
            mod_name, cls_name = queue.pop(0)
            if (mod_name, cls_name) in seen:
                continue
            seen.add((mod_name, cls_name))
            module = self.modules.get(mod_name)
            cls = module.classes.get(cls_name) if module else None
            if cls is None:
                continue
            if method in cls.methods:
                return f"{mod_name}:{cls_name}.{method}"
            for base in cls.bases:
                resolved = self._resolve_class(module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_class(self, module: ModuleSummary,
                       base: str) -> tuple[str, str] | None:
        parts = base.split(".")
        if len(parts) == 1:
            if parts[0] in module.classes:
                return (module.name, parts[0])
            if parts[0] in module.imports:
                parts = module.imports[parts[0]].split(".")
            else:
                return None
        elif parts[0] in module.imports:
            parts = [*module.imports[parts[0]].split("."), *parts[1:]]
        for split in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:split])
            other = self.modules.get(mod_name)
            if other is None:
                continue
            rest = parts[split:]
            if len(rest) == 1 and rest[0] in other.classes:
                return (mod_name, rest[0])
            return None
        return None

    # -- transitive analyses -----------------------------------------------

    def blocking_chain(self, key: str
                       ) -> tuple[str, tuple[ChainStep, ...]] | None:
        """(reason, chain) when ``key`` can block its calling thread.

        Async callees are skipped (calling one only builds a
        coroutine), as are awaited call sites and executor hand-offs
        (``submit``/``run_in_executor``/...): those move the work off
        the calling thread by construction.
        """
        if key in self._blocking_memo:
            return self._blocking_memo[key]
        if key in self._visiting:
            return None
        fn = self.functions.get(key)
        if fn is None:
            return None
        self._visiting.add(key)
        try:
            result = None
            if fn.blocking:
                site = fn.blocking[0]
                path, _ = self.location(key)
                result = (site.reason, (ChainStep(
                    key, path, site.lineno, site.reason),))
            else:
                for call in fn.calls:
                    if call.awaited:
                        continue
                    if call.callee.rsplit(".", 1)[-1] in \
                            _EXECUTOR_HANDOFF:
                        continue
                    callee_key = self.resolve_call(key, call.callee)
                    if callee_key is None or \
                            self.functions[callee_key].is_async:
                        continue
                    sub = self.blocking_chain(callee_key)
                    if sub is not None:
                        reason, chain = sub
                        path, _ = self.location(key)
                        step = ChainStep(key, path, call.lineno,
                                         f"calls {callee_key}")
                        result = (reason, (step, *chain))
                        break
        finally:
            self._visiting.discard(key)
        self._blocking_memo[key] = result
        return result

    def transitive_locks(self, key: str
                         ) -> dict[str, tuple[ChainStep, ...]]:
        """Every lock ``key`` may acquire, with one provenance chain each."""
        if key in self._locks_memo:
            return self._locks_memo[key]
        if key in self._visiting:
            return {}
        fn = self.functions.get(key)
        if fn is None:
            return {}
        self._visiting.add(key)
        try:
            result: dict[str, tuple[ChainStep, ...]] = {}
            path, _ = self.location(key)
            for acquire in fn.lock_acquires:
                result.setdefault(acquire.lock, (ChainStep(
                    key, path, acquire.lineno,
                    f"acquires {acquire.lock}"),))
            for call in fn.calls:
                callee_key = self.resolve_call(key, call.callee)
                if callee_key is None:
                    continue
                sub = self.transitive_locks(callee_key)
                if not sub:
                    continue
                step = ChainStep(key, path, call.lineno,
                                 f"calls {callee_key}")
                for lock, chain in sub.items():
                    result.setdefault(lock, (step, *chain))
        finally:
            self._visiting.discard(key)
        self._locks_memo[key] = result
        return result

    def fanout_chain(self, key: str) -> tuple[ChainStep, ...] | None:
        """A chain to a ``scatter``/``scatter_first`` site, if any."""
        if key in self._fanout_memo:
            return self._fanout_memo[key]
        if key in self._visiting:
            return None
        fn = self.functions.get(key)
        if fn is None:
            return None
        self._visiting.add(key)
        try:
            result: tuple[ChainStep, ...] | None = None
            path, _ = self.location(key)
            if fn.fanouts:
                site = fn.fanouts[0]
                result = (ChainStep(key, path, site.lineno,
                                    f"fans out via {site.kind}()"),)
            else:
                for call in fn.calls:
                    callee_key = self.resolve_call(key, call.callee)
                    if callee_key is None:
                        continue
                    sub = self.fanout_chain(callee_key)
                    if sub is not None:
                        result = (ChainStep(key, path, call.lineno,
                                            f"calls {callee_key}"),
                                  *sub)
                        break
        finally:
            self._visiting.discard(key)
        self._fanout_memo[key] = result
        return result

    # -- lock-order graph --------------------------------------------------

    def lock_order_edges(self
                         ) -> dict[tuple[str, str],
                                   tuple[ChainStep, ...]]:
        """Static held→acquired edges with one provenance chain each.

        Same vocabulary as racecheck's runtime graph: an edge ``(A, B)``
        means some path acquires ``B`` while holding ``A`` — either
        lexically in one function or across a call boundary (call site
        holds ``A``, callee transitively acquires ``B``).
        """
        edges: dict[tuple[str, str], tuple[ChainStep, ...]] = {}
        for key, fn in self.functions.items():
            path, _ = self.location(key)
            for acquire in fn.lock_acquires:
                for held in acquire.held:
                    if held == acquire.lock:
                        continue
                    edges.setdefault((held, acquire.lock), (ChainStep(
                        key, path, acquire.lineno,
                        f"acquires {acquire.lock} while holding "
                        f"{held}"),))
            for call in fn.calls:
                if not call.locks_held:
                    continue
                callee_key = self.resolve_call(key, call.callee)
                if callee_key is None:
                    continue
                sub = self.transitive_locks(callee_key)
                if not sub:
                    continue
                step = ChainStep(key, path, call.lineno,
                                 f"calls {callee_key}")
                for lock, chain in sub.items():
                    for held in call.locks_held:
                        if held == lock:
                            continue
                        edges.setdefault((held, lock), (step, *chain))
        return edges

    # -- iteration helpers for the rules -----------------------------------

    def async_functions(self) -> Iterator[str]:
        for key, fn in self.functions.items():
            if fn.is_async:
                yield key

"""Pre-flight aggregation-pipeline validation.

:func:`validate_pipeline` statically checks a pipeline *before* it is
scattered across shards: stage names, stage shapes, expression operator
documents, ``$function`` resolution against a :class:`FunctionRegistry`,
``$match`` query operators, plus performance *warnings* for the two
orderings the paper's E3 experiment measures (``$match`` not first — no
index pushdown — and ``$sort`` after ``$limit``).

The operator/stage vocabularies are imported from the evaluator modules
(:data:`repro.docstore.aggregation.STAGE_NAMES` etc.), so the validator
cannot drift from what the engine actually implements.

A malformed pipeline otherwise fails on the first shard mid-scatter —
after the fan-out has already burned executor slots on every other
shard, and with the error surfacing as whichever shard happened to run
first.  Validation is O(pipeline size), independent of data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.docstore.aggregation import (
    ACCUMULATORS,
    EXPRESSION_OPERATORS,
    STAGE_NAMES,
)
from repro.docstore.functions import FunctionRegistry
from repro.docstore.matching import LOGICAL_OPERATORS, QUERY_OPERATORS
from repro.errors import AggregationError


@dataclass(frozen=True)
class PipelineIssue:
    """One problem found in a pipeline document."""

    severity: str  # "error" | "warning"
    stage_index: int  # -1 for pipeline-level issues
    stage: str  # "$sort", ... or "" for pipeline-level issues
    message: str

    def __str__(self) -> str:
        where = f"stage {self.stage_index} ({self.stage})" \
            if self.stage_index >= 0 else "pipeline"
        return f"[{self.severity}] {where}: {self.message}"


class PipelineValidationError(AggregationError):
    """A pipeline failed pre-flight validation (before any fan-out)."""

    def __init__(self, issues: list[PipelineIssue]) -> None:
        self.issues = issues
        details = "; ".join(str(issue) for issue in issues)
        super().__init__(f"invalid pipeline: {details}")


def ensure_valid_pipeline(stages: Any,
                          registry: FunctionRegistry | None = None
                          ) -> list[PipelineIssue]:
    """Raise :class:`PipelineValidationError` on errors; return warnings."""
    issues = validate_pipeline(stages, registry)
    errors = [issue for issue in issues if issue.severity == "error"]
    if errors:
        raise PipelineValidationError(errors)
    return issues


def validate_pipeline(stages: Any,
                      registry: FunctionRegistry | None = None
                      ) -> list[PipelineIssue]:
    """Every error and warning in ``stages``, without executing anything.

    ``registry`` enables ``$function`` name resolution; pass ``None`` to
    skip that check (e.g. when per-query functions are registered later).
    """
    issues: list[PipelineIssue] = []

    def problem(severity: str, index: int, stage: str, message: str) -> None:
        issues.append(PipelineIssue(severity, index, stage, message))

    if not isinstance(stages, (list, tuple)):
        problem("error", -1, "",
                f"pipeline must be a list of stages, got "
                f"{type(stages).__name__}")
        return issues

    for index, stage in enumerate(stages):
        if not isinstance(stage, dict) or len(stage) != 1:
            problem("error", index, "",
                    f"each stage must be a single-key document, got "
                    f"{stage!r}")
            continue
        name, spec = next(iter(stage.items()))
        if name not in STAGE_NAMES:
            hint = _closest(name, STAGE_NAMES)
            problem("error", index, name,
                    f"unknown stage {name!r}"
                    + (f" (did you mean {hint!r}?)" if hint else ""))
            continue
        checker = _STAGE_CHECKERS.get(name)
        if checker is not None:
            checker(spec, index, registry, problem)

    _check_ordering(stages, problem)
    return issues


# -- per-stage shape checks ------------------------------------------------

def _check_match(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict):
        problem("error", index, "$match", "spec must be a query document")
        return
    _check_query(spec, index, problem)


def _check_query(query: dict[str, Any], index: int, problem) -> None:
    for key, value in query.items():
        if key.startswith("$"):
            if key not in LOGICAL_OPERATORS:
                problem("error", index, "$match",
                        f"unknown top-level operator {key!r}; logical "
                        f"operators are {sorted(LOGICAL_OPERATORS)}")
            elif not isinstance(value, (list, tuple)) or not value:
                problem("error", index, "$match",
                        f"{key} requires a non-empty list of sub-queries")
            else:
                for sub in value:
                    if isinstance(sub, dict):
                        _check_query(sub, index, problem)
                    else:
                        problem("error", index, "$match",
                                f"{key} sub-query must be a document, "
                                f"got {sub!r}")
        elif _is_operator_doc(value):
            for op, operand in value.items():
                if op not in QUERY_OPERATORS:
                    hint = _closest(op, QUERY_OPERATORS)
                    problem("error", index, "$match",
                            f"unknown query operator {op!r} on field "
                            f"{key!r}"
                            + (f" (did you mean {hint!r}?)" if hint else ""))
                elif op in ("$in", "$nin", "$all") and \
                        not isinstance(operand, (list, tuple)):
                    problem("error", index, "$match",
                            f"{op} on field {key!r} requires an array")
                elif op == "$elemMatch" and isinstance(operand, dict):
                    _check_query(operand, index, problem)


def _is_operator_doc(value: Any) -> bool:
    return (isinstance(value, dict) and bool(value)
            and all(key.startswith("$") for key in value))


def _check_project(spec: Any, index: int, registry: Any, problem,
                   stage: str = "$project") -> None:
    if not isinstance(spec, dict) or not spec:
        problem("error", index, stage, "spec must be a non-empty document")
        return
    for path, expression in spec.items():
        if expression in (0, 1, True, False) and stage == "$project":
            continue
        _check_expression(expression, index, stage, registry, problem)


def _check_add_fields(spec: Any, index: int, registry: Any, problem) -> None:
    _check_project(spec, index, registry, problem, stage="$addFields")


def _check_function(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict):
        problem("error", index, "$function", "spec must be a document")
        return
    name = spec.get("name")
    if not name or not isinstance(name, str):
        problem("error", index, "$function",
                "requires a non-empty string 'name'")
    elif registry is not None and name not in registry:
        problem("error", index, "$function",
                f"{name!r} is not registered; registered functions: "
                f"{registry.names()}")
    args = spec.get("args")
    if args is not None and not isinstance(args, (list, tuple)):
        problem("error", index, "$function", "'args' must be a list")
    elif args:
        for arg in args:
            if arg == "$$ROOT":
                continue
            _check_expression(arg, index, "$function", registry, problem)


def _check_sort(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict) or not spec:
        problem("error", index, "$sort",
                "spec must be a non-empty {field: 1|-1} document")
        return
    for path, direction in spec.items():
        if direction not in (1, -1):
            problem("error", index, "$sort",
                    f"direction for {path!r} must be 1 or -1, got "
                    f"{direction!r}")


def _check_nonnegative_int(stage: str):
    def check(spec: Any, index: int, registry: Any, problem) -> None:
        if isinstance(spec, bool) or not isinstance(spec, int) or spec < 0:
            problem("error", index, stage,
                    f"spec must be a non-negative integer, got {spec!r}")
    return check


def _check_count(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, str) or not spec:
        problem("error", index, "$count",
                f"spec must be a non-empty output field name, got {spec!r}")


def _check_unwind(spec: Any, index: int, registry: Any, problem) -> None:
    path = spec.get("path") if isinstance(spec, dict) else spec
    if not isinstance(path, str) or not path.startswith("$"):
        problem("error", index, "$unwind",
                f"path must be a string starting with '$', got {path!r}")


def _check_group(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict):
        problem("error", index, "$group", "spec must be a document")
        return
    if "_id" not in spec:
        problem("error", index, "$group", "requires an _id expression")
    for out_field, acc_spec in spec.items():
        if out_field == "_id":
            if spec["_id"] is not None:
                _check_expression(spec["_id"], index, "$group", registry,
                                  problem)
            continue
        if not isinstance(acc_spec, dict) or len(acc_spec) != 1:
            problem("error", index, "$group",
                    f"accumulator for {out_field!r} must be a single-key "
                    f"document, got {acc_spec!r}")
            continue
        acc, expr = next(iter(acc_spec.items()))
        if acc not in ACCUMULATORS:
            hint = _closest(acc, ACCUMULATORS)
            problem("error", index, "$group",
                    f"unknown accumulator {acc!r} for {out_field!r}"
                    + (f" (did you mean {hint!r}?)" if hint else ""))
        elif acc != "$count":
            _check_expression(expr, index, "$group", registry, problem)


def _check_lookup(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict):
        problem("error", index, "$lookup", "spec must be a document")
        return
    if spec.get("from") is None:
        problem("error", index, "$lookup", "missing required field 'from'")
    for required in ("localField", "foreignField", "as"):
        if not spec.get(required):
            problem("error", index, "$lookup",
                    f"missing required field {required!r}")


def _check_facet(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict) or not spec:
        problem("error", index, "$facet",
                "spec must be a non-empty {name: sub-pipeline} document")
        return
    for facet_name, sub_stages in spec.items():
        for issue in validate_pipeline(sub_stages, registry):
            problem(issue.severity, index, "$facet",
                    f"facet {facet_name!r}: {issue.message}")


def _check_sample(spec: Any, index: int, registry: Any, problem) -> None:
    size = spec.get("size") if isinstance(spec, dict) else None
    if isinstance(size, bool) or not isinstance(size, int) or size <= 0:
        problem("error", index, "$sample",
                f"requires a positive integer 'size', got {size!r}")


def _check_bucket(spec: Any, index: int, registry: Any, problem) -> None:
    if not isinstance(spec, dict):
        problem("error", index, "$bucket", "spec must be a document")
        return
    boundaries = spec.get("boundaries")
    if not isinstance(boundaries, (list, tuple)) or len(boundaries) < 2:
        problem("error", index, "$bucket",
                "requires at least two sorted boundaries")
    else:
        try:
            if sorted(boundaries) != list(boundaries):
                problem("error", index, "$bucket",
                        "boundaries must be sorted ascending")
        except TypeError:
            problem("error", index, "$bucket",
                    "boundaries must be mutually comparable")
    if "groupBy" not in spec:
        problem("error", index, "$bucket", "requires a groupBy expression")
    else:
        _check_expression(spec["groupBy"], index, "$bucket", registry,
                          problem)


def _check_replace_root(spec: Any, index: int, registry: Any,
                        problem) -> None:
    if not isinstance(spec, dict) or "newRoot" not in spec:
        problem("error", index, "$replaceRoot", "requires newRoot")
        return
    _check_expression(spec["newRoot"], index, "$replaceRoot", registry,
                      problem)


def _check_sort_by_count(spec: Any, index: int, registry: Any,
                         problem) -> None:
    _check_expression(spec, index, "$sortByCount", registry, problem)


_STAGE_CHECKERS = {
    "$match": _check_match,
    "$project": _check_project,
    "$addFields": _check_add_fields,
    "$function": _check_function,
    "$sort": _check_sort,
    "$skip": _check_nonnegative_int("$skip"),
    "$limit": _check_nonnegative_int("$limit"),
    "$count": _check_count,
    "$unwind": _check_unwind,
    "$group": _check_group,
    "$lookup": _check_lookup,
    "$facet": _check_facet,
    "$sample": _check_sample,
    "$bucket": _check_bucket,
    "$replaceRoot": _check_replace_root,
    "$sortByCount": _check_sort_by_count,
}


# -- expressions -----------------------------------------------------------

#: Operators with a fixed operand count (list form).
_ARITY = {
    "$subtract": 2, "$divide": 2, "$ifNull": 2, "$eq": 2, "$ne": 2,
    "$gt": 2, "$gte": 2, "$lt": 2, "$lte": 2, "$in": 2,
    "$arrayElemAt": 2,
}


def _check_expression(expression: Any, index: int, stage: str,
                      registry: Any, problem) -> None:
    """Recursively validate one aggregation expression."""
    if isinstance(expression, str):
        return  # "$path", "$$variable", or a literal string
    if isinstance(expression, (list, tuple)):
        for item in expression:
            _check_expression(item, index, stage, registry, problem)
        return
    if not isinstance(expression, dict):
        return  # scalar literal
    if len(expression) == 1:
        op, operand = next(iter(expression.items()))
        if op.startswith("$"):
            if op not in EXPRESSION_OPERATORS:
                hint = _closest(op, EXPRESSION_OPERATORS)
                problem("error", index, stage,
                        f"unknown expression operator {op!r}"
                        + (f" (did you mean {hint!r}?)" if hint else ""))
                return
            arity = _ARITY.get(op)
            if arity is not None and isinstance(operand, (list, tuple)) \
                    and len(operand) != arity:
                problem("error", index, stage,
                        f"{op} takes exactly {arity} operands, got "
                        f"{len(operand)}")
            if op == "$cond":
                _check_cond(operand, index, stage, problem)
            if op == "$function":
                if not isinstance(operand, dict) or "name" not in operand:
                    problem("error", index, stage,
                            "$function expression requires a 'name'")
                elif registry is not None and \
                        operand["name"] not in registry:
                    problem("error", index, stage,
                            f"$function {operand['name']!r} is not "
                            f"registered")
            if op in ("$filter", "$map"):
                required = "cond" if op == "$filter" else "in"
                if not isinstance(operand, dict) or \
                        "input" not in operand or required not in operand:
                    problem("error", index, stage,
                            f"{op} requires 'input' and {required!r}")
                    return
            if isinstance(operand, (list, tuple, dict)) \
                    and op != "$literal":
                _check_expression(operand, index, stage, registry, problem)
            return
    for value in expression.values():
        _check_expression(value, index, stage, registry, problem)


def _check_cond(operand: Any, index: int, stage: str, problem) -> None:
    if isinstance(operand, dict):
        missing = {"if", "then", "else"} - set(operand)
        if missing:
            problem("error", index, stage,
                    f"$cond document form missing {sorted(missing)}")
    elif not isinstance(operand, (list, tuple)) or len(operand) != 3:
        problem("error", index, stage,
                "$cond takes [if, then, else] or a document with those "
                "keys")


# -- cost estimation -------------------------------------------------------

#: Cost multiplier for evaluating a registered ``$function`` per document
#: (ranking functions tokenize/score full text — far heavier than a
#: field comparison).
FUNCTION_COST_FACTOR = 4.0

#: Cost multiplier for a ``$function`` stage the engine can execute on
#: the columnar numpy kernels (:mod:`repro.search.columnar`): no
#: per-document Python, so it prices like a cheap linear stage.
KERNEL_FUNCTION_COST_FACTOR = 1.0

#: Worst-case fan-out assumed for ``$unwind`` when the array length is
#: unknowable statically.
UNWIND_FANOUT = 4.0

#: Per-document multiplier for ``$lookup`` (hash-join build + probe).
LOOKUP_COST_FACTOR = 2.0


@dataclass(frozen=True)
class StageCost:
    """Worst-case price of one stage: documents in/out and work units."""

    stage: str
    documents_in: float
    documents_out: float
    cost: float


@dataclass(frozen=True)
class PipelineCostEstimate:
    """Worst-case document flow and total work units for a pipeline.

    One *work unit* is "touch one document once with a cheap
    operation"; heavier stages scale it (``$function`` by
    :data:`FUNCTION_COST_FACTOR`, sorts by ``log2`` of what they keep).
    The estimate is an upper bound: filters are assumed to pass every
    document, so admission control can price a request before running
    it without ever under-charging.
    """

    stages: tuple[StageCost, ...]
    total_cost: float
    documents_in: float
    documents_out: float


def estimate_pipeline_cost(pipeline: Any,
                           shard_document_counts: Any,
                           function_cost_factor: float = FUNCTION_COST_FACTOR
                           ) -> PipelineCostEstimate:
    """Price ``pipeline`` against per-shard document counts, worst case.

    ``shard_document_counts`` is a sequence of per-shard sizes (one int
    per shard; a bare int is treated as a single shard).  Each shard
    runs the per-document prefix independently, so stage costs are the
    sum over shards of that shard's worst-case flow — which for the
    linear stages equals pricing the union, and for sorts is *cheaper*
    than one global sort, matching the scatter-gather execution model.

    ``function_cost_factor`` prices ``$function`` stages; callers that
    know the query runs on the columnar kernels pass
    :data:`KERNEL_FUNCTION_COST_FACTOR` instead of the scalar default.

    Unknown or malformed stages are priced conservatively (cost = docs
    in, docs out = docs in); shape errors are
    :func:`validate_pipeline`'s job, not the estimator's.
    """
    if isinstance(shard_document_counts, (int, float)):
        shard_document_counts = [shard_document_counts]
    docs = float(sum(max(0, int(count)) for count in shard_document_counts))
    documents_in = docs
    stage_costs: list[StageCost] = []
    total = 0.0
    stages = list(pipeline) if isinstance(pipeline, (list, tuple)) else []
    index = 0
    while index < len(stages):
        stage = stages[index]
        if not isinstance(stage, dict) or len(stage) != 1:
            index += 1
            continue
        name, spec = next(iter(stage.items()))
        if name == "$sort":
            # A $sort feeding $skip/$limit is executed as a bounded
            # top-k merge (PR 2); price n*log2(k), not n*log2(n).
            keep = _trailing_page_size(stages, index)
            if keep is not None:
                cost = docs * _log2(min(docs, keep))
                docs_out = min(docs, keep)
                # Fold the $skip/$limit stages into this one's price;
                # they are free once the heap has truncated the flow.
                while index + 1 < len(stages) and \
                        _single_key(stages[index + 1]) in ("$skip", "$limit"):
                    index += 1
                    docs_out = _apply_skip_limit(stages[index], docs_out)
                name = "$sort(top-k)"
            else:
                cost = docs * _log2(docs)
                docs_out = docs
        elif name == "$function":
            cost = docs * function_cost_factor
            docs_out = docs
        elif name in ("$skip", "$limit"):
            cost = docs
            docs_out = _apply_skip_limit(stage, docs)
        elif name == "$count":
            cost = docs
            docs_out = 1.0 if docs else 0.0
        elif name == "$sample":
            size = spec.get("size") if isinstance(spec, dict) else None
            cost = docs
            docs_out = min(docs, float(size)) \
                if isinstance(size, (int, float)) and size > 0 else docs
        elif name == "$unwind":
            cost = docs * UNWIND_FANOUT
            docs_out = docs * UNWIND_FANOUT
        elif name == "$group" or name == "$sortByCount" or name == "$bucket":
            # Worst case: every document forms its own group.
            cost = docs
            docs_out = docs
        elif name == "$lookup":
            cost = docs * LOOKUP_COST_FACTOR
            docs_out = docs
        elif name == "$facet":
            # Every facet replays the full input through its own
            # sub-pipeline; the stage itself emits one document.
            cost = docs
            if isinstance(spec, dict):
                for sub_stages in spec.values():
                    sub = estimate_pipeline_cost(
                        sub_stages, [docs],
                        function_cost_factor=function_cost_factor,
                    )
                    cost += sub.total_cost
            docs_out = 1.0 if docs else 0.0
        else:
            # $match/$project/$addFields/$replaceRoot and anything new:
            # one cheap touch per document, worst case passes them all.
            cost = docs
            docs_out = docs
        stage_costs.append(StageCost(name, docs, docs_out, cost))
        total += cost
        docs = docs_out
        index += 1
    return PipelineCostEstimate(tuple(stage_costs), total, documents_in, docs)


def _single_key(stage: Any) -> str | None:
    if isinstance(stage, dict) and len(stage) == 1:
        return next(iter(stage))
    return None


def _trailing_page_size(stages: list, sort_index: int) -> float | None:
    """``skip + limit`` when the $sort feeds only $skip/$limit stages."""
    skip = 0.0
    limit: float | None = None
    for stage in stages[sort_index + 1:]:
        name = _single_key(stage)
        if name == "$skip":
            spec = stage["$skip"]
            if isinstance(spec, int) and not isinstance(spec, bool):
                skip += max(0, spec)
        elif name == "$limit":
            spec = stage["$limit"]
            if isinstance(spec, int) and not isinstance(spec, bool):
                limit = max(0, spec)
            break
        else:
            break
    if limit is None:
        return None
    return skip + limit


def _apply_skip_limit(stage: dict, docs: float) -> float:
    name, spec = next(iter(stage.items()))
    if isinstance(spec, bool) or not isinstance(spec, int) or spec < 0:
        return docs
    if name == "$skip":
        return max(0.0, docs - spec)
    return min(docs, float(spec))


def _log2(value: float) -> float:
    from math import log2

    return log2(max(2.0, value))


# -- pipeline-level ordering (performance) ---------------------------------

def _check_ordering(stages: list, problem) -> None:
    """The E3 orderings: $match first (pushdown), $sort before $limit."""
    names = [
        next(iter(stage)) for stage in stages
        if isinstance(stage, dict) and len(stage) == 1
    ]
    if "$match" in names and names[0] != "$match":
        first_match = names.index("$match")
        # A $match after $group/$unwind/$function may depend on computed
        # fields; only flag matches that merely trail other filters.
        if not any(name in ("$group", "$unwind", "$function", "$addFields",
                            "$project", "$facet", "$bucket", "$lookup",
                            "$replaceRoot", "$sortByCount")
                   for name in names[:first_match]):
            problem("warning", first_match, "$match",
                    "$match is not the first stage; moving it first "
                    "enables index pushdown and shrinks every later stage")
    for position, name in enumerate(names):
        if name == "$sort" and "$limit" in names[:position]:
            problem("warning", position, "$sort",
                    "$sort after $limit sorts an already-truncated "
                    "result; sort first (enables bounded top-k merge)")
            break


# -- misc ------------------------------------------------------------------

def _closest(candidate: str, vocabulary: frozenset[str]) -> str | None:
    """The closest known name, for did-you-mean hints (small edit bias)."""
    from difflib import get_close_matches

    matches = get_close_matches(candidate, vocabulary, n=1, cutoff=0.6)
    return matches[0] if matches else None

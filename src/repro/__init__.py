"""repro — a reproduction of COVIDKG.ORG (EDBT 2023).

COVIDKG.ORG is a web-scale, interactive COVID-19 knowledge graph built
from the CORD-19 literature, served through three advanced aggregation-
pipeline search engines, and kept current by deep-learning table-metadata
classifiers and an embedding-driven fusion module.

Quick start::

    from repro import CovidKG, CorpusGenerator

    corpus = CorpusGenerator().papers(100)
    system = CovidKG()
    system.train(corpus[:40])
    system.ingest(corpus)
    for hit in system.search("vaccine side effects"):
        print(hit.title)

Subpackages: :mod:`repro.docstore` (sharded JSON store + aggregation
pipelines), :mod:`repro.text` (tokenizer/stemmer/TF-IDF/normalizer),
:mod:`repro.tables` (HTML table parser + positional features),
:mod:`repro.corpus` (synthetic CORD-19/WDC generators),
:mod:`repro.neural` (numpy DL framework: GRU/LSTM/BiRNN),
:mod:`repro.ml` (SVM, k-means, cross-validation),
:mod:`repro.embeddings` (Word2Vec + tabular embeddings),
:mod:`repro.classify` (the Figure 3 BiGRU ensemble + SVM),
:mod:`repro.search` (the three engines), :mod:`repro.kg` (the knowledge
graph, fusion, meta-profiles), :mod:`repro.api` (the system facade),
:mod:`repro.serve` (the concurrent query-serving tier).
"""

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import seed_covid_graph
from repro.serve.service import QueryService, ServeConfig

__version__ = "1.0.0"

__all__ = [
    "CovidKG",
    "CovidKGConfig",
    "CorpusGenerator",
    "GeneratorConfig",
    "KnowledgeGraph",
    "QueryService",
    "ServeConfig",
    "seed_covid_graph",
    "__version__",
]

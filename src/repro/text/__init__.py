"""Text/NLP substrate: tokenization, stemming, numeric normalization,
vocabulary construction and TF-IDF weighting.

These utilities underpin both the advanced search engines (Section 2.1 of
the paper) and the table-metadata classification pre-processing
(Section 3.4).
"""

from repro.text.normalize import NumericNormalizer, normalize_tuple
from repro.text.stemmer import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tfidf import TfIdfModel
from repro.text.tokenizer import sentences, tokenize, tokenize_query
from repro.text.vocabulary import Vocabulary

__all__ = [
    "NumericNormalizer",
    "normalize_tuple",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "TfIdfModel",
    "sentences",
    "tokenize",
    "tokenize_query",
    "Vocabulary",
]

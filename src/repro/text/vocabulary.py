"""Frequency-ranked vocabulary / feature space (paper Section 3.2).

The paper builds a 100,000-dimensional feature space by taking every term
in the corpora, sorting by frequency, and cutting off noise words and spam.
:class:`Vocabulary` reproduces that construction with an explicit
``max_terms`` knob so the E7 benchmark can sweep the dimensionality.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.errors import ModelError
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import tokenize

#: Index reserved for out-of-vocabulary terms.
UNKNOWN_INDEX = 0
#: Token string reported for out-of-vocabulary terms.
UNKNOWN_TOKEN = "<UNK>"


class Vocabulary:
    """A frequency-ordered term -> index mapping with a noise cutoff.

    Index 0 is reserved for unknown terms; real terms occupy ``1..size-1``
    in decreasing frequency order, which makes truncating to a smaller
    feature space a simple prefix cut.
    """

    def __init__(self, max_terms: int = 100_000, min_count: int = 1,
                 drop_stopwords: bool = True) -> None:
        if max_terms < 1:
            raise ModelError("max_terms must be positive")
        self.max_terms = max_terms
        self.min_count = min_count
        self.drop_stopwords = drop_stopwords
        self._index: dict[str, int] = {}
        self._terms: list[str] = [UNKNOWN_TOKEN]
        self._counts: Counter[str] = Counter()
        self._fitted = False

    # -- construction ---------------------------------------------------

    def add_text(self, text: str) -> None:
        """Accumulate term counts from a raw text fragment."""
        self._counts.update(tokenize(text))
        self._fitted = False

    def add_tokens(self, tokens: Iterable[str]) -> None:
        """Accumulate term counts from pre-tokenized input."""
        self._counts.update(token.lower() for token in tokens)
        self._fitted = False

    def build(self) -> "Vocabulary":
        """Freeze the index: sort by frequency and apply the cutoffs."""
        self._index = {}
        self._terms = [UNKNOWN_TOKEN]
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        for term, count in ranked:
            if len(self._terms) >= self.max_terms:
                break
            if count < self.min_count:
                break
            if self.drop_stopwords and term in STOPWORDS:
                continue
            self._index[term] = len(self._terms)
            self._terms.append(term)
        self._fitted = True
        return self

    @classmethod
    def from_texts(cls, texts: Iterable[str], **kwargs: object) -> "Vocabulary":
        """Build a vocabulary in one shot from an iterable of texts."""
        vocabulary = cls(**kwargs)  # type: ignore[arg-type]
        for text in texts:
            vocabulary.add_text(text)
        return vocabulary.build()

    # -- lookups ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term.lower() in self._index

    def index_of(self, term: str) -> int:
        """Index of ``term``, or :data:`UNKNOWN_INDEX` when out of vocab."""
        return self._index.get(term.lower(), UNKNOWN_INDEX)

    def term_at(self, index: int) -> str:
        """Inverse lookup; raises ``IndexError`` for invalid indexes."""
        return self._terms[index]

    def count_of(self, term: str) -> int:
        """Raw corpus frequency of ``term`` (0 when never seen)."""
        return self._counts.get(term.lower(), 0)

    def encode(self, text: str) -> list[int]:
        """Tokenize ``text`` and map every token to its index."""
        if not self._fitted:
            raise ModelError("Vocabulary.build() must run before encode()")
        return [self.index_of(token) for token in tokenize(text)]

    def encode_tokens(self, tokens: Iterable[str]) -> list[int]:
        """Map pre-tokenized input to indexes."""
        if not self._fitted:
            raise ModelError("Vocabulary.build() must run before encode()")
        return [self.index_of(token) for token in tokens]

    def truncated(self, max_terms: int) -> "Vocabulary":
        """A copy restricted to the ``max_terms`` most frequent terms.

        Used by the dimensionality-sweep benchmark (E7): because terms are
        frequency-ordered, truncation keeps exactly the head of the space.
        """
        clone = Vocabulary(
            max_terms=max_terms,
            min_count=self.min_count,
            drop_stopwords=self.drop_stopwords,
        )
        clone._counts = Counter(self._counts)
        return clone.build()

    @property
    def terms(self) -> list[str]:
        """All indexed terms (position == index)."""
        return list(self._terms)

    # -- serialization ----------------------------------------------------

    def to_json(self) -> dict:
        """JSON form carrying counts and settings (rebuildable)."""
        return {
            "max_terms": self.max_terms,
            "min_count": self.min_count,
            "drop_stopwords": self.drop_stopwords,
            "counts": dict(self._counts),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Vocabulary":
        vocabulary = cls(
            max_terms=int(data["max_terms"]),
            min_count=int(data["min_count"]),
            drop_stopwords=bool(data["drop_stopwords"]),
        )
        vocabulary._counts = Counter(data.get("counts", {}))
        return vocabulary.build()

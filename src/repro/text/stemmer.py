"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

The search engines use "stemming match capability on a tokenized query"
(paper Section 2.1); this module provides the stemmer they share.  The
implementation follows the original five-step definition.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Classic Porter stemmer.

    >>> PorterStemmer().stem("vaccinations")
    'vaccin'
    >>> PorterStemmer().stem("caresses")
    'caress'
    """

    def stem(self, word: str) -> str:
        """Return the stem of ``word`` (lowercased)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- consonant/vowel machinery ------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        char = word[i]
        if char in _VOWELS:
            return False
        if char == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The Porter measure m: number of VC sequences in the stem."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem)):
            is_vowel = not cls._is_consonant(stem, i)
            if previous_was_vowel and not is_vowel:
                m += 1
            previous_was_vowel = is_vowel
        return m

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """*o condition: stem ends cvc where the final c is not w, x or y."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    def _replace_if_m(self, word: str, suffix: str, replacement: str,
                      min_m: int) -> str | None:
        """Replace ``suffix`` with ``replacement`` when m(stem) > min_m."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_m:
            return stem + replacement
        return word

    # -- the five steps ------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"),
        ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
        ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
        ("iviti", "ive"), ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            result = self._replace_if_m(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"),
        ("iciti", "ic"), ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            result = self._replace_if_m(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant",
        "ement", "ment", "ent", "ou", "ism", "ate", "iti", "ous",
        "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        if word.endswith("ion") and len(word) > 3 and word[-4] in "st":
            stem = word[:-3]
            if self._measure(stem) > 1:
                return stem
            return word
        for suffix in self._STEP4_SUFFIXES:
            result = self._replace_if_m(word, suffix, "", 1)
            if result is not None:
                return result
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            word.endswith("l")
            and self._ends_double_consonant(word)
            and self._measure(word) > 1
        ):
            return word[:-1]
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with a shared :class:`PorterStemmer` instance."""
    return _DEFAULT.stem(word)

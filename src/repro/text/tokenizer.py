"""Tokenizers for corpus text and user queries.

The search engines (paper Section 2.1) support two query styles:

* plain terms, which are stemmed and matched loosely, and
* quoted phrases (``"mechanical ventilation"``), which are matched exactly.

:func:`tokenize_query` preserves that distinction by returning
:class:`QueryToken` objects carrying an ``exact`` flag.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# A word is a run of letters/digits possibly joined by internal hyphens,
# apostrophes, slashes, or dots (so "COVID-19", "mm/dd/yy" and "3.5" survive
# as single tokens).
_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[-'/.][A-Za-z0-9]+)*")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9])")
_QUOTED_RE = re.compile(r'"([^"]*)"')


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word tokens.

    >>> tokenize("COVID-19 vaccine side-effects, 3.5% of cases!")
    ['covid-19', 'vaccine', 'side-effects', '3.5', 'of', 'cases']
    """
    if not text:
        return []
    tokens = _WORD_RE.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tokens


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation.

    The splitter is intentionally simple: it is only used for snippet
    extraction, where an occasional bad split merely widens an excerpt.
    """
    if not text:
        return []
    parts = _SENTENCE_RE.split(text.strip())
    return [part.strip() for part in parts if part.strip()]


@dataclass(frozen=True)
class QueryToken:
    """One unit of a parsed query.

    Attributes:
        text: the token or phrase, lowercased.
        exact: True when the user quoted it, demanding exact match.
    """

    text: str
    exact: bool = False

    @property
    def words(self) -> list[str]:
        """Component words of the token (phrases contain several)."""
        return tokenize(self.text)


def tokenize_query(query: str) -> list[QueryToken]:
    """Parse a user query into exact phrases and loose terms.

    Quoted spans become single ``exact`` tokens; everything outside quotes
    is tokenized into loose terms, which the engines stem before matching.

    >>> tokenize_query('masks "mechanical ventilation" icu')
    ... # doctest: +NORMALIZE_WHITESPACE
    [QueryToken(text='masks', exact=False),
     QueryToken(text='mechanical ventilation', exact=True),
     QueryToken(text='icu', exact=False)]
    """
    if not query:
        return []
    tokens: list[QueryToken] = []
    cursor = 0
    for match in _QUOTED_RE.finditer(query):
        for word in tokenize(query[cursor : match.start()]):
            tokens.append(QueryToken(word, exact=False))
        phrase = match.group(1).strip().lower()
        if phrase:
            tokens.append(QueryToken(phrase, exact=True))
        cursor = match.end()
    for word in tokenize(query[cursor:]):
        tokens.append(QueryToken(word, exact=False))
    return tokens

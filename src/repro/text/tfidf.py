"""TF-IDF term weighting (Sparck Jones, 1972 — the paper's ref [53]).

Every search engine in Section 2.1 weights matched terms by TF-IDF inside
its ranking ``$function`` stages.  :class:`TfIdfModel` computes document
frequencies once over a corpus and then scores term/document pairs.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.errors import NotFittedError
from repro.text.tokenizer import tokenize


class TfIdfModel:
    """Corpus-level IDF statistics plus per-document TF scoring.

    TF uses logarithmic scaling ``1 + log(tf)`` and IDF the smoothed form
    ``log((1 + N) / (1 + df)) + 1`` so that unseen terms still receive a
    finite, maximal IDF instead of a division by zero.
    """

    def __init__(self) -> None:
        self._doc_freq: Counter[str] = Counter()
        self._num_docs = 0

    # -- fitting -----------------------------------------------------------

    def fit(self, documents: Iterable[str]) -> "TfIdfModel":
        """Count document frequencies over an iterable of raw texts."""
        for document in documents:
            self.add_document(document)
        return self

    def add_document(self, document: str) -> None:
        """Incrementally add one document's terms to the DF table."""
        self._num_docs += 1
        self._doc_freq.update(set(tokenize(document)))

    def add_document_tokens(self, tokens: Iterable[str]) -> None:
        """Incrementally add one pre-tokenized document."""
        self._num_docs += 1
        self._doc_freq.update({token.lower() for token in tokens})

    # -- scoring -------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return self._num_docs

    def document_frequency(self, term: str) -> int:
        return self._doc_freq.get(term.lower(), 0)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        if self._num_docs == 0:
            raise NotFittedError("TfIdfModel has seen no documents")
        df = self._doc_freq.get(term.lower(), 0)
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    def tfidf(self, term: str, document_tokens: list[str]) -> float:
        """TF-IDF of ``term`` within a tokenized document."""
        term = term.lower()
        tf = sum(1 for token in document_tokens if token == term)
        if tf == 0:
            return 0.0
        return (1.0 + math.log(tf)) * self.idf(term)

    def score_document(self, query_terms: Iterable[str],
                       document: str) -> float:
        """Sum of TF-IDF contributions of every query term in ``document``."""
        tokens = tokenize(document)
        return sum(self.tfidf(term, tokens) for term in query_terms)

    def vector(self, document: str, vocabulary: list[str]) -> list[float]:
        """Dense TF-IDF vector of ``document`` over ``vocabulary`` order."""
        tokens = tokenize(document)
        return [self.tfidf(term, tokens) for term in vocabulary]

"""Numeric normalization of table cells (paper Section 3.4).

Table tuples are full of numbers whose exact values carry little signal for
the data-vs-metadata decision, while their *form* (integer, small float,
range, percentage, date, unit-qualified quantity) carries a lot.  The paper
therefore substitutes numeric spans with categorical placeholder keywords
before feeding tuples to the classifiers.  The substitution rules, in the
order the paper specifies (order matters: ``0`` inside ``50`` must not
trigger the ZERO rule, and ``0.5%`` must become ``SMALLPOS PERCENT`` while
``5%`` becomes ``INT PERCENT``):

1. zeros (integer and decimal forms)            -> ``ZERO``
2. arithmetic ranges (``5-10``)                 -> ``RANGE`` (units kept)
3. negative integers                            -> ``NEG``
4. positive numbers below one (``0.37``)        -> ``SMALLPOS``
5. remaining decimals                           -> ``FLOAT``
6. remaining integers                           -> ``INT``
7. ``%``                                        -> ``PERCENT``
8. worded dates (``March 12, 2020``)            -> ``DATE``  (mm/dd/yy is
   deliberately *not* handled, matching the paper)
9. ``<`` / ``>``                                -> ``LESS`` / ``GREATER``
10. numbers followed by the frequent units time/ml/mg/kg -> descriptive
    keywords (``HOURS``, ``MILLILITERS``, ``MILLIGRAMS``, ``KILOGRAMS``)
"""

from __future__ import annotations

import re
from collections.abc import Iterable

_MONTHS = (
    "january|february|march|april|may|june|july|august|september|october"
    "|november|december|jan|feb|mar|apr|jun|jul|aug|sep|sept|oct|nov|dec"
)

# A number: optional sign, digits, optional decimal part.
_NUM = r"\d+(?:\.\d+)?"

_UNIT_KEYWORDS = {
    "h": "HOURS", "hr": "HOURS", "hrs": "HOURS", "hour": "HOURS",
    "hours": "HOURS", "min": "MINUTES", "mins": "MINUTES",
    "minute": "MINUTES", "minutes": "MINUTES", "s": "SECONDS",
    "sec": "SECONDS", "secs": "SECONDS", "second": "SECONDS",
    "seconds": "SECONDS", "day": "DAYS", "days": "DAYS",
    "week": "WEEKS", "weeks": "WEEKS", "month": "MONTHS",
    "months": "MONTHS", "year": "YEARS", "years": "YEARS",
    "ml": "MILLILITERS", "mls": "MILLILITERS",
    "mg": "MILLIGRAMS", "mgs": "MILLIGRAMS",
    "kg": "KILOGRAMS", "kgs": "KILOGRAMS",
}

_UNIT_ALTERNATION = "|".join(sorted(_UNIT_KEYWORDS, key=len, reverse=True))


class NumericNormalizer:
    """Apply the Section 3.4 substitution rules to free text or cells.

    The rules are compiled once per instance; :meth:`normalize` applies
    them in the paper's order.

    >>> NumericNormalizer().normalize("5-10 mg twice, 0.5% of 120 patients")
    'RANGE MILLIGRAMS twice, SMALLPOS PERCENT of INT patients'
    """

    def __init__(self) -> None:
        def _unit_sub(match: re.Match[str]) -> str:
            prefix = "RANGE " if match.group(1) == "RANGE" else ""
            return prefix + _UNIT_KEYWORDS[match.group(2).lower()]

        self._rules: list[tuple[re.Pattern[str], object]] = [
            # Worded dates first so their day/year digits are not rewritten.
            (
                re.compile(
                    rf"\b(?:{_MONTHS})\.?\s+\d{{1,2}}(?:\s*,\s*\d{{2,4}})?\b"
                    rf"|\b\d{{1,2}}\s+(?:{_MONTHS})\.?(?:\s*,?\s*\d{{2,4}})?\b",
                    re.IGNORECASE,
                ),
                "DATE",
            ),
            # Ranges: 5-10 / 5 - 10 / 5–10.  Units after the range are kept
            # for the unit rule below, per the paper.
            (
                re.compile(rf"\b{_NUM}\s*[-–—]\s*{_NUM}\b"),
                "RANGE",
            ),
            # Unit-qualified quantities (and units trailing a RANGE).
            (
                re.compile(
                    rf"\b(RANGE|{_NUM})\s*({_UNIT_ALTERNATION})\b",
                    re.IGNORECASE,
                ),
                _unit_sub,
            ),
            # Zeros, both integer and decimal form, not inside other numbers.
            (
                re.compile(r"(?<![\d.])0+(?:\.0+)?(?![\d.])"),
                "ZERO",
            ),
            # Negative integers/decimals: a true minus, not a hyphen inside
            # a word like "covid-19" or a range (ranges were rewritten).
            (
                re.compile(rf"(?<![\w.\d-])-{_NUM}\b"),
                "NEG",
            ),
            # Positive numbers strictly below one.
            (
                re.compile(r"(?<![\d.])0\.\d+(?![\d.])"),
                "SMALLPOS",
            ),
            # Remaining decimals, then remaining integers.  The hyphen in
            # the lookbehind keeps hyphenated terms ("covid-19") intact.
            (
                re.compile(r"(?<![\d.\w-])\d+\.\d+(?![\d.])"),
                "FLOAT",
            ),
            (
                re.compile(r"(?<![\d.\w-])\d+(?![\d.\w])"),
                "INT",
            ),
            (re.compile(r"%"), " PERCENT"),
            (re.compile(r"<"), " LESS "),
            (re.compile(r">"), " GREATER "),
        ]

    def normalize(self, text: str) -> str:
        """Return ``text`` with every numeric span replaced by its keyword."""
        if not text:
            return ""
        for pattern, replacement in self._rules:
            text = pattern.sub(replacement, text)
        return re.sub(r"\s+", " ", text).strip()

    def normalize_cells(self, cells: Iterable[str]) -> list[str]:
        """Normalize each cell of a table row independently."""
        return [self.normalize(cell) for cell in cells]


_DEFAULT = NumericNormalizer()


def normalize_tuple(cells: Iterable[str]) -> list[str]:
    """Normalize a table tuple with a shared :class:`NumericNormalizer`."""
    return _DEFAULT.normalize_cells(cells)

"""Metadata classification: is a table tuple a (metadata) header or data?

This package implements Section 3 of the paper end to end:

* :mod:`repro.classify.dataset` — labeled-tuple datasets from WDC and
  CORD-19-style tables, with the Section 3.5 positional features and the
  Section 3.4 numeric normalization applied,
* :mod:`repro.classify.svm_model` — the SVM classifier over positional +
  hashed lexical features,
* :mod:`repro.classify.bigru_model` — the BiGRU ensemble with parallel
  term- and cell-level embedding layers (Figure 3), plus the BiLSTM
  variant used by the Section 3.6 ablation,
* :mod:`repro.classify.evaluate` — the 10-fold cross-validation harness
  reporting F-measure by orientation and table size (Section 3.3).
"""

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.classify.dataset import LabeledTuple, MetadataDataset
from repro.classify.evaluate import evaluate_classifier_cv
from repro.classify.svm_model import SvmMetadataClassifier

__all__ = [
    "NeuralMetadataClassifier",
    "LabeledTuple",
    "MetadataDataset",
    "evaluate_classifier_cv",
    "SvmMetadataClassifier",
]

"""Cross-validation harness for metadata classifiers (Section 3.3).

The paper reports 89–96% F-measure with 10-fold CV "with slight
differences depending on whether the classified metadata is horizontal or
vertical, as well as its row/column number".  :func:`evaluate_classifier_cv`
runs that protocol for any of the repo's classifiers and
:func:`evaluation_grid` produces the orientation x size breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.classify.dataset import MetadataDataset
from repro.errors import ModelError
from repro.ml.crossval import StratifiedKFold
from repro.neural.metrics import binary_metrics


@dataclass
class CvReport:
    """Mean +- std of binary metrics across folds."""

    folds: list[dict[str, float]]

    def mean(self, metric: str) -> float:
        return float(np.mean([fold[metric] for fold in self.folds]))

    def std(self, metric: str) -> float:
        return float(np.std([fold[metric] for fold in self.folds]))

    def row(self) -> dict[str, float]:
        return {
            "precision": self.mean("precision"),
            "recall": self.mean("recall"),
            "f1": self.mean("f1"),
            "accuracy": self.mean("accuracy"),
        }


def evaluate_classifier_cv(
    classifier_factory: Callable[[], object],
    dataset: MetadataDataset,
    num_folds: int = 10,
    seed: int = 0,
    fit_kwargs: dict | None = None,
) -> CvReport:
    """k-fold CV of a classifier exposing fit(dataset)/predict(dataset).

    Both :class:`~repro.classify.svm_model.SvmMetadataClassifier` and
    :class:`~repro.classify.bigru_model.NeuralMetadataClassifier` satisfy
    the protocol.
    """
    dataset.require_both_classes()
    fit_kwargs = fit_kwargs or {}
    labels = dataset.labels
    folds = []
    for train_idx, test_idx in StratifiedKFold(
        num_folds=num_folds, seed=seed
    ).split(labels):
        train = dataset.subset(train_idx.tolist())
        test = dataset.subset(test_idx.tolist())
        model = classifier_factory()
        model.fit(train, **fit_kwargs)
        predictions = np.asarray(model.predict(test))
        folds.append(binary_metrics(test.labels, predictions))
    if not folds:
        raise ModelError("cross-validation produced no folds")
    return CvReport(folds)


def evaluation_grid(
    classifier_factory: Callable[[], object],
    dataset: MetadataDataset,
    num_folds: int = 10,
    seed: int = 0,
    size_buckets: tuple[tuple[str, int, int], ...] = (
        ("small", 0, 5), ("large", 6, 10**9),
    ),
    fit_kwargs: dict | None = None,
) -> dict[str, CvReport]:
    """Orientation x table-size breakdown of CV metrics.

    Returns reports keyed ``"horizontal"``, ``"vertical"``, and
    ``"rows:<bucket>"`` for each size bucket (bucket bounds apply to the
    source table's row count).
    """
    reports: dict[str, CvReport] = {}
    for orientation in ("horizontal", "vertical"):
        subset = dataset.by_orientation(orientation)
        if len(subset) >= num_folds and 0 < subset.labels.sum() < len(subset):
            reports[orientation] = evaluate_classifier_cv(
                classifier_factory, subset, num_folds=num_folds,
                seed=seed, fit_kwargs=fit_kwargs,
            )
    for name, lo, hi in size_buckets:
        subset = dataset.by_size(min_rows=lo, max_rows=hi)
        if len(subset) >= num_folds and 0 < subset.labels.sum() < len(subset):
            reports[f"rows:{name}"] = evaluate_classifier_cv(
                classifier_factory, subset, num_folds=num_folds,
                seed=seed, fit_kwargs=fit_kwargs,
            )
    return reports

"""The BiGRU ensemble with parallel embedding layers (paper Figure 3).

Architecture, per tuple:

1. the tuple is pre-processed (numeric substitution) and rendered twice —
   as a *term* sequence and as a *cell* sequence (parallel inputs);
2. each path embeds its sequence (Word2Vec-initialized, fine-tuned
   end-to-end) and runs a bidirectional RNN over it;
3. the RNN output is **concatenated with the original embeddings** to form
   the enriched contextualized vectors ``c_i``;
4. each path is flattened; the two paths are concatenated;
5. a dense layer of 16 units, batch normalization, dropout, and a dense
   binary (sigmoid) classifier finish the model.

The recurrent cell is pluggable (``"gru"`` or ``"lstm"``) so the
Section 3.6 BiGRU-vs-BiLSTM ablation is a one-argument change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.classify.dataset import MetadataDataset
from repro.embeddings.tabular import TabularEmbedder
from repro.errors import ModelError, NotFittedError
from repro.neural.layers import BatchNorm, Dense, Dropout, Embedding
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.model import batches
from repro.neural.optimizers import Adam
from repro.neural.recurrent import Bidirectional
from repro.text.vocabulary import Vocabulary


@dataclass
class TrainingHistory:
    losses: list[float] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds)


class _SequencePath:
    """One parallel path: Embedding -> context encoder -> flatten.

    ``mode`` selects the Figure 3 design ("bi": bidirectional RNN whose
    output is concatenated with the original embeddings) or one of the
    ablation baselines the paper rejects in Section 3.6: "uni" (a
    traditional forward-only RNN, order-dependent) and "gap" (global
    average pooling over the static embeddings, which loses context).
    """

    def __init__(self, vocab_size: int, embed_dim: int, hidden: int,
                 seq_len: int, cell: str, seed: int,
                 pretrained: np.ndarray | None,
                 mode: str = "bi") -> None:
        if mode not in ("bi", "uni", "gap"):
            raise ModelError(f"unknown path mode {mode!r}")
        if cell not in ("gru", "lstm"):
            raise ModelError(f"unknown cell {cell!r}")
        self.embedding = Embedding(vocab_size, embed_dim, seed=seed,
                                   weights=pretrained)
        self.mode = mode
        self.rnn = None
        if mode == "bi":
            factory = (Bidirectional.gru if cell == "gru"
                       else Bidirectional.lstm)
            self.rnn = factory(embed_dim, hidden, seed=seed + 1)
            context_width = 2 * hidden
        elif mode == "uni":
            from repro.neural.recurrent import GRU, LSTM  # noqa: PLC0415
            rnn_cls = GRU if cell == "gru" else LSTM
            self.rnn = rnn_cls(embed_dim, hidden, return_sequences=True,
                               seed=seed + 1)
            context_width = hidden
        else:
            context_width = 0
        self.seq_len = seq_len
        self.embed_dim = embed_dim
        self._context_width = context_width
        if mode == "gap":
            self.out_width = embed_dim
        else:
            self.out_width = seq_len * (context_width + embed_dim)
        self._embedded: np.ndarray | None = None

    @property
    def layers(self):
        if self.rnn is None:
            return [self.embedding]
        return [self.embedding, self.rnn]

    def forward(self, indices: np.ndarray, training: bool) -> np.ndarray:
        embedded = self.embedding.forward(indices, training)
        self._embedded = embedded
        if self.mode == "gap":
            return embedded.mean(axis=1)
        contextual = self.rnn.forward(embedded, training)
        enriched = np.concatenate([contextual, embedded], axis=-1)
        return enriched.reshape(len(indices), -1)

    def backward(self, grad_flat: np.ndarray) -> None:
        if self._embedded is None:
            raise ModelError("backward before forward")
        batch = grad_flat.shape[0]
        if self.mode == "gap":
            grad_embedded = np.repeat(
                grad_flat[:, None, :], self.seq_len, axis=1
            ) / self.seq_len
            self.embedding.backward(grad_embedded)
            return
        grad = grad_flat.reshape(
            batch, self.seq_len, self._context_width + self.embed_dim
        )
        grad_context = grad[:, :, :self._context_width]
        grad_embedded_direct = grad[:, :, self._context_width:]
        grad_embedded_rnn = self.rnn.backward(grad_context)
        self.embedding.backward(grad_embedded_rnn + grad_embedded_direct)


class NeuralMetadataClassifier:
    """Figure 3's two-path BiRNN tuple classifier (GRU or LSTM cells)."""

    def __init__(self, vocabulary: Vocabulary, cell: str = "gru",
                 embed_dim: int = 24, hidden: int = 16,
                 max_terms: int = 24, max_cells: int = 8,
                 dense_units: int = 16, dropout: float = 0.2,
                 learning_rate: float = 0.005, seed: int = 0,
                 pretrained_vectors: np.ndarray | None = None,
                 mode: str = "bi") -> None:
        self.vocabulary = vocabulary
        self.cell = cell
        self.mode = mode
        self.embedder = TabularEmbedder(
            vocabulary, max_terms=max_terms, max_cells=max_cells
        )
        if pretrained_vectors is not None and \
                pretrained_vectors.shape[1] != embed_dim:
            raise ModelError(
                "pretrained vector width must equal embed_dim"
            )
        self.term_path = _SequencePath(
            len(vocabulary), embed_dim, hidden, max_terms, cell,
            seed=seed, pretrained=pretrained_vectors, mode=mode,
        )
        self.cell_path = _SequencePath(
            len(vocabulary), embed_dim, hidden, max_cells, cell,
            seed=seed + 10, pretrained=pretrained_vectors, mode=mode,
        )
        joint_width = self.term_path.out_width + self.cell_path.out_width
        self.dense = Dense(joint_width, dense_units, activation="relu",
                           seed=seed + 20)
        self.batch_norm = BatchNorm(dense_units)
        self.dropout = Dropout(dropout, seed=seed + 21)
        self.classifier = Dense(dense_units, 1, activation="sigmoid",
                                seed=seed + 22)
        self.loss = BinaryCrossEntropy()
        self.optimizer = Adam(learning_rate=learning_rate, clip_norm=5.0)
        self.seed = seed
        self._fitted = False

    # -- plumbing --------------------------------------------------------

    @property
    def _layers(self):
        return (self.term_path.layers + self.cell_path.layers
                + [self.dense, self.batch_norm, self.dropout,
                   self.classifier])

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self._layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self._layers for g in layer.grads]

    def zero_grads(self) -> None:
        for layer in self._layers:
            layer.zero_grads()

    def _encode(self, cell_lists: list[list[str]]
                ) -> tuple[np.ndarray, np.ndarray]:
        terms = self.embedder.batch_term_indices(cell_lists)
        cells = self.embedder.batch_cell_indices(cell_lists)
        return terms, cells

    def _forward(self, terms: np.ndarray, cells: np.ndarray,
                 training: bool) -> np.ndarray:
        term_flat = self.term_path.forward(terms, training)
        cell_flat = self.cell_path.forward(cells, training)
        joint = np.concatenate([term_flat, cell_flat], axis=1)
        hidden = self.dense.forward(joint, training)
        hidden = self.batch_norm.forward(hidden, training)
        hidden = self.dropout.forward(hidden, training)
        return self.classifier.forward(hidden, training)

    def _backward(self, grad_output: np.ndarray) -> None:
        grad = self.classifier.backward(grad_output)
        grad = self.dropout.backward(grad)
        grad = self.batch_norm.backward(grad)
        grad = self.dense.backward(grad)
        split = self.term_path.out_width
        self.term_path.backward(grad[:, :split])
        self.cell_path.backward(grad[:, split:])

    # -- public API ---------------------------------------------------------

    def fit(self, dataset: MetadataDataset, epochs: int = 8,
            batch_size: int = 32) -> TrainingHistory:
        dataset.require_both_classes()
        terms, cells = self._encode(dataset.cell_lists)
        targets = dataset.labels.astype(np.float64)
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        for _ in range(epochs):
            started = time.perf_counter()
            epoch_loss, num_batches = 0.0, 0
            for batch_idx in batches(len(targets), batch_size, rng):
                outputs = self._forward(
                    terms[batch_idx], cells[batch_idx], training=True
                )
                probs = outputs[:, 0]
                batch_targets = targets[batch_idx]
                epoch_loss += self.loss.forward(probs, batch_targets)
                grad = self.loss.backward(probs, batch_targets)
                self.zero_grads()
                self._backward(grad[:, None])
                self.optimizer.step(self.params, self.grads)
                num_batches += 1
            history.losses.append(epoch_loss / max(1, num_batches))
            history.seconds.append(time.perf_counter() - started)
        self._fitted = True
        return history

    def predict_proba(self, dataset: MetadataDataset,
                      batch_size: int = 256) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("NeuralMetadataClassifier.fit has not run")
        terms, cells = self._encode(dataset.cell_lists)
        chunks = []
        for batch_idx in batches(len(dataset), batch_size):
            outputs = self._forward(
                terms[batch_idx], cells[batch_idx], training=False
            )
            chunks.append(outputs[:, 0])
        return np.concatenate(chunks) if chunks else np.array([])

    def predict(self, dataset: MetadataDataset,
                threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(dataset) >= threshold).astype(int)

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.params)

"""SVM metadata classifier over positional + hashed lexical features.

The feature vector per tuple is the concatenation of

* the numeric positional features ``f2..f6`` (Section 3.5), and
* a hashed bag-of-words of the normalized ``f1`` text (the Section 3.4
  substitution keywords — ZERO/RANGE/INT/... — are highly discriminative
  between data rows and header rows, so the lexical part matters).

Features are standardized before training; ``feature_mask`` lets the E8
ablation switch individual positional features off.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.classify.dataset import MetadataDataset
from repro.errors import ModelError, NotFittedError
from repro.ml.svm import KernelSVM, LinearSVM
from repro.text.tokenizer import tokenize

#: Number of positional features (f2..f6).
NUM_POSITIONAL = 5


def hashed_bag_of_words(text: str, dim: int) -> np.ndarray:
    """Hashing-trick bag-of-words with sign hashing.

    Uses CRC32 rather than the builtin ``hash`` so vectors are stable
    across processes (``hash`` of strings is salted per interpreter run).
    """
    vector = np.zeros(dim)
    for token in tokenize(text):
        digest = zlib.crc32(token.encode("utf-8"))
        bucket = digest % dim
        sign = 1.0 if (digest >> 16) % 2 == 0 else -1.0
        vector[bucket] += sign
    return vector


class SvmMetadataClassifier:
    """Binary metadata/data classifier backed by an SVM.

    Args:
        text_hash_dim: width of the hashed lexical block (0 disables it).
        feature_mask: length-5 booleans enabling f2..f6 (E8 ablation).
        kernel: None for the linear SVM, or "rbf"/"sigmoid".
    """

    def __init__(self, text_hash_dim: int = 64,
                 feature_mask: tuple[bool, ...] | None = None,
                 kernel: str | None = None, epochs: int = 15,
                 seed: int = 0) -> None:
        if feature_mask is not None and len(feature_mask) != NUM_POSITIONAL:
            raise ModelError(
                f"feature_mask must have {NUM_POSITIONAL} entries"
            )
        self.text_hash_dim = text_hash_dim
        self.feature_mask = (
            tuple(feature_mask) if feature_mask is not None
            else (True,) * NUM_POSITIONAL
        )
        if kernel is None:
            self._svm: LinearSVM | KernelSVM = LinearSVM(
                epochs=epochs, seed=seed
            )
        else:
            self._svm = KernelSVM(kernel=kernel, epochs=epochs, seed=seed)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # -- feature building ---------------------------------------------------

    def _vector(self, positional: list[float], text: str) -> np.ndarray:
        masked = [
            value for value, keep in zip(positional, self.feature_mask)
            if keep
        ]
        parts = [np.array(masked, dtype=np.float64)]
        if self.text_hash_dim:
            parts.append(hashed_bag_of_words(text, self.text_hash_dim))
        return np.concatenate(parts)

    def feature_matrix(self, dataset: MetadataDataset) -> np.ndarray:
        """The raw (unstandardized) feature matrix of a dataset."""
        return np.stack([
            self._vector(t.features.positional, t.text) for t in dataset
        ])

    def _standardize(self, matrix: np.ndarray,
                     fit: bool = False) -> np.ndarray:
        if fit:
            self._mean = matrix.mean(axis=0)
            self._std = matrix.std(axis=0)
            self._std[self._std == 0.0] = 1.0
        if self._mean is None or self._std is None:
            raise NotFittedError("SvmMetadataClassifier.fit has not run")
        return (matrix - self._mean) / self._std

    # -- train / predict -----------------------------------------------------

    @staticmethod
    def _balance(matrix: np.ndarray, labels: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Oversample the minority class to a 1:1 ratio.

        Metadata rows are heavily outnumbered by data rows (one header per
        table); without balancing, hinge loss happily sacrifices recall on
        the minority class.
        """
        labels = np.asarray(labels)
        positives = np.flatnonzero(labels == 1)
        negatives = np.flatnonzero(labels != 1)
        if len(positives) == 0 or len(negatives) == 0:
            return matrix, labels
        minority, majority = (
            (positives, negatives) if len(positives) < len(negatives)
            else (negatives, positives)
        )
        repeats = len(majority) // len(minority)
        remainder = len(majority) % len(minority)
        oversampled = np.concatenate(
            [np.tile(minority, repeats), minority[:remainder], majority]
        )
        return matrix[oversampled], labels[oversampled]

    def fit(self, dataset: MetadataDataset) -> "SvmMetadataClassifier":
        dataset.require_both_classes()
        matrix = self._standardize(self.feature_matrix(dataset), fit=True)
        matrix, labels = self._balance(matrix, dataset.labels)
        self._svm.fit(matrix, labels)
        return self

    def predict(self, dataset: MetadataDataset) -> np.ndarray:
        matrix = self._standardize(self.feature_matrix(dataset))
        return self._svm.predict(matrix)

    def decision_function(self, dataset: MetadataDataset) -> np.ndarray:
        matrix = self._standardize(self.feature_matrix(dataset))
        return self._svm.decision_function(matrix)

    # -- sklearn-style array interface (for the generic CV harness) --------

    def fit_arrays(self, features: np.ndarray,
                   labels: np.ndarray) -> "SvmMetadataClassifier":
        matrix = self._standardize(np.asarray(features), fit=True)
        matrix, labels = self._balance(matrix, np.asarray(labels))
        self._svm.fit(matrix, labels)
        return self

    def predict_arrays(self, features: np.ndarray) -> np.ndarray:
        matrix = self._standardize(np.asarray(features))
        return self._svm.predict(matrix)

    # -- serialization ------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trained linear model to an ``.npz`` file."""
        import json as _json
        from pathlib import Path

        if not isinstance(self._svm, LinearSVM):
            raise ModelError("only linear classifiers are serializable")
        if self._svm.weights is None or self._mean is None:
            raise NotFittedError("cannot save an untrained classifier")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        config = {
            "text_hash_dim": self.text_hash_dim,
            "feature_mask": list(self.feature_mask),
        }
        np.savez_compressed(
            path,
            weights=self._svm.weights,
            bias=np.array([self._svm.bias]),
            mean=self._mean,
            std=self._std,
            config=np.frombuffer(
                _json.dumps(config).encode("utf-8"), dtype=np.uint8
            ),
        )

    @classmethod
    def load(cls, path) -> "SvmMetadataClassifier":
        """Restore a classifier saved with :meth:`save`."""
        import json as _json

        with np.load(path) as archive:
            config = _json.loads(bytes(archive["config"]).decode("utf-8"))
            classifier = cls(
                text_hash_dim=int(config["text_hash_dim"]),
                feature_mask=tuple(config["feature_mask"]),
            )
            svm = classifier._svm
            assert isinstance(svm, LinearSVM)
            svm.weights = archive["weights"].copy()
            svm.bias = float(archive["bias"][0])
            classifier._mean = archive["mean"].copy()
            classifier._std = archive["std"].copy()
        return classifier

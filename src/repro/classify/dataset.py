"""Labeled-tuple datasets for metadata classification.

A :class:`LabeledTuple` is one table line (row, or column of a vertical
table) together with its positional features and ground-truth label.
:class:`MetadataDataset` collects them from WDC-style tables and from the
tables embedded in CORD-19-style papers, preserving per-tuple provenance
(orientation, table shape) so the evaluation can slice metrics by those
axes exactly as the paper's Section 3.3 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.corpus.wdc import WdcTableGenerator
from repro.errors import ModelError
from repro.tables.features import RowFeatures, table_features
from repro.tables.model import Table


@dataclass(frozen=True)
class LabeledTuple:
    """One classification instance."""

    cells: tuple[str, ...]
    label: bool
    features: RowFeatures
    orientation: str          # "horizontal" | "vertical"
    table_rows: int           # shape of the source table (pre-transpose)
    table_columns: int

    @property
    def text(self) -> str:
        """The normalized f1 text of the tuple."""
        return self.features.f1_text


class MetadataDataset:
    """A collection of labeled tuples with slicing helpers."""

    def __init__(self, tuples: list[LabeledTuple]) -> None:
        self.tuples = tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    @property
    def labels(self) -> np.ndarray:
        return np.array([int(t.label) for t in self.tuples])

    @property
    def cell_lists(self) -> list[list[str]]:
        return [list(t.cells) for t in self.tuples]

    def subset(self, indices: Iterable[int]) -> "MetadataDataset":
        return MetadataDataset([self.tuples[i] for i in indices])

    def by_orientation(self, orientation: str) -> "MetadataDataset":
        return MetadataDataset(
            [t for t in self.tuples if t.orientation == orientation]
        )

    def by_size(self, min_rows: int = 0, max_rows: int = 10**9,
                min_columns: int = 0,
                max_columns: int = 10**9) -> "MetadataDataset":
        return MetadataDataset([
            t for t in self.tuples
            if min_rows <= t.table_rows <= max_rows
            and min_columns <= t.table_columns <= max_columns
        ])

    def texts(self) -> list[str]:
        return [t.text for t in self.tuples]

    def balance_summary(self) -> dict[str, int]:
        positives = int(self.labels.sum())
        return {"total": len(self), "metadata": positives,
                "data": len(self) - positives}

    # -- builders ---------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, orientation: str = "horizontal"
                   ) -> "MetadataDataset":
        """Labeled tuples from one table whose rows carry labels."""
        tuples = []
        features = table_features(table)
        for row, row_feats in zip(table.rows, features):
            if row.is_metadata is None:
                continue
            tuples.append(LabeledTuple(
                cells=tuple(row.texts),
                label=bool(row.is_metadata),
                features=row_feats,
                orientation=orientation,
                table_rows=table.num_rows,
                table_columns=table.num_columns,
            ))
        return cls(tuples)

    @classmethod
    def from_tables(cls, labeled_tables: list[tuple[Table, str]]
                    ) -> "MetadataDataset":
        tuples: list[LabeledTuple] = []
        for table, orientation in labeled_tables:
            tuples.extend(cls.from_table(table, orientation).tuples)
        return cls(tuples)

    @classmethod
    def from_wdc(cls, count: int, seed: int = 0,
                 orientations: tuple[str, ...] = ("horizontal", "vertical"),
                 num_data_rows: int | None = None,
                 num_columns: int | None = None,
                 variants: tuple[str, ...] = ("plain",)) -> "MetadataDataset":
        """Generate WDC tables and convert to classification tuples.

        Vertical tables are transposed first (header columns become
        tuples), mirroring the run-time path through
        :func:`repro.tables.orientation.rows_for_classification`.
        ``variants`` cycles through the structural variants of
        :class:`~repro.corpus.wdc.WdcTableGenerator` (title rows,
        headerless continuations, summary rows) for harder datasets;
        vertical tables always use the plain layout.
        """
        generator = WdcTableGenerator(seed=seed)
        labeled_tables: list[tuple[Table, str]] = []
        for index in range(count):
            orientation = orientations[index % len(orientations)]
            variant = (
                variants[index % len(variants)]
                if orientation == "horizontal" else "plain"
            )
            generated = generator.generate(
                index, orientation=orientation,
                num_data_rows=num_data_rows, num_columns=num_columns,
                variant=variant,
            )
            table = generated.table
            if orientation == "vertical":
                table = table.transposed()
            for position, row in enumerate(table.rows):
                row.is_metadata = position in generated.metadata_lines
            labeled_tables.append((table, orientation))
        return cls.from_tables(labeled_tables)

    @classmethod
    def from_papers(cls, papers: list[dict[str, Any]]) -> "MetadataDataset":
        """Tuples from the labeled tables inside CORD-19-style papers."""
        labeled_tables = []
        for paper in papers:
            for table_json in paper.get("tables", []):
                table = Table.from_json(table_json)
                labeled_tables.append((table, "horizontal"))
        return cls.from_tables(labeled_tables)

    def merged_with(self, other: "MetadataDataset") -> "MetadataDataset":
        return MetadataDataset(self.tuples + other.tuples)

    def shuffled(self, seed: int = 0) -> "MetadataDataset":
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.tuples))
        return self.subset(order.tolist())

    def require_both_classes(self) -> "MetadataDataset":
        labels = self.labels
        if labels.sum() == 0 or labels.sum() == len(labels):
            raise ModelError("dataset must contain both classes")
        return self

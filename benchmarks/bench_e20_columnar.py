"""E20 — columnar ranking kernels: batch numpy vs per-document Python.

PR 7 moves eligible search queries off the scalar ``$function`` closure
onto contiguous per-shard posting arrays (:mod:`repro.search.columnar`):
``$match`` becomes a binary search over a sorted atom dictionary,
TF-IDF/BM25 scoring becomes a handful of vectorized gathers, and top-k
becomes one ``lexsort``.  This experiment measures what that buys:

* kernel vs scalar throughput on a single shard (the ISSUE's >= 3x
  target, asserted at >= 10k documents — warm kernel searches are
  typically two orders of magnitude faster);
* TF-IDF vs BM25 kernel throughput (the selectable ranker must not
  price differently);
* thread vs process executor scaling over the sharded kernel path
  (>= 2x at 4 workers, asserted only on >= 4-core machines).

Correctness is asserted before any speed claim: every measured
configuration must return byte-identical result pages.

Reduced CI shape: ``E20_PAPERS=300 E20_ROUNDS=2``.
"""

import os
import time

import pytest
from benchlib import print_table

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.docstore.executor import (
    KIND_ENV,
    WIDTH_ENV,
    shutdown_executor,
    shutdown_process_executor,
)
from repro.search.all_fields import AllFieldsEngine

QUERIES = ["vaccine side effects", "covid symptoms", "antibody dosage",
           "pfizer trial", "variant transmission"]
ROUNDS = int(os.environ.get("E20_ROUNDS", "3"))
NUM_PAPERS = int(os.environ.get("E20_PAPERS", "10000"))

#: The ISSUE's single-core speedup floor, asserted at this corpus size.
SPEEDUP_TARGET = 3.0
SPEEDUP_AT_PAPERS = 10_000

RESULTS = {
    "experiment": "e20_columnar",
    "papers": NUM_PAPERS,
    "rounds": ROUNDS,
}


@pytest.fixture(scope="module")
def corpus():
    config = GeneratorConfig(seed=120, papers_per_week=200,
                             tables_per_paper=(0, 1))
    return CorpusGenerator(config).papers(NUM_PAPERS)


def _build(corpus, num_shards=1, **kwargs):
    engine = AllFieldsEngine(num_shards=num_shards, **kwargs)
    engine.add_papers(corpus)
    return engine


def _drive(engine):
    """Warm ranked-search throughput over the query mix."""
    engine.search(QUERIES[0], page=1)  # build/refresh the index once
    started = time.perf_counter()
    for _ in range(ROUNDS):
        for query in QUERIES:
            engine.search(query, page=1)
    seconds = time.perf_counter() - started
    return (ROUNDS * len(QUERIES)) / seconds, seconds


def _pages(engine):
    return [
        [(hit.paper_id, hit.score)
         for hit in engine.search(query, page=1).results]
        for query in QUERIES
    ]


def test_e20_kernel_vs_scalar_single_core(corpus, monkeypatch):
    """The headline: batch kernels vs the per-document closure."""
    monkeypatch.setenv(WIDTH_ENV, "1")
    shutdown_executor()
    engine = _build(corpus, num_shards=1)

    kernel_rps, kernel_seconds = _drive(engine)
    kernel_pages = _pages(engine)
    assert any(
        "columnar" in stats.stage
        for stats in engine.search(QUERIES[0]).stage_stats
    )

    engine.use_columnar = False
    scalar_rps, scalar_seconds = _drive(engine)
    scalar_pages = _pages(engine)
    engine.use_columnar = True
    shutdown_executor()

    assert kernel_pages == scalar_pages
    speedup = kernel_rps / scalar_rps
    print_table(
        "E20: single-shard ranked search, columnar kernel vs scalar",
        ["papers", "scalar req/s", "kernel req/s", "speedup"],
        [[NUM_PAPERS, scalar_rps, kernel_rps, speedup]],
        note=f"pages byte-identical; >= {SPEEDUP_TARGET:.0f}x asserted "
             f"at >= {SPEEDUP_AT_PAPERS} papers",
    )
    RESULTS["kernel_vs_scalar"] = {
        "scalar_rps": scalar_rps,
        "scalar_seconds": scalar_seconds,
        "kernel_rps": kernel_rps,
        "kernel_seconds": kernel_seconds,
        "speedup": speedup,
    }
    if NUM_PAPERS >= SPEEDUP_AT_PAPERS:
        assert speedup >= SPEEDUP_TARGET
    else:
        # Reduced shapes must still never regress past the scalar path.
        assert speedup > 1.0


def test_e20_tfidf_vs_bm25_throughput(corpus):
    """The selectable ranker: both run as kernels at the same price."""
    rows = []
    for ranker in ("tfidf", "bm25"):
        engine = _build(corpus, num_shards=1, ranker=ranker)
        rps, seconds = _drive(engine)
        stages = [stats.stage
                  for stats in engine.search(QUERIES[0]).stage_stats]
        assert f"$columnar({ranker})" in stages, stages
        rows.append([ranker, rps])
        RESULTS.setdefault("rankers", {})[ranker] = {
            "rps": rps, "seconds": seconds,
        }
    shutdown_executor()

    print_table(
        "E20: kernel throughput by ranking function",
        ["ranker", "req/s"],
        rows,
        note="both rankers batch the same gathers; BM25 adds one "
             "length-normalization term",
    )
    tfidf_rps = RESULTS["rankers"]["tfidf"]["rps"]
    bm25_rps = RESULTS["rankers"]["bm25"]["rps"]
    # Same kernel shape: neither ranker may cost a multiple of the other.
    assert 0.2 < bm25_rps / tfidf_rps < 5.0


def test_e20_process_fanout(corpus, monkeypatch):
    """Sharded kernel ranking: thread executor vs process pool."""
    engine = _build(corpus, num_shards=4)

    monkeypatch.delenv(KIND_ENV, raising=False)
    shutdown_executor()
    thread_rps, thread_seconds = _drive(engine)
    thread_pages = _pages(engine)

    rows = [["thread", "-", thread_rps, 1.0]]
    RESULTS["fanout"] = [{
        "executor": "thread", "rps": thread_rps,
        "seconds": thread_seconds, "speedup": 1.0,
    }]
    monkeypatch.setenv(KIND_ENV, "process")
    for width in (1, 2, 4):
        monkeypatch.setenv(WIDTH_ENV, str(width))
        shutdown_process_executor()
        process_rps, process_seconds = _drive(engine)
        assert _pages(engine) == thread_pages
        ratio = process_rps / thread_rps
        rows.append(["process", width, process_rps, ratio])
        RESULTS["fanout"].append({
            "executor": "process", "width": width, "rps": process_rps,
            "seconds": process_seconds, "speedup": ratio,
        })
    shutdown_process_executor()
    monkeypatch.delenv(KIND_ENV, raising=False)
    monkeypatch.delenv(WIDTH_ENV, raising=False)
    shutdown_executor()

    cores = os.cpu_count() or 1
    print_table(
        "E20: sharded kernel ranking, thread vs process executor",
        ["executor", "width", "req/s", "vs thread"],
        rows,
        note=f"{cores} core(s); >= 2x at 4 workers asserted only on "
             ">= 4-core machines (spawn + payload shipping amortize "
             "over shard work)",
    )
    if cores >= 4:
        best = max(row[3] for row in rows if row[0] == "process")
        assert best >= 2.0

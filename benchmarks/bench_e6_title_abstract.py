"""E6 — Section 2.1.1: the title/abstract/caption engine's inclusive fields.

Paper claim: "The search fields are inclusive in the search results,
meaning, if a user searches on a field there must be a document that
matches at least one term in that field or it does not get passed on to
the next stage regardless if there are matches over the other fields."

Regenerates: result counts across field combinations, demonstrating that
adding a field can only shrink (never grow) the result set, plus the
prescribed result format (captions first, title + authors, abstract).
"""

from benchlib import print_table

from repro.search.title_abstract import TitleAbstractCaptionEngine


def test_e6_inclusive_fields(medium_corpus, benchmark):
    engine = TitleAbstractCaptionEngine()
    engine.add_papers(medium_corpus[:200])

    title_only = engine.search(title="covid")
    abstract_only = engine.search(abstract="patients")
    both = engine.search(title="covid", abstract="patients")
    caption_only = engine.search(caption="vaccine")
    all_three = engine.search(title="covid", abstract="patients",
                              caption="vaccine")

    rows = [
        ["title='covid'", title_only.total_matches],
        ["abstract='patients'", abstract_only.total_matches],
        ["title AND abstract", both.total_matches],
        ["caption='vaccine'", caption_only.total_matches],
        ["all three fields", all_three.total_matches],
    ]
    print_table(
        "E6: inclusive field semantics (each searched field must match)",
        ["field combination", "matches"],
        rows,
        note="adding a searched field can only shrink the result set",
    )

    assert both.total_matches <= min(title_only.total_matches,
                                     abstract_only.total_matches)
    assert all_three.total_matches <= min(both.total_matches,
                                          caption_only.total_matches)

    # Result format: captions (when matched) -> title -> authors ->
    # full abstract.
    if all_three.results:
        snippets = all_three.results[0].snippets
        keys = list(snippets)
        assert keys.index("title") < keys.index("abstract")
        assert "authors" in snippets

    benchmark(lambda: engine.search(title="covid", abstract="patients"))

"""E22 — zero-downtime streaming ingest (WAL + delta segments).

Paper claim: COVIDKG.ORG keeps answering queries while newly published
literature streams in (Section 2's "non-stop" classification of
incoming publications).  PRs 1-8 made every index build offline; this
experiment measures the streaming path added by ``repro.ingest``:

* **ingest-while-serving** — a reader drives the serving tier while
  batches commit through the WAL and the background merge folds delta
  segments; read p95 must stay within 2x of the cache-warm baseline
  (with a small absolute floor so sub-millisecond cache hits do not
  turn timer noise into a ratio);
* **recovery identity** — a simulated crash (fresh process + WAL
  replay) and a post-commit ``rollback()`` must both answer queries
  byte-identically to the reference states.

Reduced CI shape: ``E22_BASE_PAPERS=60 E22_BATCHES=3 E22_READS=120``.
"""

import os
import threading
import time

import pytest
from benchlib import print_table

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.ingest.engine import IngestEngine
from repro.serve.service import QueryService, ServeConfig

BASE_PAPERS = int(os.environ.get("E22_BASE_PAPERS", "200"))
BATCHES = int(os.environ.get("E22_BATCHES", "6"))
BATCH_SIZE = int(os.environ.get("E22_BATCH_SIZE", "15"))
READS = int(os.environ.get("E22_READS", "400"))

QUERIES = ["covid vaccine", "antibody response", "clinical trial",
           "side effects", "transmission"]

#: Acceptance bound: read p95 while ingest+merge run, relative to the
#: cache-warm baseline — plus an absolute floor (seconds) below which
#: the ratio is all timer noise.
P95_RATIO_BOUND = 2.0
P95_FLOOR_SECONDS = 0.010

RESULTS = {
    "experiment": "e22_ingest",
    "base_papers": BASE_PAPERS,
    "batches": BATCHES,
    "batch_size": BATCH_SIZE,
}


@pytest.fixture(scope="module")
def corpus():
    total = BASE_PAPERS + BATCHES * BATCH_SIZE
    return CorpusGenerator(GeneratorConfig(
        seed=122, papers_per_week=50, tables_per_paper=(0, 2),
    )).papers(total)


def _system(papers):
    system = CovidKG(CovidKGConfig(num_shards=2))
    if papers:
        system.ingest(papers)
    return system


def _p95(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _read_loop(service, count, latencies):
    for i in range(count):
        started = time.perf_counter()
        service.query("all_fields", query=QUERIES[i % len(QUERIES)])
        latencies.append(time.perf_counter() - started)


def _read_until(service, stop, minimum, latencies):
    """Read continuously until ``stop`` is set AND ``minimum`` reads ran.

    Keeps the reader alive for the whole ingest phase so the recorded
    latencies genuinely overlap the commits and merges.
    """
    i = 0
    while not stop.is_set() or len(latencies) < minimum:
        started = time.perf_counter()
        service.query("all_fields", query=QUERIES[i % len(QUERIES)])
        latencies.append(time.perf_counter() - started)
        i += 1


def test_e22_read_p95_bounded_while_ingesting(corpus, tmp_path):
    base, stream = corpus[:BASE_PAPERS], corpus[BASE_PAPERS:]
    system = _system(base)
    engine = IngestEngine(system, tmp_path / "wal",
                          merge_threshold=2 * BATCH_SIZE)
    service = QueryService(system, ServeConfig(num_workers=2))
    service.attach_ingest(engine)
    try:
        # Cache-warm baseline: one cold round, then measured reads.
        for query in QUERIES:
            service.query("all_fields", query=query)
        warm = []
        _read_loop(service, READS, warm)

        # Ingest phase: the same reader runs while batches commit and
        # the merge thread (plus an explicit concurrent merge driver)
        # folds delta segments.
        during = []
        stop_reading = threading.Event()
        reader = threading.Thread(
            target=_read_until,
            args=(service, stop_reading, READS, during))
        stop_merging = threading.Event()

        def merge_driver():
            while not stop_merging.is_set():
                engine.merge_now()
                time.sleep(0.01)

        merger = threading.Thread(target=merge_driver)
        reader.start()
        merger.start()
        receipts = []
        try:
            for number in range(BATCHES):
                batch = stream[number * BATCH_SIZE:
                               (number + 1) * BATCH_SIZE]
                receipts.append(service.submit_ingest(batch)
                                .result(timeout=120))
        finally:
            stop_reading.set()
            reader.join(timeout=300)
            stop_merging.set()
            merger.join(timeout=30)
        assert not reader.is_alive()

        accepted = sum(r.value["accepted"] for r in receipts)
        warm_p95, during_p95 = _p95(warm), _p95(during)
        bound = max(P95_RATIO_BOUND * warm_p95, P95_FLOOR_SECONDS)
        stats = engine.stats()
        RESULTS["ingest_while_serving"] = {
            "reads": len(during),
            "accepted": accepted,
            "warm_p95_ms": warm_p95 * 1000.0,
            "during_p95_ms": during_p95 * 1000.0,
            "ratio": during_p95 / max(warm_p95, 1e-9),
            "merges": stats["merges"],
            "residual_delta_rows": stats["delta_rows"]["all_fields"],
        }
        print_table(
            "E22: read p95 while streaming ingest + merge run",
            ["phase", "reads", "p50 ms", "p95 ms"],
            [
                ["cache-warm baseline", len(warm),
                 f"{sorted(warm)[len(warm) // 2] * 1000:.3f}",
                 f"{warm_p95 * 1000:.3f}"],
                ["during ingest+merge", len(during),
                 f"{sorted(during)[len(during) // 2] * 1000:.3f}",
                 f"{during_p95 * 1000:.3f}"],
            ],
            note=f"{accepted} papers committed in {BATCHES} batches; "
                 f"{stats['merges']} engine merge(s); bound "
                 f"{bound * 1000:.1f} ms",
        )
        assert accepted == len(stream)
        assert during_p95 <= bound, (
            f"read p95 {during_p95 * 1000:.2f} ms exceeds "
            f"{bound * 1000:.2f} ms while ingesting"
        )
    finally:
        service.close()
        engine.close()


def _pages(system):
    pages = {}
    for query in QUERIES:
        results = system.search(query, page=1)
        pages[query] = [
            (hit.paper_id, hit.score) for hit in results.results
        ] + [("total", results.total_matches)]
    return pages


def test_e22_crash_replay_and_rollback_byte_identity(corpus, tmp_path):
    base, stream = corpus[:BASE_PAPERS], corpus[BASE_PAPERS:]
    batch1, batch2 = stream[:BATCH_SIZE], stream[BATCH_SIZE:
                                                 2 * BATCH_SIZE]
    system = _system(base)
    with IngestEngine(system, tmp_path / "wal") as engine:
        engine.commit_batch(batch1)
        after_batch1 = _pages(system)
        engine.commit_batch(batch2)
        after_batch2 = _pages(system)

        # Post-commit rollback: batch 2 was bad, revert it.
        engine.rollback("batch-000001")
        rollback_identical = _pages(system) == after_batch1
        engine.commit_batch(batch2)  # restore for the crash below

    # Simulated crash: a fresh process rebuilds the base and replays.
    recovered = _system(base)
    with IngestEngine(recovered, tmp_path / "wal") as engine:
        replayed = engine.replay()
        replay_identical = _pages(recovered) == after_batch2

    RESULTS["recovery"] = {
        "replayed_batches": replayed,
        "replay_byte_identical": replay_identical,
        "rollback_byte_identical": rollback_identical,
    }
    print_table(
        "E22: recovery identity",
        ["path", "byte-identical"],
        [
            ["WAL crash replay (2 committed, 1 rolled back)",
             replay_identical],
            ["rollback('batch-000001') after bad batch",
             rollback_identical],
        ],
    )
    assert rollback_identical
    assert replay_identical

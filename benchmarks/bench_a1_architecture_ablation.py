"""A1 — Section 3.6 design-choice ablation: why a *bidirectional* RNN.

The paper's architectural argument: "Since tuples in tables are order
independent and context specific, both global average pooling and
traditional RNNs are ill-suited for creating good tuple representations",
which is why the ensemble uses bidirectional RNNs whose output is
concatenated with the original embeddings.

This ablation (called out in DESIGN.md) trains four encoders under
identical conditions:

* **bi** — the paper's BiGRU design,
* **uni** — a traditional forward-only GRU (order-dependent),
* **gap** — global average pooling over static embeddings (no context),

and additionally evaluates order robustness: tuples with shuffled cell
order should classify the same, which penalizes the order-dependent
unidirectional encoder.
"""

import numpy as np
from benchlib import print_table

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.classify.dataset import LabeledTuple, MetadataDataset
from repro.neural.metrics import binary_metrics
from repro.tables.features import RowFeatures


def _shuffled_copy(dataset, seed=7):
    """The same tuples with their cells randomly permuted."""
    rng = np.random.default_rng(seed)
    shuffled = []
    for item in dataset:
        cells = list(item.cells)
        rng.shuffle(cells)
        features = RowFeatures(
            f1_text=" ".join(cells),
            f2_num_cells=item.features.f2_num_cells,
            f3_has_above=item.features.f3_has_above,
            f4_has_below=item.features.f4_has_below,
            f5_cells_above=item.features.f5_cells_above,
            f6_cells_below=item.features.f6_cells_below,
            f7_is_metadata=item.features.f7_is_metadata,
        )
        shuffled.append(LabeledTuple(
            cells=tuple(cells), label=item.label, features=features,
            orientation=item.orientation, table_rows=item.table_rows,
            table_columns=item.table_columns,
        ))
    return MetadataDataset(shuffled)


def test_a1_encoder_ablation(tuple_dataset, tuple_vocabulary, benchmark):
    split = int(len(tuple_dataset) * 0.8)
    train = tuple_dataset.subset(range(split))
    test = tuple_dataset.subset(range(split, len(tuple_dataset)))
    shuffled_test = _shuffled_copy(test)

    rows = []
    results = {}
    for mode, label in (("bi", "BiGRU (paper)"),
                        ("uni", "forward-only GRU"),
                        ("gap", "global average pooling")):
        model = NeuralMetadataClassifier(
            tuple_vocabulary, cell="gru", mode=mode, embed_dim=12,
            hidden=8, max_terms=12, max_cells=6, seed=11,
        )
        history = model.fit(train, epochs=5, batch_size=32)
        ordered = binary_metrics(test.labels, model.predict(test))
        shuffled = binary_metrics(
            shuffled_test.labels, model.predict(shuffled_test)
        )
        results[mode] = (ordered, shuffled)
        rows.append([label, ordered["f1"], shuffled["f1"],
                     ordered["f1"] - shuffled["f1"],
                     history.total_seconds])
    print_table(
        "A1: tuple-encoder ablation (paper: GAP and traditional RNNs are "
        "ill-suited)",
        ["encoder", "f1", "f1 (shuffled cells)", "order sensitivity",
         "train sec"],
        rows,
        note="tuples are order independent: a good encoder keeps F1 "
        "under cell shuffling",
    )

    bi_ordered, bi_shuffled = results["bi"]
    gap_ordered, _ = results["gap"]
    # The paper's design is at least as good as both baselines, and its
    # quality survives cell reordering.
    assert bi_ordered["f1"] >= gap_ordered["f1"] - 0.02
    assert bi_ordered["f1"] >= results["uni"][0]["f1"] - 0.02
    assert abs(bi_ordered["f1"] - bi_shuffled["f1"]) < 0.1

    def train_bi():
        model = NeuralMetadataClassifier(
            tuple_vocabulary, mode="bi", embed_dim=12, hidden=8,
            max_terms=12, max_cells=6, seed=12,
        )
        model.fit(train, epochs=1, batch_size=32)

    benchmark(train_bi)

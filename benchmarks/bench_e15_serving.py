"""E15 — the serving tier: cached vs. cold throughput under load.

The paper serves covidkg.org's search engines to interactive web users;
the ROADMAP's north star is "heavy traffic from millions of users".
This experiment measures what the ``repro.serve`` tier buys on the
workload that traffic actually has: a small set of popular queries
repeated by many concurrent clients.

Regenerates/claims:

* a cache-warm repeated-query workload sustains **>= 5x** the
  throughput of recomputing every request against the bare system;
* ``QueryService.stats()`` reports non-zero hit/miss counters and
  latency percentiles for the run;
* admission control sheds (``ServiceOverloadedError``) instead of
  queueing unboundedly when offered load exceeds the configured bound.
"""

import threading
import time

import pytest
from benchlib import print_table

from repro.api.system import CovidKG, CovidKGConfig
from repro.errors import ServiceOverloadedError
from repro.serve.service import QueryService, ServeConfig

#: The popular-query mix every client replays.
QUERIES = ["vaccine side effects", "covid symptoms", "dosage trial",
           "pfizer children", "side effects"]
CLIENTS = 4
ROUNDS_PER_CLIENT = 10


@pytest.fixture(scope="module")
def system(small_corpus):
    kg = CovidKG(CovidKGConfig(num_shards=3, search_shards=3))
    kg.ingest(small_corpus)
    return kg


def _drive(issue_one):
    """Run the concurrent repeated-query workload; returns requests/s."""
    errors = []

    def client(client_id):
        try:
            for round_number in range(ROUNDS_PER_CLIENT):
                for query in QUERIES:
                    issue_one(query)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    assert not errors, f"workload raised: {errors!r}"
    total = CLIENTS * ROUNDS_PER_CLIENT * len(QUERIES)
    return total, seconds, total / seconds


def test_e15_cached_vs_cold_throughput(system):
    # Baseline: every request recomputes on the bare system.  The bare
    # engines are not safe under concurrent mutation, but this workload
    # is read-only, so direct concurrent calls are the honest baseline.
    cold_total, cold_seconds, cold_rps = _drive(
        lambda query: system.search(query, page=1)
    )

    config = ServeConfig(num_workers=CLIENTS, max_queue=256)
    with QueryService(system, config) as service:
        for query in QUERIES:  # warm the cache once per distinct query
            service.query("all_fields", query=query, page=1)
        warm_total, warm_seconds, warm_rps = _drive(
            lambda query: service.query("all_fields", query=query, page=1)
        )
        stats = service.stats()

    speedup = warm_rps / cold_rps
    print_table(
        "E15: serving tier, cached vs cold (concurrent repeated queries)",
        ["mode", "requests", "seconds", "req/s", "speedup"],
        [
            ["cold (bare CovidKG)", cold_total, cold_seconds,
             cold_rps, 1.0],
            ["warm (QueryService cache)", warm_total, warm_seconds,
             warm_rps, speedup],
        ],
        note=f"{CLIENTS} clients x {ROUNDS_PER_CLIENT} rounds x "
             f"{len(QUERIES)} queries; cache hits {stats['cache']['hits']}"
             f", misses {stats['cache']['misses']}",
    )

    latency = stats["latency"]["overall"]
    fanout = stats["latency"]["shard_fanout"]
    print_table(
        "E15: served request latency (ms)",
        ["scope", "count", "mean", "p50", "p95", "p99", "max"],
        [
            ["request", latency["count"], latency["mean_ms"],
             latency["p50_ms"], latency["p95_ms"], latency["p99_ms"],
             latency["max_ms"]],
            ["shard fan-out", fanout["count"], fanout["mean_ms"],
             fanout["p50_ms"], fanout["p95_ms"], fanout["p99_ms"],
             fanout["max_ms"]],
        ],
        note=f"single-flight collapsed {stats['collapsed_misses']}, "
             f"negative hits {stats['negative_hits']} (cache-warm "
             f"workload: most requests hit before they can collapse)",
    )

    # The acceptance criteria.
    assert speedup >= 5.0, (
        f"cache-warm throughput only {speedup:.1f}x the cold baseline"
    )
    assert stats["cache"]["hits"] > 0
    assert stats["cache"]["misses"] > 0
    # The search engines are sharded (search_shards=3): cold misses
    # scatter-gather, so per-shard fan-out latency was observed.
    assert fanout["count"] > 0
    for label in ("p50_ms", "p95_ms", "p99_ms"):
        assert latency[label] is not None


def test_e15_admission_control_sheds_overload(system):
    config = ServeConfig(num_workers=1, max_queue=4)
    with QueryService(system, config) as service:
        release = threading.Event()
        started = threading.Event()

        def occupy_worker():
            started.set()
            release.wait(timeout=30)

        blocker = service._pool.submit(occupy_worker)
        assert started.wait(timeout=10)
        shed = 0
        admitted = []
        for i in range(32):  # distinct queries: every one misses
            try:
                admitted.append(
                    service.submit("all_fields", query=f"query {i}")
                )
            except ServiceOverloadedError:
                shed += 1
        release.set()
        blocker.result(timeout=10)
        for future in admitted:
            future.result(timeout=30)
        stats = service.stats()

    print_table(
        "E15: bounded admission under overload",
        ["offered", "admitted", "shed", "queue bound"],
        [[32, len(admitted), shed, config.max_queue]],
        note="excess load fails fast with ServiceOverloadedError",
    )
    assert shed > 0
    assert len(admitted) <= config.max_queue
    assert stats["shed"] == shed

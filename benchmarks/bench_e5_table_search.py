"""E5 — Figure 4: the table search engine (query "ventilators").

Figure 4 screenshots table-search results for "ventilators": matching
tables with the matched term highlighted in every field, the abstract
excerpt, and ranking by "an advanced ranking function having both static
and dynamic features".

Regenerates: hit correctness (only papers whose *tables* match are
returned), highlight coverage, caption-first table ordering, latency.
"""

import re

from benchlib import print_table

from repro.search.table_search import TableSearchEngine

_HIGHLIGHT_RE = re.compile(r"\[\[[^\]]+\]\]")


def _tables_text(paper):
    parts = []
    for table in paper.get("tables", []):
        parts.append(table.get("caption", ""))
        for row in table.get("rows", []):
            parts.extend(
                cell.get("text", "") for cell in row.get("cells", [])
            )
    return " ".join(parts).lower()


def test_e5_table_search(medium_corpus, benchmark):
    corpus = medium_corpus[:200]
    engine = TableSearchEngine()
    engine.add_papers(corpus)

    rows = []
    for query, needle in [("efficacy", "efficacy"),
                          ("fatigue", "fatigue"),
                          ("demographics", "demographic")]:
        results = engine.search(query)
        truth = {
            paper["paper_id"] for paper in corpus
            if needle in _tables_text(paper)
        }
        returned = {
            result.paper_id
            for page in range(1, results.num_pages + 1)
            for result in engine.search(query, page=page)
        }
        highlight_ok = all(
            any(
                _HIGHLIGHT_RE.search(table["caption"])
                or any(_HIGHLIGHT_RE.search(cell)
                       for row in table["rows"] for cell in row)
                for table in result.extras["tables"]
            )
            for result in results
        )
        rows.append([query, results.total_matches, len(truth),
                     "yes" if returned == truth else "no",
                     "yes" if highlight_ok else "no",
                     f"{results.seconds * 1000:.1f}"])
        assert returned == truth  # exactly the table-matching papers
        assert highlight_ok
    print_table(
        "E5: table search engine (Figure 4 shape, query highlighting)",
        ["query", "matches", "truth", "exact recall", "highlights",
         "latency ms"],
        rows,
        note="a body-only mention must NOT appear in table search results",
    )

    benchmark(lambda: engine.search("efficacy"))


def test_e5_caption_hits_rank_before_cell_hits(medium_corpus, benchmark):
    engine = TableSearchEngine()
    engine.add_papers(medium_corpus[:200])
    results = engine.search("side effects")
    for result in results:
        tables = result.extras["tables"]
        # Within one paper, caption-matching tables come first.
        seen_non_caption = False
        for table in tables:
            if not table["caption_hit"]:
                seen_non_caption = True
            else:
                assert not seen_non_caption
    benchmark(lambda: engine.search("side effects"))

"""Shared helpers for the experiment benchmarks (E1-E14).

Each ``bench_eNN_*.py`` file regenerates one table/figure/claim from the
paper's evaluation; this module provides the table printer every
experiment uses, so benchmark output reads like the paper's rows.
"""

from __future__ import annotations

from typing import Any, Sequence


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence[Any]],
                note: str = "") -> None:
    """Print an aligned experiment table under a banner."""
    rendered = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header[i])),
            max((len(row[i]) for row in rendered), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if note:
        print(f"note: {note}")


def _format(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)

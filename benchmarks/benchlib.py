"""Shared helpers for the experiment benchmarks (E1-E20).

Each ``bench_eNN_*.py`` file regenerates one table/figure/claim from the
paper's evaluation; this module provides the table printer every
experiment uses, so benchmark output reads like the paper's rows.

Every benchmark module also emits a machine-readable
``BENCH_<experiment>.json`` artifact (the CI bench-smoke job uploads
them).  Emission is uniform and automatic — an autouse fixture in
``conftest.py`` calls :func:`emit_artifact` at module teardown, merging
the module's optional ``RESULTS`` dict with provenance every artifact
carries: git SHA, core count, Python version, the ``REPRO_*`` and
per-experiment env knobs in effect, and per-test wall-clock durations.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Sequence

#: Module path -> {test name -> call-phase seconds}; filled by the
#: ``pytest_runtest_logreport`` hook in ``conftest.py``.
_DURATIONS: dict[str, dict[str, float]] = {}


def record_duration(nodeid: str, seconds: float) -> None:
    """Record one test's call-phase duration (conftest hook helper)."""
    if "::" not in nodeid:
        return
    module_path, test_name = nodeid.split("::", 1)
    module = os.path.splitext(os.path.basename(module_path))[0]
    _DURATIONS.setdefault(module, {})[test_name] = seconds


def git_sha() -> str:
    """The repo's HEAD commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _knobs(experiment: str) -> dict[str, str]:
    """Env knobs in effect: ``REPRO_*`` plus this experiment's own.

    ``e16_scatter_gather`` reads ``E16_*``; the prefix is derived from
    the experiment name so new benchmarks get it for free.
    """
    prefixes = ["REPRO_", "BENCH_DIR"]
    head = experiment.split("_", 1)[0]
    if head:
        prefixes.append(head.upper() + "_")
    return {
        name: value for name, value in sorted(os.environ.items())
        if any(name.startswith(prefix) for prefix in prefixes)
    }


def emit_artifact(module: Any) -> str:
    """Write ``BENCH_<experiment>.json`` for a finished benchmark module.

    The payload is the module's ``RESULTS`` dict (if it defines one)
    plus uniform ``provenance`` and ``test_durations`` sections, so
    artifacts from different experiments are comparable run-to-run.
    """
    module_name = getattr(module, "__name__", str(module))
    experiment = module_name.removeprefix("bench_")
    payload = dict(getattr(module, "RESULTS", {}) or {})
    payload.setdefault("experiment", experiment)
    payload["provenance"] = {
        "git_sha": git_sha(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "knobs": _knobs(experiment),
    }
    payload["test_durations"] = _DURATIONS.get(module_name, {})
    payload["written_at"] = time.time()
    path = os.path.join(os.environ.get("BENCH_DIR", "."),
                        f"BENCH_{experiment}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {path}")
    return path


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence[Any]],
                note: str = "") -> None:
    """Print an aligned experiment table under a banner."""
    rendered = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header[i])),
            max((len(row[i]) for row in rendered), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if note:
        print(f"note: {note}")


def _format(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)

"""E13 — Figure 1 (№5): topical clustering of the corpus.

Paper claim: the dataset is "categorized from the dataset by relevant
COVID-19 topics" into topical clusters that feed KG enrichment; the paper
"trained a variety of advanced AI models with our new tabular embeddings
to help perform accurate clustering".

Regenerates: clustering quality (purity, NMI) against the generator's
topic ground truth across k, and the latency of the clustering step.
Shape to reproduce: quality peaks near the true topic count (8) and
degrades when k is far off.
"""

import numpy as np
from benchlib import print_table

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.enrichment import EnrichmentPipeline, document_vector
from repro.kg.fusion import FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph
from repro.corpus.schema import full_text
from repro.ml.kmeans import KMeans, normalized_mutual_information, purity

NUM_TRUE_TOPICS = 8


def _pipeline():
    graph = seed_covid_graph()
    return EnrichmentPipeline(FusionEngine(graph, NodeMatcher(graph)))


def test_e13_cluster_quality_vs_k(benchmark):
    corpus = CorpusGenerator(GeneratorConfig(
        seed=113, topic_purity=0.85, tables_per_paper=(0, 1),
    )).papers(160)
    truth = np.array([
        hash(paper["ground_truth"]["topic"]) % (10 ** 9)
        for paper in corpus
    ])
    pipeline = _pipeline()

    rows = []
    quality = {}
    for k in (2, 4, 8, 12, 16):
        _, assignments = pipeline.cluster_topics(corpus, k, seed=113)
        p = purity(assignments, truth)
        nmi = normalized_mutual_information(assignments, truth)
        quality[k] = nmi
        rows.append([k, p, nmi])
    print_table(
        f"E13: topical clustering vs ground truth "
        f"({NUM_TRUE_TOPICS} true topics)",
        ["k", "purity", "NMI"],
        rows,
        note="NMI should peak near the true topic count",
    )

    # Shape: clustering at/above the true k clearly beats k=2, and the
    # best NMI is meaningful (well above random).
    assert quality[8] > quality[2]
    assert max(quality.values()) > 0.5

    vectors = np.stack([
        document_vector(full_text(paper)) for paper in corpus
    ])
    benchmark(lambda: KMeans(8, seed=1).fit_predict(vectors))


def test_e13_clusters_feed_enrichment(benchmark):
    corpus = CorpusGenerator(GeneratorConfig(
        seed=114, tables_per_paper=(1, 2),
    )).papers(60)
    pipeline = _pipeline()
    report = pipeline.enrich(corpus, num_clusters=6, seed=114)

    rows = [
        [cluster.cluster_id, len(cluster.paper_ids),
         ", ".join(cluster.top_terms[:4])]
        for cluster in report.clusters
    ]
    print_table(
        "E13b: discovered clusters feeding enrichment (№5 -> №6)",
        ["cluster", "papers", "top terms"],
        rows,
    )
    assert len(report.clusters) == 6
    assert report.subtrees > 0

    benchmark(lambda: pipeline.cluster_topics(corpus, 6, seed=114))

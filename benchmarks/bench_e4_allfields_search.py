"""E4 — Figure 2: the all-fields search engine (query "masks").

The paper's Figure 2 screenshots ranked, snippeted, paginated results for
the query "masks" over every publication field.  Regenerates:

* the Figure 2 result shape (ranked hits with per-field excerpts, ten per
  page),
* retrieval quality against the corpus generator's topic ground truth
  (a topic-term query should surface that topic's papers first),
* query latency as the corpus grows.
"""

from benchlib import print_table

from repro.search.all_fields import AllFieldsEngine

#: (query term, generator topic it belongs to)
TOPIC_QUERIES = [
    ("masks", "transmission"),
    ("ventilator", "critical_care"),
    ("booster", "vaccines"),
    ("remdesivir", "treatment"),
]


def _engine(corpus, size):
    engine = AllFieldsEngine()
    engine.add_papers(corpus[:size])
    return engine


def test_e4_result_shape_and_quality(medium_corpus, benchmark):
    engine = _engine(medium_corpus, 200)
    truth = {
        paper["paper_id"]: paper["ground_truth"]["topic"]
        for paper in medium_corpus[:200]
    }

    rows = []
    for query, topic in TOPIC_QUERIES:
        results = engine.search(query)
        top10 = list(results)[:10]
        relevant = sum(
            1 for result in top10 if truth[result.paper_id] == topic
        )
        precision_at_10 = relevant / len(top10) if top10 else 0.0
        rows.append([query, results.total_matches, len(top10),
                     precision_at_10,
                     f"{results.seconds * 1000:.1f}"])
        assert len(top10) <= 10  # ten per page, as the paper paginates
        if top10:
            # Every displayed hit carries at least one highlighted snippet.
            assert all(
                any("[[" in text for text in result.snippets.values())
                for result in top10
            )
    print_table(
        "E4: all-fields engine (Figure 2 shape; P@10 vs topic truth)",
        ["query", "matches", "page size", "P@10", "latency ms"],
        rows,
        note="topic-term queries should rank their own topic's papers first",
    )
    mean_p10 = sum(row[3] for row in rows) / len(rows)
    assert mean_p10 > 0.5

    benchmark(lambda: engine.search("masks"))


def test_e4_latency_scaling(medium_corpus, benchmark):
    rows = []
    for size in (50, 150, 300):
        engine = _engine(medium_corpus, size)
        results = engine.search("vaccine")
        rows.append([size, results.total_matches,
                     f"{results.seconds * 1000:.1f}"])
    print_table(
        "E4b: all-fields latency vs corpus size",
        ["corpus docs", "matches", "latency ms"],
        rows,
    )
    engine = _engine(medium_corpus, 300)
    benchmark(lambda: engine.search("vaccine"))

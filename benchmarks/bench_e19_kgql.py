"""E19 — declarative KG queries: cache economics and traversal latency.

PR 6 adds KGQL (``repro.kgql``) and serves it as the ``kg_query``
engine.  Two claims are worth numbers:

* the serving tier's normalized-query result cache should dominate
  repeat-query cost — a warm identical query must be far cheaper than
  a cold one (the cold path re-plans and re-walks the graph because
  every request is preceded by a ``touch()``-style invalidation);
* a 3-hop bounded traversal over a few-thousand-node graph must stay
  interactive (the front end issues these per click), measured as p95
  engine latency.

Emits ``BENCH_e19_kgql.json``.  CI runs a reduced shape via the
``E19_*`` env knobs.
"""

import os
import random
import time

import pytest
from benchlib import print_table

from repro.api.system import CovidKG, CovidKGConfig
from repro.kg.graph import KnowledgeGraph
from repro.kgql import KGQLEngine
from repro.serve.service import QueryService, ServeConfig

NODES = int(os.environ.get("E19_NODES", "2000"))
REQUESTS = int(os.environ.get("E19_REQUESTS", "200"))
HOP_SAMPLES = int(os.environ.get("E19_HOP_SAMPLES", "60"))

THREE_HOP_QUERY = (
    'MATCH (v:"Vaccines")-[parent_of*1..3]->(e) '
    'WHERE e.papers >= 0 RETURN e LIMIT 20'
)

RESULTS = {
    "experiment": "e19_kgql",
    "nodes": NODES,
    "requests": REQUESTS,
    "hop_samples": HOP_SAMPLES,
    "query": THREE_HOP_QUERY,
    "scenarios": {},
}


def _percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       int(round(fraction * (len(ordered) - 1))))]


def _synthetic_graph(size, seed=19):
    """A bushy ~``size``-node KG with label collisions + provenance."""
    rng = random.Random(seed)
    graph = KnowledgeGraph("COVID-19")
    hub = graph.add_node("Vaccines", category="vaccines")
    labels = ["Side-effects", "Fever", "Dosage", "Fatigue", "Masks",
              "Trial", "Variant", "Headache"]
    ids = [hub]
    for index in range(size - 2):
        parent = rng.choice(ids[-64:])  # recent-biased: moderate depth
        node_id = graph.add_node(
            f"{rng.choice(labels)} {index % 97}",
            parent_id=parent,
            category=rng.choice(["side_effects", "symptoms", None]),
        )
        if index % 3 == 0:
            graph.node(node_id).add_provenance(f"paper-{index % 211}")
        ids.append(node_id)
    return graph


@pytest.fixture(scope="module")
def system():
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.graph = _synthetic_graph(NODES)
    kg.kg_search.graph = kg.graph
    kg.kgql = KGQLEngine(kg.graph)
    return kg


def test_e19_kgql_cache_and_traversal(system):
    # -- 3-hop traversal latency, engine only (no serving tier) --------
    engine = system.kgql
    hop_seconds = []
    for _ in range(HOP_SAMPLES):
        started = time.perf_counter()
        result = engine.query(THREE_HOP_QUERY)
        hop_seconds.append(time.perf_counter() - started)
    assert result.total_matches > 0
    hop_p95 = _percentile(hop_seconds, 0.95)

    # -- cold vs warm throughput through the serving tier --------------
    with QueryService(system, ServeConfig(num_workers=2)) as service:
        started = time.perf_counter()
        for _ in range(REQUESTS):
            system.graph.touch()  # invalidate: every request recomputes
            served = service.query("kg_query", query=THREE_HOP_QUERY)
            assert not served.cached
        cold_seconds = time.perf_counter() - started

        service.query("kg_query", query=THREE_HOP_QUERY)  # prime
        started = time.perf_counter()
        for _ in range(REQUESTS):
            served = service.query("kg_query", query=THREE_HOP_QUERY)
            assert served.cached
        warm_seconds = time.perf_counter() - started

    cold_rps = REQUESTS / cold_seconds
    warm_rps = REQUESTS / warm_seconds
    RESULTS["scenarios"] = {
        "three_hop": {
            "samples": HOP_SAMPLES,
            "p50_s": _percentile(hop_seconds, 0.50),
            "p95_s": hop_p95,
            "total_matches": result.total_matches,
        },
        "serving": {
            "requests": REQUESTS,
            "cold_rps": cold_rps,
            "warm_rps": warm_rps,
            "speedup": warm_rps / cold_rps,
        },
    }

    print_table(
        "E19: KGQL traversal latency and cache economics",
        ["nodes", "3-hop p95 ms", "cold rps", "warm rps", "speedup"],
        [[
            NODES,
            f"{hop_p95 * 1e3:.2f}",
            f"{cold_rps:.0f}",
            f"{warm_rps:.0f}",
            f"{warm_rps / cold_rps:.1f}x",
        ]],
        note=f"{result.total_matches} matches per query; cold = "
             f"version-invalidated before every request",
    )

    # Cache economics: a warm identical query must beat the cold path
    # by a wide margin, and the traversal itself must stay interactive.
    assert warm_rps > 2.0 * cold_rps, (
        f"warm {warm_rps:.0f} rps vs cold {cold_rps:.0f} rps"
    )
    assert hop_p95 < 1.0, f"3-hop p95 {hop_p95:.3f}s not interactive"

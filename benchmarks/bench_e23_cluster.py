"""E23 — multi-replica cluster serving: scaling, shared cache, failover.

PR 10 adds ``repro.cluster``: N replica gateways over one saved system,
a shared cross-process result cache, and a consistent-hash router with
health-gated failover.  The claims worth measuring:

* **replica scaling** — aggregate cache-warm throughput at 1/2/4
  replicas, driving each replica directly through client-side
  consistent-hash routing (the memcached-client pattern; keeps the
  single router process out of the measurement).  Each replica is its
  own OS process with its own GIL, so warm-hit throughput must scale
  near-linearly: >= 3x at 4 replicas, asserted on >= 4-core machines;
* **shared-cache hit vs L1 hit** — a page computed by replica A must
  be served by replica B from the shared tier without recomputation,
  and the shared hit must price like a cache hit, not a recompute;
* **failover p95** — SIGKILL one replica of a routed 3-replica cluster
  mid-load: the router must eject it and fail requests over with
  *zero* failed requests after the kill, while read p95 stays sane.

Reduced CI shape: ``E23_PAPERS=24 E23_ROUNDS=2
E23_FAILOVER_REQUESTS=60 E23_LATENCY_SAMPLES=4``.
"""

import os
import threading
import time

from benchlib import print_table

from repro.cluster.ring import HashRing
from repro.cluster.runner import ClusterConfig, ClusterRunner
from repro.gateway import GatewayClient

PAPERS = int(os.environ.get("E23_PAPERS", "48"))
QUERY_COUNT = int(os.environ.get("E23_QUERIES", "24"))
ROUNDS = int(os.environ.get("E23_ROUNDS", "6"))
FAILOVER_REQUESTS = int(os.environ.get("E23_FAILOVER_REQUESTS", "180"))
LATENCY_SAMPLES = int(os.environ.get("E23_LATENCY_SAMPLES", "10"))

REPLICA_SETS = (1, 2, 4)
SHARDS = 2
WORKERS = 2
SEED = 123

#: The ISSUE's aggregate-throughput floor: 4 replicas vs 1, asserted
#: only on machines with enough cores to actually run 4 replicas.
SCALING_TARGET = 3.0

_TERMS = ["covid vaccine", "antibody response", "clinical trial",
          "side effects", "transmission", "spike protein"]
QUERIES = [f"{_TERMS[i % len(_TERMS)]} q{i}" for i in range(QUERY_COUNT)]

RESULTS = {
    "experiment": "e23_cluster",
    "papers": PAPERS,
    "queries": QUERY_COUNT,
    "rounds": ROUNDS,
    "shards": SHARDS,
    "workers_per_replica": WORKERS,
}


def _cluster(replicas):
    return ClusterRunner(ClusterConfig(
        replicas=replicas, generate=PAPERS, shards=SHARDS, seed=SEED,
        workers=WORKERS, probe_interval=0.1))


def _replica_records(runner):
    with GatewayClient("127.0.0.1", runner.router_port) as router:
        return router.get("/v1/cluster").json()["replicas"]


def _p95(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


# -- replica scaling -------------------------------------------------------

def _warm_owners(addresses, owner_of):
    """Prime every query's owner replica: the measured drive below must
    see only warm L1 hits."""
    clients = {replica_id: GatewayClient(*address)
               for replica_id, address in addresses.items()}
    try:
        for query, owner in owner_of.items():
            response = clients[owner].search("all_fields", query=query)
            assert response.status == 200, response.text
        for query, owner in owner_of.items():
            assert clients[owner].search(
                "all_fields", query=query).json()["cached"]
    finally:
        for client in clients.values():
            client.close()


def _drive_warm(addresses, owner_of, num_threads):
    """ROUNDS passes over the query set, partitioned across threads,
    each request sent straight to its ring owner."""
    barrier = threading.Barrier(num_threads + 1)
    counts = [0] * num_threads
    errors = []

    def worker(slot):
        clients = {replica_id: GatewayClient(*address)
                   for replica_id, address in addresses.items()}
        try:
            barrier.wait()
            for _ in range(ROUNDS):
                for index, query in enumerate(QUERIES):
                    if index % num_threads != slot:
                        continue
                    response = clients[owner_of[query]].search(
                        "all_fields", query=query)
                    if response.status != 200:
                        errors.append(response.status)
                    counts[slot] += 1
        finally:
            for client in clients.values():
                client.close()

    threads = [threading.Thread(target=worker, args=(slot,), daemon=True)
               for slot in range(num_threads)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    return sum(counts) / seconds, seconds, errors


def test_e23_replica_scaling():
    rows = []
    RESULTS["scaling"] = []
    rps_by_count = {}
    for replicas in REPLICA_SETS:
        with _cluster(replicas) as runner:
            records = _replica_records(runner)
            ring = HashRing([record["replica_id"] for record in records])
            addresses = {record["replica_id"]:
                         (record["host"], record["port"])
                         for record in records}
            owner_of = {query: ring.route(query.encode())
                        for query in QUERIES}
            _warm_owners(addresses, owner_of)
            num_threads = 2 * replicas
            rps, seconds, errors = _drive_warm(addresses, owner_of,
                                               num_threads)
        assert errors == [], errors
        rps_by_count[replicas] = rps
        speedup = rps / rps_by_count[REPLICA_SETS[0]]
        rows.append([replicas, num_threads, rps, speedup])
        RESULTS["scaling"].append({
            "replicas": replicas, "threads": num_threads,
            "rps": rps, "seconds": seconds, "speedup": speedup,
        })

    cores = os.cpu_count() or 1
    print_table(
        "E23: aggregate cache-warm throughput, client-side ring routing",
        ["replicas", "threads", "req/s", "vs 1 replica"],
        rows,
        note=f"{cores} core(s); >= {SCALING_TARGET:.0f}x at 4 replicas "
             "asserted only on >= 4-core machines (each replica is its "
             "own process and GIL)",
    )
    if cores >= 4:
        assert rps_by_count[4] / rps_by_count[1] >= SCALING_TARGET


# -- shared-cache hit vs L1 hit -------------------------------------------

def test_e23_shared_hit_vs_l1():
    cold, l1_hits, shared_hits = [], [], []
    with _cluster(2) as runner:
        records = _replica_records(runner)
        first, second = [GatewayClient(record["host"], record["port"])
                         for record in records]
        try:
            for sample in range(LATENCY_SAMPLES):
                query = f"latency probe {sample}"
                started = time.perf_counter()
                computed = first.search("all_fields", query=query)
                cold.append(time.perf_counter() - started)
                assert computed.status == 200
                assert not computed.json()["cached"]

                started = time.perf_counter()
                warm = first.search("all_fields", query=query)
                l1_hits.append(time.perf_counter() - started)
                assert warm.json()["cached"]

                # The other replica never computed this page: its first
                # answer can only come from the shared tier.
                started = time.perf_counter()
                shared = second.search("all_fields", query=query)
                shared_hits.append(time.perf_counter() - started)
                assert shared.json()["cached"], (
                    "replica 2 recomputed a page the shared cache held")
                assert shared.json()["value"] == computed.json()["value"]
        finally:
            first.close()
            second.close()

    cold_median = _median(cold)
    l1_median = _median(l1_hits)
    shared_median = _median(shared_hits)
    print_table(
        "E23: result page latency by tier (median seconds)",
        ["tier", "median s", "vs L1 hit"],
        [["cold compute", cold_median, cold_median / l1_median],
         ["L1 hit (same replica)", l1_median, 1.0],
         ["shared hit (other replica)", shared_median,
          shared_median / l1_median]],
        note="shared hit = one cache-server round trip; must price "
             "like a hit, not a recompute",
    )
    RESULTS["hit_latency"] = {
        "samples": LATENCY_SAMPLES,
        "cold_median_seconds": cold_median,
        "l1_median_seconds": l1_median,
        "shared_median_seconds": shared_median,
    }
    # A shared hit skips the compute; below an absolute floor the
    # comparison is timer noise (e22 precedent).
    assert shared_median <= max(cold_median * 1.5, 0.010)


# -- failover under load ---------------------------------------------------

def test_e23_failover_p95():
    with _cluster(3) as runner:
        port = runner.router_port
        client = GatewayClient("127.0.0.1", port)
        try:
            for query in QUERIES:
                assert client.search("all_fields",
                                     query=query).status == 200
            victim = client.search(
                "all_fields", query=QUERIES[0]).headers["x-replica"]

            ejected_at = None
            kill_at_request = FAILOVER_REQUESTS // 3
            before, after = [], []
            failures = []
            killed_monotonic = None
            for index in range(FAILOVER_REQUESTS):
                if index == kill_at_request:
                    runner.kill_replica(victim)
                    killed_monotonic = time.monotonic()
                query = QUERIES[index % len(QUERIES)]
                started = time.perf_counter()
                response = client.search("all_fields", query=query)
                elapsed = time.perf_counter() - started
                if response.status != 200:
                    failures.append((index, response.status))
                (before if index < kill_at_request else
                 after).append(elapsed)
                if killed_monotonic is not None and ejected_at is None:
                    states = {state["replica_id"]: state
                              for state in client.get(
                                  "/v1/cluster").json()["replicas"]}
                    if states[victim]["ejected"]:
                        ejected_at = time.monotonic() - killed_monotonic
            snapshot = client.get("/v1/cluster").json()
            states = {state["replica_id"]: state
                      for state in snapshot["replicas"]}
        finally:
            client.close()

    # The hard gate: the SIGKILLed replica is ejected and not one
    # request failed after the kill — transport errors fail over to the
    # next replica on the preference list within the same request.
    assert failures == [], failures
    assert states[victim]["ejected"] and not states[victim]["in_ring"]
    assert ejected_at is not None

    p95_before = _p95(before)
    p95_after = _p95(after)
    print_table(
        "E23: routed read p95 across a SIGKILL + failover",
        ["phase", "requests", "p95 s", "max s"],
        [["before kill", len(before), p95_before, max(before)],
         ["after kill", len(after), p95_after, max(after)]],
        note=f"victim ejected {ejected_at:.3f}s after SIGKILL; "
             "0 failed requests post-kill (asserted)",
    )
    RESULTS["failover"] = {
        "requests": FAILOVER_REQUESTS,
        "kill_at_request": kill_at_request,
        "failed_after_kill": len(failures),
        "ejection_seconds": ejected_at,
        "p95_before_seconds": p95_before,
        "p95_after_seconds": p95_after,
        "max_after_seconds": max(after),
    }

"""E1 — Section 3.3: metadata-classification F-measure, 10-fold CV.

Paper claim: "89% - 96% F-measure on average ... for Machine-learning
based model (SVM) and Deep-learning Bi-GRU-based models with slight
differences depending on whether the classified metadata is horizontal or
vertical, as well as its row/column number."

Regenerates: overall F1 for SVM and BiGRU, plus the orientation x
table-size breakdown.  Shape to reproduce: every cell inside (or near)
the 89-96% band, with mild variation across slices.
"""

from benchlib import print_table

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.classify.evaluate import evaluate_classifier_cv, evaluation_grid
from repro.classify.svm_model import SvmMetadataClassifier


def _svm_factory():
    return SvmMetadataClassifier(epochs=10, seed=1)


def _bigru_factory(vocabulary):
    return lambda: NeuralMetadataClassifier(
        vocabulary, cell="gru", embed_dim=12, hidden=8,
        max_terms=12, max_cells=6, seed=1,
    )


def test_e1_f_measure_table(tuple_dataset, tuple_vocabulary, benchmark):
    svm_overall = evaluate_classifier_cv(
        _svm_factory, tuple_dataset, num_folds=10
    )
    bigru_overall = evaluate_classifier_cv(
        _bigru_factory(tuple_vocabulary), tuple_dataset, num_folds=10,
        fit_kwargs={"epochs": 3, "batch_size": 32},
    )
    svm_grid = evaluation_grid(_svm_factory, tuple_dataset, num_folds=10)

    rows = [
        ["SVM", "overall", svm_overall.mean("precision"),
         svm_overall.mean("recall"), svm_overall.mean("f1")],
        ["BiGRU", "overall", bigru_overall.mean("precision"),
         bigru_overall.mean("recall"), bigru_overall.mean("f1")],
    ]
    for slice_name, report in sorted(svm_grid.items()):
        rows.append(["SVM", slice_name, report.mean("precision"),
                     report.mean("recall"), report.mean("f1")])
    print_table(
        "E1: metadata classification, 10-fold CV (paper: 89-96% F1)",
        ["model", "slice", "precision", "recall", "f1"],
        rows,
        note="horizontal/vertical and size slices vary mildly, as claimed",
    )

    # Shape assertions: both models land in/near the paper's band.
    assert svm_overall.mean("f1") >= 0.85
    assert bigru_overall.mean("f1") >= 0.85

    # The timed kernel: one SVM fold (fit + predict).
    split = int(len(tuple_dataset) * 0.9)
    train = tuple_dataset.subset(range(split))
    test = tuple_dataset.subset(range(split, len(tuple_dataset)))

    def one_fold():
        model = _svm_factory()
        model.fit(train)
        return model.predict(test)

    benchmark(one_fold)

"""E9 — Section 4.2 / Figure 1: KG enrichment-and-fusion quality.

The paper describes the fusion behaviour qualitatively; this experiment
quantifies it against the corpus generator's ground truth:

* **extraction-to-KG recall**: every vaccine/strain/side-effect the
  ground truth says a paper mentions in a *table* should end up in the
  graph with that paper in its provenance;
* **the NovoVac case**: unseen vaccines (absent from the seed ontology)
  must be placed under "Vaccines" via embedding matching;
* **review-queue load**: the fraction of fusions needing the expert, and
  how the learned corrector drives it down over successive batches
  ("most of the fusion is expected to become minimally supervised").
"""

from benchlib import print_table

from repro.corpus import vocabulary_data as vd
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.embeddings.word2vec import Word2Vec
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.fusion import ExtractedSubtree, FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue
from repro.text.vocabulary import Vocabulary


def _embeddings():
    sentences = [
        f"{vaccine} vaccine dose efficacy antibody trial"
        for vaccine in vd.KNOWN_VACCINES + vd.UNSEEN_VACCINES
    ] * 10
    vocabulary = Vocabulary.from_texts(sentences, drop_stopwords=False)
    return Word2Vec(vocabulary, dim=16, seed=9).fit(sentences, epochs=8)


def test_e9_fusion_recall_and_novovac(benchmark):
    corpus = CorpusGenerator(GeneratorConfig(
        seed=109, tables_per_paper=(1, 3), unseen_vaccine_rate=0.15,
    )).papers(80)
    graph = seed_covid_graph()
    matcher = NodeMatcher(graph, word2vec=_embeddings())
    queue = ExpertReviewQueue()
    engine = FusionEngine(graph, matcher, review_queue=queue)
    pipeline = EnrichmentPipeline(engine)
    report = pipeline.enrich(corpus)

    # Recall of table-extracted vaccines (ground truth restricted to what
    # tables actually carry: caption-extractable side-effect tables and
    # efficacy tables).
    expected_vaccines = set()
    for paper in corpus:
        for subtree in pipeline.extract_subtrees(paper):
            if subtree.category == "vaccines":
                expected_vaccines.update(
                    child.label for child in subtree.children
                )
    in_graph = sum(
        1 for vaccine in expected_vaccines if graph.find_by_label(vaccine)
    )
    recall = in_graph / len(expected_vaccines)

    unseen_placed = [
        vaccine for vaccine in vd.UNSEEN_VACCINES
        if graph.find_by_label(vaccine)
    ]
    unseen_parents = {
        graph.parent(graph.find_by_label(v)[0].node_id).label
        for v in unseen_placed
    }

    print_table(
        "E9: fusion vs extraction ground truth",
        ["metric", "value"],
        [
            ["subtrees fused", report.subtrees],
            ["fusion actions", str(report.actions())],
            ["extracted vaccines", len(expected_vaccines)],
            ["vaccines in KG", in_graph],
            ["extraction->KG recall", recall],
            ["unseen vaccines placed", ", ".join(unseen_placed) or "none"],
            ["placed under", ", ".join(sorted(unseen_parents)) or "-"],
            ["KG after enrichment", str(graph.statistics())],
        ],
    )

    assert recall == 1.0
    assert unseen_placed, "NovoVac-style vaccines must reach the KG"
    assert unseen_parents == {"Vaccines"}

    subtree = ExtractedSubtree(
        "Vaccines", category="vaccines", provenance="bench",
        children=[ExtractedSubtree("Pfizer", category="vaccines")],
    )
    benchmark(lambda: engine.fuse(subtree))


def test_e9_review_load_decreases_with_learning(benchmark):
    """The corrector learns expert approvals batch over batch."""
    graph = seed_covid_graph()
    matcher = NodeMatcher(graph)
    queue = ExpertReviewQueue()
    engine = FusionEngine(graph, matcher, review_queue=queue)

    def deep_subtree(index):
        return ExtractedSubtree(
            "Side-effects", category="side_effects",
            provenance=f"p{index}",
            children=[ExtractedSubtree(
                "Children side-effects", category="side_effects",
                children=[ExtractedSubtree(f"effect-{index}",
                                           category="side_effects")],
            )],
        )

    rows = []
    counter = 0
    for batch in range(4):
        queued = auto = 0
        for _ in range(5):
            result = engine.fuse(deep_subtree(counter))
            counter += 1
            if result.action == "queued":
                queued += 1
                queue.decide(result.review_id, True, engine)
            elif result.action == "auto_approved":
                auto += 1
        rows.append([batch + 1, queued, auto, queued / 5])
    print_table(
        "E9b: expert-review load per batch (paper: fusion becomes "
        "'minimally supervised')",
        ["batch", "sent to expert", "auto-approved", "review fraction"],
        rows,
    )
    assert rows[0][3] > rows[-1][3]
    assert rows[-1][2] == 5  # final batch fully automatic

    benchmark(lambda: engine.fuse(deep_subtree(9999)))

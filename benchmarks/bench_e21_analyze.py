"""E21 — analyzer caching: warm-cache analysis vs cold parse-everything.

PR 8 replaces ``lint_paths`` with the engine
(:mod:`repro.analysis.engine`): per-file parsing runs on a thread pool
and its output — findings, module summary, suppression index — is
cached under a content hash.  A warm run touches each file only to hash
it; parsing, rule execution, and summary construction are skipped.

This experiment measures that on the real repository:

* cold vs warm full-repo analysis (the ISSUE's >= 5x floor, asserted
  on the full tree);
* findings must be *identical* between cold and warm before any speed
  claim is made;
* single-file edit: a warm run after touching one file re-analyzes
  exactly that file.

Reduced CI shape: ``E21_ROUNDS=1``.
"""

import os
import time
from pathlib import Path

import pytest
from benchlib import print_table

from repro.analysis.engine import analyze_paths

ROUNDS = int(os.environ.get("E21_ROUNDS", "3"))

#: The ISSUE's warm/cold speedup floor for the full repository.
SPEEDUP_TARGET = 5.0

REPO_ROOT = Path(__file__).resolve().parent.parent
ANALYZE_PATHS = [REPO_ROOT / "src" / "repro", REPO_ROOT / "benchmarks"]

RESULTS = {
    "experiment": "e21_analyze",
    "rounds": ROUNDS,
}


def _keyed(findings):
    return [(f.rule, f.path, f.line, f.severity, f.message)
            for f in findings]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("analysis-cache")


def test_e21_warm_cache_speedup(cache_dir):
    """The headline: hash-and-reuse vs parse-everything."""
    cold_seconds = []
    warm_seconds = []
    cold_result = warm_result = None
    for round_no in range(ROUNDS):
        round_cache = cache_dir / f"round-{round_no}"
        started = time.perf_counter()
        cold_result = analyze_paths(ANALYZE_PATHS, root=REPO_ROOT,
                                    cache_dir=round_cache)
        cold_seconds.append(time.perf_counter() - started)
        assert cold_result.cache_hits == 0

        started = time.perf_counter()
        warm_result = analyze_paths(ANALYZE_PATHS, root=REPO_ROOT,
                                    cache_dir=round_cache)
        warm_seconds.append(time.perf_counter() - started)
        assert warm_result.cache_hits == warm_result.files
        assert warm_result.analyzed_paths == []
        # Correctness before speed: identical findings either way.
        assert _keyed(warm_result.findings) == \
            _keyed(cold_result.findings)

    cold = min(cold_seconds)
    warm = min(warm_seconds)
    speedup = cold / warm if warm else float("inf")
    print_table(
        "E21: full-repo analysis, cold vs warm cache",
        ["files", "cold s", "warm s", "speedup"],
        [[cold_result.files, cold, warm, speedup]],
        note=f"best of {ROUNDS} round(s); >= {SPEEDUP_TARGET:.0f}x "
             "asserted; findings identical",
    )
    RESULTS["full_repo"] = {
        "files": cold_result.files,
        "findings": len(cold_result.findings),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": speedup,
    }
    assert speedup >= SPEEDUP_TARGET


def test_e21_single_edit_reanalyzes_one_file(cache_dir, tmp_path):
    """Editing one file must cost one file, not a cold run."""
    # Work on a copy so the benchmark never dirties the repository.
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    sources = sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    for source in sources:
        relative = source.relative_to(REPO_ROOT)
        target = corpus / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source.read_text(encoding="utf-8"),
                          encoding="utf-8")

    round_cache = cache_dir / "edit"
    analyze_paths([corpus], root=corpus, cache_dir=round_cache)
    edited = corpus / "src" / "repro" / "cli.py"
    edited.write_text(edited.read_text(encoding="utf-8") +
                      "\n# benchmark edit\n", encoding="utf-8")

    started = time.perf_counter()
    result = analyze_paths([corpus], root=corpus,
                           cache_dir=round_cache)
    seconds = time.perf_counter() - started
    assert result.analyzed_paths == ["src/repro/cli.py"]
    assert result.cache_hits == result.files - 1
    print_table(
        "E21: warm re-run after a single-file edit",
        ["files", "re-analyzed", "seconds"],
        [[result.files, len(result.analyzed_paths), seconds]],
    )
    RESULTS["single_edit"] = {
        "files": result.files,
        "reanalyzed": result.analyzed_paths,
        "seconds": seconds,
    }

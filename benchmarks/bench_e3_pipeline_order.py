"""E3 — Section 2.1: aggregation pipeline stage ordering.

Paper claim: "It was mindful to use the $match stage first to minimize
the amount of data being passed through all the latter stages, thus
significantly increasing performance and response time to the user", and
the $project stage "significantly improve[s] our systems performance" by
dropping unneeded fields early.

Regenerates: wall-clock and per-stage document flow for three pipeline
layouts over growing corpora — (a) $match first (the paper's design),
(b) $match after the expensive $function stage, (c) $match first but no
$project pruning.  Shape to reproduce: (a) fastest; (b) pays the ranking
function on every document; (c) between the two.
"""

import time

from benchlib import print_table

from repro.docstore.aggregation import aggregate
from repro.docstore.collection import Collection
from repro.docstore.functions import FunctionRegistry
from repro.search.indexing import build_search_document


def _collection(corpus, size):
    collection = Collection(f"papers{size}")
    for paper in corpus[:size]:
        collection.insert_one(build_search_document(paper))
    return collection


def _registry():
    registry = FunctionRegistry()

    def rank(document):
        # A deliberately non-trivial per-document ranking function.
        text = document.get("search", {}).get("body", "")
        return sum(1 for token in text.split() if "a" in token)

    registry.register("rank", rank)
    return registry


MATCH = {"search.title": {"$regex": r"\bvaccin", "$options": "i"}}
PROJECT = {"paper_id": 1, "search": 1, "static_rank": 1}


def _match_first(collection, registry):
    return aggregate(collection, [
        {"$match": MATCH},
        {"$project": PROJECT},
        {"$function": {"name": "rank", "as": "score"}},
        {"$sort": {"score": -1}},
        {"$limit": 10},
    ], registry)


def _match_late(collection, registry):
    return aggregate(collection, [
        {"$project": PROJECT},
        {"$function": {"name": "rank", "as": "score"}},
        {"$match": MATCH},
        {"$sort": {"score": -1}},
        {"$limit": 10},
    ], registry)


def _no_project(collection, registry):
    return aggregate(collection, [
        {"$match": MATCH},
        {"$function": {"name": "rank", "as": "score"}},
        {"$sort": {"score": -1}},
        {"$limit": 10},
    ], registry)


def _timed(fn, collection, registry, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(collection, registry)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_e3_stage_ordering(medium_corpus, benchmark):
    registry = _registry()
    rows = []
    for size in (100, 300):
        collection = _collection(medium_corpus, size)
        first_s, first = _timed(_match_first, collection, registry)
        late_s, late = _timed(_match_late, collection, registry)
        nop_s, _ = _timed(_no_project, collection, registry)
        ranked_first = next(
            s.docs_in for s in first.stages if s.stage == "$function"
        )
        ranked_late = next(
            s.docs_in for s in late.stages if s.stage == "$function"
        )
        rows.append([size, f"{first_s * 1000:.2f}", f"{late_s * 1000:.2f}",
                     f"{nop_s * 1000:.2f}", ranked_first, ranked_late])
        assert sorted(d.get("paper_id") for d in first.documents) == \
            sorted(d.get("paper_id") for d in late.documents)
        # The paper's claim: match-first is faster than match-late.
        assert first_s < late_s
    print_table(
        "E3: $match-first vs $match-late (paper: match first "
        "'significantly increases performance')",
        ["docs", "match-first ms", "match-late ms", "no-$project ms",
         "ranked(first)", "ranked(late)"],
        rows,
        note="match-late pays the $function ranking on EVERY document",
    )

    collection = _collection(medium_corpus, 300)
    benchmark(lambda: _match_first(collection, registry))


def test_e3_preflight_validation_overhead(medium_corpus, benchmark):
    """Pre-flight ``validate_pipeline`` must cost <1% of execution.

    The serving tier can validate every pipeline before dispatch
    (``ServeConfig.validate_pipelines``); this pins down that the check
    is pure dict-walking noise next to the aggregation itself.
    Measured on this corpus: ~5 us validation vs ~3 ms execution,
    i.e. ~0.2% — recorded here so a regression (e.g. an accidentally
    quadratic expression walk) fails the bench.
    """
    from repro.analysis.pipeline_check import validate_pipeline

    registry = _registry()
    collection = _collection(medium_corpus, 300)
    pipeline = [
        {"$match": MATCH},
        {"$project": PROJECT},
        {"$function": {"name": "rank", "as": "score"}},
        {"$sort": {"score": -1}},
        {"$limit": 10},
    ]
    assert validate_pipeline(pipeline, registry) == []

    validate_s, _ = _timed(
        lambda c, r: validate_pipeline(pipeline, r),
        collection, registry, repeats=20,
    )
    execute_s, _ = _timed(
        lambda c, r: aggregate(c, pipeline, r),
        collection, registry, repeats=5,
    )
    fraction = validate_s / execute_s
    print_table(
        "E3c: pre-flight validation overhead",
        ["validate us", "execute ms", "overhead"],
        [[f"{validate_s * 1e6:.1f}", f"{execute_s * 1e3:.2f}",
          f"{fraction * 100:.3f}%"]],
        note="validation is static dict-walking; <1% of aggregation time",
    )
    assert fraction < 0.01

    benchmark(lambda: validate_pipeline(pipeline, registry))


def test_e3_match_pushdown_uses_index(medium_corpus, benchmark):
    """A leading $match can also use collection indexes (pushdown)."""
    collection = Collection("indexed")
    for paper in medium_corpus[:200]:
        collection.insert_one({"paper_id": paper["paper_id"],
                               "journal": paper["journal"]})
    collection.create_index("journal")
    target = medium_corpus[0]["journal"]

    collection.scan_count = 0
    result = aggregate(collection, [
        {"$match": {"journal": target}},
        {"$count": "n"},
    ])
    scanned_indexed = collection.scan_count
    matched = result.documents[0]["n"]

    print_table(
        "E3b: $match pushdown onto a secondary index",
        ["strategy", "docs scanned", "docs matched"],
        [["indexed pushdown", scanned_indexed, matched],
         ["full scan", 200, matched]],
    )
    assert scanned_indexed < 200

    benchmark(lambda: aggregate(collection, [
        {"$match": {"journal": target}}, {"$count": "n"},
    ]))

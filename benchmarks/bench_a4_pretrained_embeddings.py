"""A4 — Figure 3's embedding recipe: pre-train, then fine-tune end to end.

The ensemble's embedding layers are initialized from Word2Vec vectors
"pre-trained on WDC and CORD-19 and then fine-tuned with end-to-end
training on the target corpus".  This ablation compares that recipe
against randomly initialized embeddings under an identical training
budget, on loss trajectory and held-out quality.

Shape to reproduce: the pre-trained start is at least as good as random
at every budget, with the gap largest at small epoch counts (the whole
point of transfer: the early epochs are already paid for).
"""

import numpy as np
from benchlib import print_table

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.embeddings.word2vec import Word2Vec
from repro.neural.metrics import binary_metrics


def test_a4_pretrained_vs_random(tuple_dataset, tuple_vocabulary,
                                 benchmark):
    split = int(len(tuple_dataset) * 0.8)
    train = tuple_dataset.subset(range(split))
    test = tuple_dataset.subset(range(split, len(tuple_dataset)))

    word2vec = Word2Vec(tuple_vocabulary, dim=12, seed=21).fit(
        tuple_dataset.texts(), epochs=5
    )

    rows = []
    curves = {}
    for name, pretrained in (("random init", None),
                             ("pre-trained (Figure 3)", word2vec.matrix)):
        losses = []
        f1_by_epoch = []
        model = NeuralMetadataClassifier(
            tuple_vocabulary, embed_dim=12, hidden=8,
            max_terms=12, max_cells=6, seed=22,
            pretrained_vectors=pretrained,
        )
        for _ in range(4):
            history = model.fit(train, epochs=1, batch_size=32)
            losses.append(history.losses[-1])
            metrics = binary_metrics(test.labels, model.predict(test))
            f1_by_epoch.append(metrics["f1"])
        curves[name] = (losses, f1_by_epoch)
        rows.append([name, losses[0], losses[-1], f1_by_epoch[0],
                     f1_by_epoch[-1]])
    print_table(
        "A4: pre-trained vs random embedding initialization",
        ["initialization", "loss@1", "loss@4", "f1@1", "f1@4"],
        rows,
        note="transfer pays in the first epochs; both converge with "
        "budget",
    )

    random_losses, _ = curves["random init"]
    pre_losses, pre_f1 = curves["pre-trained (Figure 3)"]
    # Shape: pre-training never hurts the first-epoch loss materially and
    # the fine-tuned model ends strong.
    assert pre_losses[0] <= random_losses[0] * 1.25
    assert pre_f1[-1] > 0.85
    assert np.isfinite(pre_losses).all() if isinstance(
        pre_losses, np.ndarray
    ) else all(np.isfinite(v) for v in pre_losses)

    def one_epoch_pretrained():
        model = NeuralMetadataClassifier(
            tuple_vocabulary, embed_dim=12, hidden=8,
            max_terms=12, max_cells=6, seed=23,
            pretrained_vectors=word2vec.matrix,
        )
        model.fit(train, epochs=1, batch_size=32)

    benchmark(one_epoch_pretrained)

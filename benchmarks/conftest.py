"""Shared fixtures for the experiment benchmarks."""

from __future__ import annotations

import pytest

import benchlib

from repro.classify.dataset import MetadataDataset
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.text.vocabulary import Vocabulary


def pytest_runtest_logreport(report):
    """Collect call-phase durations for the benchmark artifacts."""
    if report.when == "call":
        benchlib.record_duration(report.nodeid, report.duration)


@pytest.fixture(scope="module", autouse=True)
def bench_artifact(request):
    """Every benchmark module emits a uniform ``BENCH_*.json``."""
    yield
    benchlib.emit_artifact(request.module)


@pytest.fixture(scope="session")
def small_corpus():
    """~60 papers with tables; shared across search/KG experiments."""
    config = GeneratorConfig(seed=101, papers_per_week=20,
                             tables_per_paper=(1, 2))
    return CorpusGenerator(config).papers(60)


@pytest.fixture(scope="session")
def medium_corpus():
    """~300 papers for scaling experiments."""
    config = GeneratorConfig(seed=102, papers_per_week=50,
                             tables_per_paper=(0, 2))
    return CorpusGenerator(config).papers(300)


@pytest.fixture(scope="session")
def tuple_dataset():
    """Labeled WDC + CORD-19-style tuples for classifier experiments."""
    wdc = MetadataDataset.from_wdc(60, seed=103)
    papers = CorpusGenerator(GeneratorConfig(
        seed=103, tables_per_paper=(1, 2),
    )).papers(40)
    cord = MetadataDataset.from_papers(papers)
    return wdc.merged_with(cord).shuffled(seed=103)


@pytest.fixture(scope="session")
def tuple_vocabulary(tuple_dataset):
    return Vocabulary.from_texts(tuple_dataset.texts(),
                                 drop_stopwords=False)

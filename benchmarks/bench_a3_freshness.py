"""A3 — the freshness argument: static KGs go stale, COVIDKG does not.

The paper's opening claim: existing KGs (YAGO, DBPedia, medical
ontologies) "are getting stale very quickly ... most importantly lack any
scalable mechanism to keep them up to date", whereas COVIDKG's automatic
update loop ensures "reliability, freshness, and quality".

This experiment quantifies that argument on the same publication stream:
a **static** graph enriched once at the start (the socially-maintained-KG
model) against a **live** graph enriched weekly (the COVIDKG model), both
audited for staleness at the end of the stream.
"""

from benchlib import print_table

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.freshness import audit_freshness
from repro.kg.fusion import FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph


def _pipeline():
    graph = seed_covid_graph()
    return graph, EnrichmentPipeline(
        FusionEngine(graph, NodeMatcher(graph))
    )


def test_a3_static_vs_live_freshness(benchmark):
    generator = CorpusGenerator(GeneratorConfig(
        seed=301, papers_per_week=15, tables_per_paper=(1, 2),
    ))
    weeks = list(generator.weekly_batches(12))
    all_papers = [paper for batch in weeks for paper in batch]

    static_graph, static_pipeline = _pipeline()
    for batch in weeks[:2]:          # curated once, then abandoned
        static_pipeline.enrich(batch)

    live_graph, live_pipeline = _pipeline()
    for batch in weeks:              # the non-stop update loop
        live_pipeline.enrich(batch)

    window = 35
    static_report = audit_freshness(static_graph, all_papers,
                                    window_days=window)
    live_report = audit_freshness(live_graph, all_papers,
                                  window_days=window)

    rows = []
    for name, graph, report in (
        ("static (2-week curation)", static_graph, static_report),
        ("live (weekly updates)", live_graph, live_report),
    ):
        rows.append([
            name,
            graph.statistics()["nodes"],
            len(report.nodes),
            len(report.stale_nodes),
            report.stale_fraction(),
            report.median_age_days,
        ])
    print_table(
        f"A3: KG staleness after 12 weeks (window={window} days)",
        ["maintenance model", "KG nodes", "evidenced", "stale",
         "stale fraction", "median age (days)"],
        rows,
        note="the paper's pitch: without the update loop the graph decays "
        "within weeks",
    )

    # Shape: the abandoned graph is mostly stale; the live one mostly
    # fresh, and larger (it kept learning new entities).
    assert static_report.stale_fraction() > 0.9
    assert live_report.stale_fraction() < 0.5
    assert live_graph.statistics()["nodes"] >= (
        static_graph.statistics()["nodes"]
    )
    assert live_report.median_age_days < static_report.median_age_days

    benchmark(lambda: audit_freshness(live_graph, all_papers,
                                      window_days=window))

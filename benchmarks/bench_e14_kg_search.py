"""E14 — Section 4.2: interactive KG search with path highlighting.

Paper claim: "The user can search over the KG via the front-end interface
that except matching nodes also highlights the path to the matching
nodes", with provenance papers "linked off these nodes".

Regenerates: path correctness (every hit's rendered path starts at the
root and ends at the highlighted match), provenance linkage, and search
latency as the graph grows through enrichment.
"""

from benchlib import print_table

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.fusion import FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph
from repro.kg.review import ExpertReviewQueue
from repro.kg.search import KGSearchEngine

QUERIES = ["vaccines", "side effects", "pfizer", "symptoms", "strains",
           "children side effects"]


def _enriched_graph(num_papers):
    graph = seed_covid_graph()
    matcher = NodeMatcher(graph)
    engine = FusionEngine(graph, matcher,
                          review_queue=ExpertReviewQueue())
    corpus = CorpusGenerator(GeneratorConfig(
        seed=114, tables_per_paper=(1, 2),
    )).papers(num_papers)
    EnrichmentPipeline(engine).enrich(corpus)
    return graph


def test_e14_path_highlighting(benchmark):
    graph = _enriched_graph(60)
    search = KGSearchEngine(graph)

    rows = []
    for query in QUERIES:
        hits = search.search(query, top_k=5)
        assert hits, f"no KG hits for {query!r}"
        top = hits[0]
        # Path correctness: starts at the root, ends at the hit, and the
        # graph agrees with every link.
        assert top.path[0].node_id == graph.root_id
        assert top.path[-1].node_id == top.node.node_id
        for parent, child in zip(top.path, top.path[1:]):
            assert child.node_id in parent.children
        rendered = top.rendered_path()
        assert rendered.startswith("COVID-19")
        assert rendered.endswith(f"[[{top.node.label}]]")
        rows.append([query, len(hits), rendered, len(top.papers)])
    print_table(
        "E14: KG search with path highlighting (Section 4.2)",
        ["query", "hits", "highlighted path (top hit)", "papers"],
        rows,
    )
    # Provenance flows: at least one enrichment-touched hit links papers.
    assert any(row[3] > 0 for row in rows)

    benchmark(lambda: search.search("side effects"))


def test_e14_latency_vs_graph_size(benchmark):
    import time

    rows = []
    for num_papers in (20, 60, 120):
        graph = _enriched_graph(num_papers)
        search = KGSearchEngine(graph)
        started = time.perf_counter()
        for query in QUERIES:
            search.search(query)
        elapsed = (time.perf_counter() - started) / len(QUERIES)
        rows.append([num_papers, len(graph), f"{elapsed * 1000:.2f}"])
    print_table(
        "E14b: KG search latency vs graph size (interactive budget)",
        ["papers enriched", "KG nodes", "ms/query"],
        rows,
        note="interactive use needs ~sub-10ms per query at this scale",
    )
    graph = _enriched_graph(120)
    search = KGSearchEngine(graph)
    benchmark(lambda: search.search("vaccines"))

"""E17 — adaptive load control: bounded tail latency under overload.

The serving tier's failure mode under mixed load is head-of-line
blocking: one expensive request fans 96 per-shard tasks across the
whole shared executor, every cheap request queues behind it, the
admission queue fills, and the tier sheds work it could have served.
PR 4 adds an AIMD width controller that watches per-shard fan-out
latency and queue occupancy and narrows the per-request
:class:`FanoutBudget` under pressure.

This experiment drives the same synthetic overload (a cheap query
stream with a periodic heavy fan-out) through a fixed-width tier and
an adaptive one, and measures:

* cheap-request p95 vs. an unloaded baseline (the bound: <= 2x);
* requests shed by each tier (adaptive must shed fewer);
* the controller's own counters (width changes, budget clamps).

A second test prices real search pipelines through the cost gate
(``ServeConfig.max_request_cost``) and shows the ``cost_rejected``
counter. Emits ``BENCH_e17_load_control.json``.

The per-shard tasks are ``time.sleep`` calls, so the executor slots —
not the GIL — are the contended resource, which is the regime the
controller is designed for (I/O-bound shard reads).
"""

import os
import time
from concurrent.futures import wait

import pytest
from benchlib import print_table

from repro.analysis.pipeline_check import estimate_pipeline_cost
from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.docstore.executor import WIDTH_ENV, scatter, shutdown_executor
from repro.errors import RequestTooExpensiveError, ServiceOverloadedError
from repro.serve.loadctl import LoadControlConfig
from repro.serve.service import QueryService, ServeConfig

#: Synthetic overload shape (see module docstring).
DRIVE_SECONDS = float(os.environ.get("E17_SECONDS", "4.0"))
INTERVAL_SECONDS = float(os.environ.get("E17_INTERVAL", "0.006"))
HEAVY_EVERY = int(os.environ.get("E17_HEAVY_EVERY", "40"))
CHEAP_TASKS = int(os.environ.get("E17_CHEAP_TASKS", "4"))
HEAVY_TASKS = int(os.environ.get("E17_HEAVY_TASKS", "96"))
CHEAP_TASK_SECONDS = 0.002
HEAVY_TASK_SECONDS = 0.008
EXECUTOR_WIDTH = 8

RESULTS = {
    "experiment": "e17_load_control",
    "drive_seconds": DRIVE_SECONDS,
    "interval_seconds": INTERVAL_SECONDS,
    "heavy_every": HEAVY_EVERY,
    "cheap_tasks": CHEAP_TASKS,
    "heavy_tasks": HEAVY_TASKS,
    "executor_width": EXECUTOR_WIDTH,
    "scenarios": {},
    "cost_gate": {},
}


@pytest.fixture(autouse=True)
def _pinned_executor(monkeypatch):
    monkeypatch.setenv(WIDTH_ENV, str(EXECUTOR_WIDTH))
    shutdown_executor()
    yield
    shutdown_executor()


@pytest.fixture(scope="module")
def system():
    papers = CorpusGenerator(GeneratorConfig(
        seed=117, papers_per_week=15, tables_per_paper=(0, 1),
    )).papers(24)
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.ingest(papers)
    return kg


def _cheap_task():
    time.sleep(CHEAP_TASK_SECONDS)
    return 1


def _heavy_task():
    time.sleep(HEAVY_TASK_SECONDS)
    return 1


def _synthetic_dispatch(query, page=1):
    if query.startswith("heavy"):
        return sum(scatter([_heavy_task] * HEAVY_TASKS))
    return sum(scatter([_cheap_task] * CHEAP_TASKS))


def _make_service(system, adaptive):
    control = None
    if adaptive:
        control = LoadControlConfig(
            floor=CHEAP_TASKS,       # cheap requests never get clamped
            ceiling=EXECUTOR_WIDTH,
            target_p95_seconds=0.004,
            cooldown_seconds=0.05,
        )
    service = QueryService(system, ServeConfig(
        num_workers=4, max_queue=8, load_control=control,
    ))
    service._dispatch["all_fields"] = _synthetic_dispatch
    return service


def _percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       int(round(fraction * (len(ordered) - 1))))]


def _drive(service):
    """Open-loop overload: fixed arrival rate, every Nth request heavy."""
    submitted = []
    sheds = 0
    index = 0
    deadline = time.monotonic() + DRIVE_SECONDS
    while time.monotonic() < deadline:
        kind = "heavy" if index % HEAVY_EVERY == HEAVY_EVERY - 1 \
            else "cheap"
        try:
            future = service.submit("all_fields",
                                    query=f"{kind} {index}")
        except ServiceOverloadedError:
            sheds += 1
        else:
            submitted.append((kind, future))
        index += 1
        time.sleep(INTERVAL_SECONDS)
    wait([future for _, future in submitted])  # quiesce before reading
    latencies = {"cheap": [], "heavy": []}
    for kind, future in submitted:
        if future.exception() is None:
            latencies[kind].append(future.result().seconds)
    return {
        "offered": index,
        "sheds": sheds,
        "cheap_served": len(latencies["cheap"]),
        "heavy_served": len(latencies["heavy"]),
        "cheap_p95_s": _percentile(latencies["cheap"], 0.95),
        "heavy_p95_s": _percentile(latencies["heavy"], 0.95),
    }


def _unloaded_baseline(system):
    """Sequential cheap requests: the tier's no-contention latency."""
    with _make_service(system, adaptive=True) as service:
        latencies = [
            service.query("all_fields", query=f"cheap warm {i}").seconds
            for i in range(30)
        ]
    shutdown_executor()
    return _percentile(latencies, 0.95)


def test_e17_adaptive_vs_fixed_width_under_overload(system):
    unloaded_p95 = _unloaded_baseline(system)

    with _make_service(system, adaptive=False) as service:
        fixed = _drive(service)
    shutdown_executor()

    with _make_service(system, adaptive=True) as service:
        adaptive = _drive(service)
        control = service.stats()["load_control"]
    shutdown_executor()

    RESULTS["scenarios"] = {
        "unloaded_cheap_p95_s": unloaded_p95,
        "fixed": fixed,
        "adaptive": {**adaptive, "control": control},
    }

    def row(label, outcome):
        return [
            label, outcome["offered"], outcome["sheds"],
            f"{outcome['cheap_p95_s'] * 1e3:.2f}",
            f"{outcome['heavy_p95_s'] * 1e3:.1f}"
            if outcome["heavy_p95_s"] is not None else "-",
        ]

    print_table(
        "E17: overload, fixed-width vs adaptive load control",
        ["tier", "offered", "shed", "cheap p95 ms", "heavy p95 ms"],
        [
            ["unloaded", 30, 0, f"{unloaded_p95 * 1e3:.2f}", "-"],
            row("fixed", fixed),
            row("adaptive", adaptive),
        ],
        note=f"width {control['width']}/{control['ceiling']}, "
             f"{control['width_changes']} width change(s), "
             f"{control['budget_clamps']} budget clamp(s), "
             f"{control['shed_shrinks']} shed-forced shrink(s)",
    )

    # The headline claims, in acceptance-criteria order: bounded cheap
    # tail under the same overload, fewer sheds than fixed width, and a
    # controller that actually acted.
    assert fixed["sheds"] > 0, "overload too weak: fixed tier never shed"
    assert adaptive["sheds"] < fixed["sheds"]
    assert adaptive["cheap_p95_s"] <= 2.0 * unloaded_p95, (
        f"adaptive cheap p95 {adaptive['cheap_p95_s'] * 1e3:.2f}ms vs "
        f"unloaded {unloaded_p95 * 1e3:.2f}ms"
    )
    assert control["width_changes"] >= 1
    assert control["budget_clamps"] >= 1


def test_e17_cost_gate_rejects_before_fanout(system):
    engine = system.all_fields
    estimate = estimate_pipeline_cost(
        engine.pipeline_plan(page=1), engine.shard_document_counts()
    )

    rejected = 0
    with QueryService(system,
                      ServeConfig(max_request_cost=1.0)) as service:
        for index in range(8):
            with pytest.raises(RequestTooExpensiveError):
                service.query("all_fields", query=f"priced {index}")
            rejected += 1
        stats = service.stats()

    print_table(
        "E17: pre-admission cost gate",
        ["all_fields est. cost", "budget", "requests", "cost_rejected"],
        [[f"{estimate.total_cost:.0f}", "1", rejected,
          stats["cost_rejected"]]],
        note="over-budget requests are rejected before any shard "
             "fan-out and the rejection is negative-cached",
    )
    RESULTS["cost_gate"] = {
        "all_fields_estimated_cost": estimate.total_cost,
        "budget": 1.0,
        "requests": rejected,
        "cost_rejected": stats["cost_rejected"],
        "negative_hits": stats["negative_hits"],
    }
    assert stats["cost_rejected"] >= 1
    assert stats["cost_rejected"] + stats["negative_hits"] == rejected

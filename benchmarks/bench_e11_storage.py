"""E11 — Section 2 "Storage": sharded storage accounting.

Paper claim: "Our MongoDB sharded cluster storing data and all trained
Deep-learning models and embeddings takes ~965GB for its distributed
dataset storage, with raw space consumption of more than 5TB" over
"more than 450,000 publications".

Regenerates, at laptop scale: bytes/publication of the parsed+enriched
JSON, the extrapolation to the paper's 450k documents, shard balance
under hash sharding, and insert throughput.  Shape to reproduce: the
465k-document extrapolation lands within the same order of magnitude as
965 GB / 450k ~ 2.1 MB per publication *with models and replication*;
raw parsed JSON is smaller — we report the parsed-JSON bytes/doc and the
multiplier needed to reach the paper's figure.
"""

import time

from benchlib import print_table

from repro.docstore.persistence import storage_report
from repro.docstore.sharding import ShardedCollection
from repro.search.indexing import build_search_document

PAPER_DOCS = 450_000
PAPER_BYTES = 965 * 1024 ** 3
SCAN_REPEATS = 15


def _store(corpus, num_shards=8):
    store = ShardedCollection("pubs", shard_key="paper_id",
                              num_shards=num_shards)
    for paper in corpus:
        store.insert_one(build_search_document(paper))
    return store


def _per_shard_scan_p95(store, repeats=SCAN_REPEATS):
    """p95 full-scan latency per shard, in milliseconds.

    Shards execute concurrently under scatter-gather, so the slowest
    shard's scan latency — not the sum — bounds a fan-out read; the
    per-shard spread is the latency face of storage skew.
    """
    rows = []
    for index, shard in enumerate(store.shards):
        samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            shard.find({}).to_list()
            samples.append(time.perf_counter() - started)
        samples.sort()
        rank = min(len(samples) - 1, round(0.95 * (len(samples) - 1)))
        rows.append([index, len(shard), samples[rank] * 1000.0])
    return rows


def test_e11_storage_accounting(medium_corpus, benchmark):
    store = _store(medium_corpus)
    report = storage_report(store)
    extrapolated = report.extrapolate_bytes(PAPER_DOCS)
    multiplier = PAPER_BYTES / extrapolated

    print_table(
        "E11: storage accounting (paper: 450k pubs ~ 965 GB distributed)",
        ["metric", "value"],
        [
            ["documents stored", report.num_documents],
            ["total bytes", report.total_bytes],
            ["bytes/document", f"{report.bytes_per_document:.0f}"],
            ["extrapolated to 450k docs",
             f"{extrapolated / 1024 ** 3:.2f} GiB"],
            ["paper's figure", "965 GiB (incl. models, indexes, replicas)"],
            ["implied overhead multiplier", f"{multiplier:.1f}x"],
            ["shard skew (max/mean)", report.shard_skew],
        ],
        note="parsed JSON alone is a fraction of 965GB; the multiplier is "
        "models+embeddings+indexes+replication",
    )

    scan_rows = _per_shard_scan_p95(store)
    slowest = max(row[2] for row in scan_rows)
    print_table(
        "E11: per-shard p95 full-scan latency (concurrent fan-out reads)",
        ["shard", "documents", "p95 scan ms"],
        scan_rows,
        note=f"slowest shard bounds a scatter-gather read: "
             f"{slowest:.3f} ms at p95",
    )

    # Shape: parsed JSON explains gigabytes (not kilobytes, not petabytes)
    # at 450k docs, and hash sharding balances within 2x of mean.
    assert 10 ** 8 < extrapolated < 10 ** 12
    assert report.shard_skew < 2.0
    assert len(scan_rows) == 8
    assert all(p95 > 0 for _, _, p95 in scan_rows)

    def insert_batch():
        store = ShardedCollection("tmp", shard_key="paper_id",
                                  num_shards=8)
        for paper in medium_corpus[:50]:
            store.insert_one(build_search_document(paper))
        return store

    benchmark(insert_batch)


def test_e11_shard_scaling(medium_corpus, benchmark):
    rows = []
    for num_shards in (2, 4, 8, 16):
        store = _store(medium_corpus[:200], num_shards=num_shards)
        report = storage_report(store)
        sizes = store.shard_sizes()
        rows.append([num_shards, min(sizes), max(sizes),
                     report.shard_skew])
        assert min(sizes) > 0  # no empty shard at 200 docs
    print_table(
        "E11b: shard balance vs shard count (hash sharding, 200 docs)",
        ["shards", "min docs", "max docs", "skew"],
        rows,
    )
    store = _store(medium_corpus[:200], num_shards=8)
    benchmark(lambda: storage_report(store))

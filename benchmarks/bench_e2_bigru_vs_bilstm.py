"""E2 — Section 3.6: the BiGRU vs BiLSTM ablation.

Paper claim: BiGRU quality is slightly worse than BiLSTM — ΔF1 ~ -0.02,
ΔPrecision ~ -0.07, ΔRecall ~ +0.06 — "the training time was faster",
which decided the paper in favour of BiGRU.

Regenerates: the quality deltas and per-epoch training wall-clock for
both cells with identical data and hyper-parameters.  Shape to reproduce:
|ΔF1| small (cells are near-equivalent) and BiGRU trains faster per epoch
(GRU has 3 gate blocks to LSTM's 4).
"""

import numpy as np
from benchlib import print_table

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.neural.metrics import binary_metrics


def _train_and_eval(cell, dataset, vocabulary, seed=3):
    split = int(len(dataset) * 0.8)
    train = dataset.subset(range(split))
    test = dataset.subset(range(split, len(dataset)))
    model = NeuralMetadataClassifier(
        vocabulary, cell=cell, embed_dim=12, hidden=8,
        max_terms=12, max_cells=6, seed=seed,
    )
    history = model.fit(train, epochs=4, batch_size=32)
    metrics = binary_metrics(test.labels, model.predict(test))
    seconds_per_epoch = history.total_seconds / len(history.seconds)
    return metrics, seconds_per_epoch, model


def test_e2_bigru_vs_bilstm(tuple_dataset, tuple_vocabulary, benchmark):
    gru_metrics, gru_epoch, _ = _train_and_eval(
        "gru", tuple_dataset, tuple_vocabulary
    )
    lstm_metrics, lstm_epoch, _ = _train_and_eval(
        "lstm", tuple_dataset, tuple_vocabulary
    )

    print_table(
        "E2: BiGRU vs BiLSTM (paper: dF1~-0.02 dP~-0.07 dR~+0.06, "
        "GRU faster)",
        ["cell", "precision", "recall", "f1", "sec/epoch"],
        [
            ["BiGRU", gru_metrics["precision"], gru_metrics["recall"],
             gru_metrics["f1"], gru_epoch],
            ["BiLSTM", lstm_metrics["precision"], lstm_metrics["recall"],
             lstm_metrics["f1"], lstm_epoch],
            ["delta (GRU-LSTM)",
             gru_metrics["precision"] - lstm_metrics["precision"],
             gru_metrics["recall"] - lstm_metrics["recall"],
             gru_metrics["f1"] - lstm_metrics["f1"],
             gru_epoch - lstm_epoch],
        ],
    )

    # Shape: near-equivalent quality; GRU strictly fewer parameters and
    # (with identical shapes) a faster epoch.
    assert abs(gru_metrics["f1"] - lstm_metrics["f1"]) < 0.15
    assert gru_epoch < lstm_epoch * 1.15  # GRU not meaningfully slower

    # Timed kernel: one BiGRU training epoch.
    train = tuple_dataset.subset(range(int(len(tuple_dataset) * 0.8)))

    def gru_epoch_run():
        model = NeuralMetadataClassifier(
            tuple_vocabulary, cell="gru", embed_dim=12, hidden=8,
            max_terms=12, max_cells=6, seed=4,
        )
        model.fit(train, epochs=1, batch_size=32)

    benchmark(gru_epoch_run)


def test_e2_parameter_counts(tuple_vocabulary, benchmark):
    gru = NeuralMetadataClassifier(tuple_vocabulary, cell="gru",
                                   embed_dim=12, hidden=8,
                                   max_terms=12, max_cells=6)
    lstm = NeuralMetadataClassifier(tuple_vocabulary, cell="lstm",
                                    embed_dim=12, hidden=8,
                                    max_terms=12, max_cells=6)
    print_table(
        "E2b: parameter counts (why GRU trains faster)",
        ["cell", "parameters"],
        [["BiGRU", gru.num_parameters()],
         ["BiLSTM", lstm.num_parameters()]],
    )
    assert gru.num_parameters() < lstm.num_parameters()
    assert np.isfinite(gru.num_parameters())
    benchmark(gru.num_parameters)

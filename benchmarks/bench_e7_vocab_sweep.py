"""E7 — Section 3.2: the feature-space dimensionality sweep.

Paper claim: the vocabulary is cut to 100,000 frequency-ranked terms
because "increasing the dimensionality further led to significantly
slower training time, which would prevent or make the experiments much
more difficult".

Regenerates: BiGRU training time and F1 as the vocabulary grows.  Shape
to reproduce: training time grows with vocabulary size while F1 saturates
early — the paper's reason for capping the space.  (Scaled: our corpora
have thousands of distinct terms, not hundreds of thousands; the *trend*
is the claim.)
"""

import numpy as np
import pytest
from benchlib import print_table

from repro.classify.bigru_model import NeuralMetadataClassifier
from repro.corpus.schema import full_text
from repro.neural.metrics import binary_metrics
from repro.text.vocabulary import Vocabulary

VOCAB_SIZES = (100, 1_000, 10_000, 50_000)


@pytest.fixture(scope="module")
def sweep_vocabulary(medium_corpus, tuple_dataset):
    """A web-scale-shaped vocabulary so truncation spans real sizes.

    The tuple dataset alone has only a few hundred distinct terms; to
    exercise the paper's axis (a 100k-term feature space whose growth
    makes training "significantly slower") the long tail of rare terms a
    web corpus carries is synthesized explicitly.  Those tail terms never
    appear in the training tuples — exactly as most of a 100k vocabulary
    never appears in any given batch — but the embedding table, its
    gradients, and the optimizer state are all sized by them.
    """
    vocabulary = Vocabulary(max_terms=100_000, drop_stopwords=False)
    for paper in medium_corpus:
        vocabulary.add_text(full_text(paper))
    for text in tuple_dataset.texts():
        vocabulary.add_text(text)
    vocabulary.add_tokens(
        f"tailterm{index:06d}" for index in range(60_000)
    )
    return vocabulary.build()


def test_e7_vocabulary_sweep(tuple_dataset, sweep_vocabulary, benchmark):
    split = int(len(tuple_dataset) * 0.8)
    train = tuple_dataset.subset(range(split))
    test = tuple_dataset.subset(range(split, len(tuple_dataset)))

    rows = []
    times_by_actual = {}
    for size in VOCAB_SIZES:
        vocabulary = sweep_vocabulary.truncated(size)
        best_seconds = float("inf")
        metrics = {}
        parameters = 0
        for repeat in range(3):  # min-of-3 to de-noise the wall clock
            model = NeuralMetadataClassifier(
                vocabulary, embed_dim=12, hidden=8,
                max_terms=12, max_cells=6, seed=5 + repeat,
            )
            history = model.fit(train, epochs=3, batch_size=32)
            best_seconds = min(best_seconds, history.total_seconds)
            metrics = binary_metrics(test.labels, model.predict(test))
            parameters = model.num_parameters()
        rows.append([size, len(vocabulary), parameters,
                     best_seconds, metrics["f1"]])
        times_by_actual[len(vocabulary)] = best_seconds
    print_table(
        "E7: vocabulary-size sweep (paper: bigger feature space => "
        "'significantly slower training')",
        ["requested", "actual vocab", "parameters", "train sec", "f1"],
        rows,
        note="F1 saturates while cost keeps growing - the 100k cutoff's "
        "rationale",
    )

    # Shape: parameter count grows monotonically with the vocabulary, the
    # largest distinct vocabulary trains slower than the smallest (min-of-3
    # wall clock), and quality does not keep improving proportionally.
    parameter_counts = [row[2] for row in rows]
    assert parameter_counts == sorted(parameter_counts)
    actual_sizes = sorted(times_by_actual)
    assert times_by_actual[actual_sizes[-1]] > (
        times_by_actual[actual_sizes[0]]
    )
    f1_values = [row[4] for row in rows]
    assert max(f1_values) - f1_values[-1] < 0.2

    vocabulary = sweep_vocabulary.truncated(VOCAB_SIZES[-1])

    def train_largest():
        model = NeuralMetadataClassifier(
            vocabulary, embed_dim=12, hidden=8,
            max_terms=12, max_cells=6, seed=5,
        )
        model.fit(train, epochs=1, batch_size=32)

    benchmark(train_largest)


def test_e7_frequency_cutoff_keeps_head(sweep_vocabulary, benchmark):
    """Truncation keeps exactly the most frequent prefix of the space."""
    small = sweep_vocabulary.truncated(50)
    for index in range(1, len(small)):
        assert small.term_at(index) == sweep_vocabulary.term_at(index)
    counts = [
        sweep_vocabulary.count_of(small.term_at(i))
        for i in range(1, len(small))
    ]
    assert counts == sorted(counts, reverse=True) or len(set(counts)) < len(
        counts
    )
    assert np.all(np.diff(counts) <= 0)
    benchmark(lambda: sweep_vocabulary.truncated(50))

"""E18 — the HTTP gateway under hundreds of keep-alive connections.

PR 5 puts an asyncio front end (``repro.gateway``) over the serving
tier.  The claim worth measuring is the architecture's: one event-loop
thread multiplexes every socket while the bounded worker pool does the
actual query work, so piling connections onto the gateway must surface
overload as *fast 503 sheds* — never as hung connections or silently
growing queues — and the requests that are admitted must keep the
latency profile the tier had without HTTP in front.

The drive: ``E18_CONNECTIONS`` keep-alive connections (default 500),
each an asyncio client pacing requests on its own socket, against a
gateway whose service has 4 workers, a shallow admission queue, and
the AIMD load controller from PR 4.  Every 100th request per
connection is a heavy 96-task fan-out; the rest are cheap 4-task
queries (the e17 synthetic dispatch, so executor slots — not the GIL —
are the contended resource).  Measured:

* peak concurrent connections (must reach the configured count);
* responses vs. requests (every request answered: no hangs, no drops);
* 503 sheds from the admission queue (overload must be loud);
* served cheap-request p95 vs. an unloaded single-connection baseline
  (the bound: <= 2x, same as e17 — HTTP must not change the story).

Emits ``BENCH_e18_gateway.json``.  CI runs a reduced shape via the
``E18_*`` env knobs.
"""

import asyncio
import json
import os
import time

import pytest
from benchlib import print_table

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.docstore.executor import WIDTH_ENV, scatter, shutdown_executor
from repro.gateway import BackgroundGateway
from repro.serve.loadctl import LoadControlConfig
from repro.serve.service import GatewayConfig, QueryService, ServeConfig

#: Drive shape (see module docstring).
CONNECTIONS = int(os.environ.get("E18_CONNECTIONS", "500"))
DRIVE_SECONDS = float(os.environ.get("E18_SECONDS", "4.0"))
CONN_INTERVAL = float(os.environ.get("E18_INTERVAL", "0.2"))
HEAVY_EVERY = int(os.environ.get("E18_HEAVY_EVERY", "200"))
RAMP_SECONDS = float(os.environ.get("E18_RAMP", "1.0"))
BASELINE_REQUESTS = 40
CHEAP_TASKS = 2
HEAVY_TASKS = 32
CHEAP_TASK_SECONDS = 0.008
HEAVY_TASK_SECONDS = 0.004
EXECUTOR_WIDTH = 8
NUM_WORKERS = 4
MAX_QUEUE = 1
#: A response slower than this counts as a hung connection.
HUNG_SECONDS = 15.0

RESULTS = {
    "experiment": "e18_gateway",
    "connections": CONNECTIONS,
    "drive_seconds": DRIVE_SECONDS,
    "conn_interval_seconds": CONN_INTERVAL,
    "heavy_every": HEAVY_EVERY,
    "num_workers": NUM_WORKERS,
    "max_queue": MAX_QUEUE,
    "executor_width": EXECUTOR_WIDTH,
    "scenarios": {},
}


@pytest.fixture(autouse=True)
def _pinned_executor(monkeypatch):
    monkeypatch.setenv(WIDTH_ENV, str(EXECUTOR_WIDTH))
    shutdown_executor()
    yield
    shutdown_executor()


@pytest.fixture(scope="module")
def system():
    papers = CorpusGenerator(GeneratorConfig(
        seed=118, papers_per_week=15, tables_per_paper=(0, 1),
    )).papers(24)
    kg = CovidKG(CovidKGConfig(num_shards=2))
    kg.ingest(papers)
    return kg


def _cheap_task():
    time.sleep(CHEAP_TASK_SECONDS)
    return 1


def _heavy_task():
    time.sleep(HEAVY_TASK_SECONDS)
    return 1


def _synthetic_dispatch(query, page=1):
    if query.startswith("heavy"):
        return sum(scatter([_heavy_task] * HEAVY_TASKS))
    return sum(scatter([_cheap_task] * CHEAP_TASKS))


def _make_tier(system):
    """An adaptive serving tier with the synthetic dispatch, plus a
    gateway config sized for the drive."""
    service = QueryService(system, ServeConfig(
        num_workers=NUM_WORKERS, max_queue=MAX_QUEUE,
        load_control=LoadControlConfig(
            floor=CHEAP_TASKS, ceiling=EXECUTOR_WIDTH,
            target_p95_seconds=0.004, cooldown_seconds=0.05,
        ),
    ))
    service._dispatch["all_fields"] = _synthetic_dispatch
    config = GatewayConfig(port=0, max_connections=CONNECTIONS + 64,
                           access_log=False)
    return service, config


def _percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       int(round(fraction * (len(ordered) - 1))))]


# -- a minimal asyncio keep-alive client -----------------------------------

class _Conn:
    """One keep-alive connection driven from the benchmark's loop."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       port)
        return cls(reader, writer)

    async def get(self, target):
        """Returns ``(status, body_bytes)`` for one GET."""
        self.writer.write(
            f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n"
            .encode("latin-1"))
        await self.writer.drain()
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await self.reader.readexactly(length) if length else b""
        return status, body

    def close(self):
        self.writer.close()


# -- the drive -------------------------------------------------------------

def _new_tally():
    return {
        "offered": 0,
        "statuses": {},
        "errors": 0,
        "hung": 0,
        "cheap_seconds": [],    # service-reported, admitted cheap only
        "cheap_wall": [],       # client-observed, admitted cheap only
    }


async def _drive_connection(port, conn_id, stop_at, tally):
    # Stagger connects across the ramp so the listen backlog never
    # sees all N SYNs in the same instant.
    await asyncio.sleep(RAMP_SECONDS * conn_id / max(CONNECTIONS, 1))
    conn = await _Conn.open(port)
    seq = 0
    try:
        while time.monotonic() < stop_at:
            kind = "heavy" if (seq + conn_id) % HEAVY_EVERY == 0 \
                else "cheap"
            target = (f"/v1/search/all_fields"
                      f"?query={kind}+c{conn_id}+s{seq}")
            tally["offered"] += 1
            started = time.monotonic()
            try:
                status, body = await asyncio.wait_for(
                    conn.get(target), timeout=HUNG_SECONDS)
            except asyncio.TimeoutError:
                tally["hung"] += 1
                return
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError):
                tally["errors"] += 1
                return
            wall = time.monotonic() - started
            tally["statuses"][status] = \
                tally["statuses"].get(status, 0) + 1
            if status == 200 and kind == "cheap":
                tally["cheap_seconds"].append(
                    json.loads(body)["seconds"])
                tally["cheap_wall"].append(wall)
            seq += 1
            await asyncio.sleep(CONN_INTERVAL)
    finally:
        conn.close()


async def _drive(port, tally):
    stop_at = time.monotonic() + RAMP_SECONDS + DRIVE_SECONDS
    await asyncio.gather(*[
        _drive_connection(port, conn_id, stop_at, tally)
        for conn_id in range(CONNECTIONS)
    ])


async def _baseline(port):
    """Sequential cheap requests on one idle connection."""
    conn = await _Conn.open(port)
    seconds = []
    try:
        for index in range(BASELINE_REQUESTS):
            status, body = await conn.get(
                f"/v1/search/all_fields?query=cheap+base+{index}")
            assert status == 200, f"unloaded baseline got {status}"
            seconds.append(json.loads(body)["seconds"])
    finally:
        conn.close()
    return seconds


def test_e18_gateway_under_connection_flood(system):
    service, config = _make_tier(system)
    with service:
        with BackgroundGateway(service, config) as gw:
            unloaded = asyncio.run(_baseline(gw.port))
    shutdown_executor()
    unloaded_p95 = _percentile(unloaded, 0.95)

    service, config = _make_tier(system)
    with service:
        with BackgroundGateway(service, config) as gw:
            tally = _new_tally()
            asyncio.run(_drive(gw.port, tally))
            gw_stats = gw.gateway.metrics.snapshot()
            service_stats = service.stats()
    shutdown_executor()

    served = tally["statuses"].get(200, 0)
    shed = tally["statuses"].get(503, 0)
    other = tally["offered"] - served - shed - tally["errors"] \
        - tally["hung"]
    answered = sum(tally["statuses"].values())
    cheap_p95 = _percentile(tally["cheap_seconds"], 0.95)
    cheap_wall_p95 = _percentile(tally["cheap_wall"], 0.95)
    control = service_stats["load_control"]

    RESULTS["scenarios"] = {
        "unloaded_cheap_p95_s": unloaded_p95,
        "flood": {
            "offered": tally["offered"],
            "answered": answered,
            "served_200": served,
            "shed_503": shed,
            "other_status": other,
            "errors": tally["errors"],
            "hung": tally["hung"],
            "cheap_samples": len(tally["cheap_seconds"]),
            "cheap_p95_s": cheap_p95,
            "cheap_wall_p95_s": cheap_wall_p95,
            "peak_connections": gw_stats["connections"]["peak"],
            "connections_total": gw_stats["connections"]["total"],
            "service_shed": service_stats["shed"],
            "control": control,
        },
    }

    print_table(
        "E18: gateway under a keep-alive connection flood",
        ["conns (peak)", "offered", "200", "503 shed", "hung",
         "cheap p95 ms", "unloaded ms"],
        [[
            f"{CONNECTIONS} ({gw_stats['connections']['peak']})",
            tally["offered"], served, shed, tally["hung"],
            f"{cheap_p95 * 1e3:.2f}" if cheap_p95 else "-",
            f"{unloaded_p95 * 1e3:.2f}",
        ]],
        note=f"{gw_stats['connections']['total']} connection(s) total "
             f"(keep-alive: {tally['offered']} requests), "
             f"client-observed cheap p95 "
             f"{cheap_wall_p95 * 1e3:.2f}ms, "
             f"{control['shed_shrinks']} shed-forced shrink(s), "
             f"{control['width_changes']} width change(s)",
    )

    # The acceptance criteria, in order: the configured connection
    # count was actually concurrent; every request was answered (no
    # hung connections, no dropped responses); overload surfaced as
    # loud 503 sheds; and the admitted cheap requests kept the tier's
    # latency bound despite HTTP and 500 sockets in front.
    assert gw_stats["connections"]["peak"] >= CONNECTIONS
    assert tally["hung"] == 0, f"{tally['hung']} connection(s) hung"
    assert tally["errors"] == 0, \
        f"{tally['errors']} connection error(s)"
    assert answered == tally["offered"]
    assert shed > 0, "overload too weak: the admission queue never shed"
    assert service_stats["shed"] > 0
    assert len(tally["cheap_seconds"]) >= 10, \
        "too few admitted cheap requests to estimate p95"
    assert cheap_p95 <= 2.0 * unloaded_p95, (
        f"cheap p95 {cheap_p95 * 1e3:.2f}ms vs unloaded "
        f"{unloaded_p95 * 1e3:.2f}ms"
    )
    assert control["shed_shrinks"] + control["width_changes"] >= 1

"""A2 — the title's promise: interrogating the KG/corpus for bias.

The paper claims the KG "does not suffer from any bias or misinformation"
because it is built from vetted sources that are "interrogated for bias".
This experiment runs the interrogation over two corpora — one balanced,
one deliberately skewed (single dominant topic + single dominant journal
+ conflicting side-effect rates) — and shows the checks firing exactly on
the skewed one.
"""

from benchlib import print_table

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.bias import BiasInterrogator
from repro.kg.enrichment import EnrichmentPipeline
from repro.kg.fusion import FusionEngine
from repro.kg.matching import NodeMatcher
from repro.kg.ontology import seed_covid_graph


def _enriched(papers):
    graph = seed_covid_graph()
    pipeline = EnrichmentPipeline(
        FusionEngine(graph, NodeMatcher(graph))
    )
    pipeline.enrich(papers)
    return graph, pipeline


def _skew(papers):
    """Make a corpus pathological: one journal, conflicting rates."""
    skewed = []
    for index, paper in enumerate(papers):
        paper = dict(paper)
        paper["journal"] = "MegaJournal"
        skewed.append(paper)
    # Inject two papers that report wildly different fever rates.
    for pid, rate in (("conflict-a", 2.0), ("conflict-b", 80.0)):
        skewed.append({
            "paper_id": pid, "title": "fever rates", "abstract": "rates",
            "authors": [{"first": "X", "last": "Y"}],
            "publish_time": "2021-06-01", "journal": "MegaJournal",
            "body_text": [{"section": "Results", "text": "fever"}],
            "figures": [],
            "tables": [{
                "caption": "Table: Side effects reported after Pfizer "
                "vaccination, by dose",
                "rows": [
                    {"cells": [{"text": "Side effect"},
                               {"text": "Dose 1 (%)"}],
                     "is_metadata": True},
                    {"cells": [{"text": "fever"}, {"text": str(rate)}]},
                ],
            }],
        })
    return skewed


def test_a2_bias_interrogation(benchmark):
    balanced = CorpusGenerator(GeneratorConfig(
        seed=201, tables_per_paper=(1, 2),
    )).papers(60)
    single_topic = CorpusGenerator(GeneratorConfig(
        seed=202, topics=["vaccines"], tables_per_paper=(1, 2),
    )).papers(60)
    skewed = _skew(CorpusGenerator(GeneratorConfig(
        seed=203, tables_per_paper=(1, 2),
    )).papers(60))

    interrogator = BiasInterrogator()
    rows = []
    reports = {}
    for name, corpus in (("balanced", balanced),
                         ("single-topic", single_topic),
                         ("skewed sources", skewed)):
        graph, pipeline = _enriched(corpus)
        report = interrogator.interrogate(
            corpus, graph=graph, pipeline=pipeline, num_clusters=6,
        )
        reports[name] = report
        flags = report.summary()["flags"]
        rows.append([
            name,
            report.topic_balance,
            report.source_balance,
            flags.get("topic_skew", 0),
            flags.get("source_skew", 0),
            flags.get("contested_claim", 0),
            flags.get("thin_provenance", 0),
        ])
    print_table(
        "A2: bias interrogation — balanced vs deliberately skewed corpus",
        ["corpus", "topic balance", "source balance", "topic flags",
         "source flags", "contested flags", "thin-provenance flags"],
        rows,
        note="'single-topic' covers only vaccines; 'skewed sources' has "
        "one journal and injected conflicting fever rates",
    )

    balanced_report = reports["balanced"]
    single_report = reports["single-topic"]
    skewed_report = reports["skewed sources"]
    assert skewed_report.source_balance < balanced_report.source_balance
    assert not balanced_report.flags_of("source_skew")
    assert not balanced_report.flags_of("topic_skew")
    assert single_report.flags_of("topic_skew")
    assert skewed_report.flags_of("source_skew")
    assert skewed_report.flags_of("contested_claim")
    # The contested fever claim surfaces among the worst findings.
    assert any(
        "fever" in flag.subject for flag in skewed_report.worst(10)
    )

    graph, pipeline = _enriched(balanced)
    benchmark(lambda: interrogator.interrogate(
        balanced, graph=graph, pipeline=pipeline, num_clusters=6,
    ))

"""E8 — Section 3.5: positional-feature ablation.

Paper claim: the SVM's feature vector combines the normalized row text
(f1) with positional features f2..f6, and "each feature affect[s] the
metadata classification outcome".

Regenerates: 10-fold-CV F1 with the full feature set, with each
positional feature knocked out individually (leave-one-out), with ALL
positional features removed (text only), and with the text block removed
(positional only).  Shape to reproduce: the full set is at or near the
top; removing whole blocks hurts visibly.
"""

import pytest
from benchlib import print_table

from repro.classify.dataset import MetadataDataset
from repro.classify.evaluate import evaluate_classifier_cv
from repro.classify.svm_model import NUM_POSITIONAL, SvmMetadataClassifier
from repro.corpus.wdc import WdcTableGenerator
from repro.tables.features import POSITIONAL_FEATURE_NAMES


@pytest.fixture(scope="module")
def hard_dataset():
    """Mixed structural variants: header position is no longer trivial.

    Plain header-at-top tables make any single positional feature
    sufficient on its own; mixing in title rows, headerless continuation
    tables, and summary rows (all of which real web tables exhibit) forces
    the features to combine — which is where per-feature ablation shows
    the paper's "each feature affects the outcome".
    """
    return MetadataDataset.from_wdc(
        80, seed=108, orientations=("horizontal",),
        variants=WdcTableGenerator.VARIANTS,
    ).shuffled(seed=108)


def _report(dataset, mask=None, text_dim=64):
    return evaluate_classifier_cv(
        lambda: SvmMetadataClassifier(
            feature_mask=mask, text_hash_dim=text_dim, epochs=10, seed=6,
        ),
        dataset, num_folds=10,
    )


def test_e8_block_ablation(hard_dataset, benchmark):
    """Whole-block view: full vs text-only vs positional-only."""
    full = _report(hard_dataset)
    text_only = _report(hard_dataset, mask=(False,) * NUM_POSITIONAL)
    positional_only = _report(hard_dataset, text_dim=0)

    print_table(
        "E8: feature-block ablation (f1 lexical block vs f2..f6 "
        "positional block)",
        ["configuration", "f1", "delta vs full"],
        [
            ["full (f1..f6)", full.mean("f1"), 0.0],
            ["text only (no f2..f6)", text_only.mean("f1"),
             text_only.mean("f1") - full.mean("f1")],
            ["positional only (no f1 text)", positional_only.mean("f1"),
             positional_only.mean("f1") - full.mean("f1")],
        ],
    )
    # Shape: the combined set is not dominated by either block alone.
    assert full.mean("f1") >= text_only.mean("f1") - 0.02
    assert full.mean("f1") >= positional_only.mean("f1") - 0.02

    benchmark(lambda: _report(hard_dataset, mask=None))


def test_e8_per_feature_contribution(hard_dataset, benchmark):
    """Per-feature view: add-one-in and leave-one-out over f2..f6.

    The paper says "each feature affect[s] the metadata classification
    outcome".  Two complementary measurements:

    * **add-one-in** — a model trained on a single positional feature.
      F1 > 0 means the feature alone separates better than the trivial
      all-negative classifier, i.e. it carries signal.
    * **leave-one-out** — dropping one feature from the full positional
      set.  f3/f5 and f4/f6 are deliberately redundant pairs (f3 is
      "f5 > 0"), so LOO deltas can be ~0 even for informative features;
      the add-one-in column is the affects-the-outcome evidence.
    """
    base = _report(hard_dataset, text_dim=0)
    rows = []
    solo_f1s = []
    for position in range(NUM_POSITIONAL):
        solo_mask = tuple(
            index == position for index in range(NUM_POSITIONAL)
        )
        solo = _report(hard_dataset, mask=solo_mask, text_dim=0)
        drop_mask = tuple(
            index != position for index in range(NUM_POSITIONAL)
        )
        loo = _report(hard_dataset, mask=drop_mask, text_dim=0)
        solo_f1s.append(solo.mean("f1"))
        rows.append([
            POSITIONAL_FEATURE_NAMES[position],
            solo.mean("f1"),
            loo.mean("f1") - base.mean("f1"),
        ])
    print_table(
        "E8b: per-feature contribution (paper: 'each feature affects "
        "the outcome')",
        ["feature", "alone f1", "leave-one-out delta"],
        rows,
        note=f"all positional together: f1={base.mean('f1'):.3f}; "
        "f3/f5 and f4/f6 are redundant pairs, so LOO underestimates them",
    )
    # Every feature alone beats the trivial classifier (F1 = 0), and the
    # features are not interchangeable (their solo strengths differ).
    assert all(f1 > 0.0 for f1 in solo_f1s)
    assert max(solo_f1s) - min(solo_f1s) > 0.02

    benchmark(lambda: _report(hard_dataset, text_dim=0))

"""E10 — Figure 6: multi-layered 3D Meta-Profiles.

Paper claim: a 3-layer profile for COVID-19 vaccine side-effects,
"extracted from tables in three papers, grouped by vaccine, dosage, and
paper", which "summarizes information from 9 different sources in one
place and is much easier to comprehend than reading these 3 papers".

Regenerates: the exact Figure 6 shape (3 source papers, vaccine x dosage x
paper layers, >= 9 distinct sources), the profile's query surface, and
construction throughput at corpus scale.
"""

from benchlib import print_table

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.kg.metaprofile import (
    build_side_effect_profile,
    extract_side_effect_records,
)


def _papers_with_side_effect_tables(count, seed=110):
    generator = CorpusGenerator(GeneratorConfig(
        seed=seed, tables_per_paper=(1, 3),
    ))
    papers = []
    index = 0
    while len(papers) < count and index < 50 * count:
        paper = generator.paper(index)
        if extract_side_effect_records(paper):
            papers.append(paper)
        index += 1
    return papers


def test_e10_figure6_shape(benchmark):
    papers = _papers_with_side_effect_tables(3)
    profile = build_side_effect_profile(papers)

    grouped = profile.group()
    cells = [
        (vaccine, dose, paper_id)
        for vaccine, doses in grouped.items()
        for dose, by_paper in doses.items()
        for paper_id in by_paper
    ]
    print_table(
        "E10: Figure 6 meta-profile (3 papers, vaccine x dosage x paper)",
        ["vaccine", "dose", "paper", "effects"],
        [
            [vaccine, dose, paper_id,
             len(grouped[vaccine][dose][paper_id])]
            for vaccine, dose, paper_id in sorted(cells)
        ],
        note=f"{profile.num_sources} sources summarized in one profile "
        f"(paper's figure: 9)",
    )

    assert profile.layers == ("vaccine", "dosage", "paper")
    assert len(profile.papers) == 3
    # Figure 6 summarizes 9 sources from 3 papers; with per-paper tables
    # carrying two dose columns each, 3 papers give >= 6 and typically ~9+.
    assert profile.num_sources >= 6

    benchmark(lambda: build_side_effect_profile(papers))


def test_e10_profile_queries_and_scaling(benchmark):
    papers = _papers_with_side_effect_tables(20)
    profile = build_side_effect_profile(papers)

    rows = []
    for vaccine in profile.vaccines[:4]:
        top = profile.top_effects(vaccine, top_k=2)
        rates_1 = len([
            r for r in profile.records
            if r.vaccine == vaccine and r.dose == 1
        ])
        rows.append([
            vaccine,
            ", ".join(f"{e} ({rate:.0f}%)" for e, rate in top),
            rates_1,
        ])
    print_table(
        "E10b: profile query surface over 20 source papers",
        ["vaccine", "top effects (mean rate)", "dose-1 facts"],
        rows,
    )
    assert profile.num_sources > 20
    # Dose-2 rates are generated >= dose-1 rates on average; the profile
    # must preserve that relationship through extraction.
    means = [
        (profile.mean_rate(v, e, dose=1), profile.mean_rate(v, e, dose=2))
        for v in profile.vaccines
        for e, _ in profile.top_effects(v, top_k=3)
    ]
    pairs = [(d1, d2) for d1, d2 in means if d1 is not None
             and d2 is not None]
    assert pairs
    increased = sum(1 for d1, d2 in pairs if d2 >= d1)
    assert increased / len(pairs) > 0.6

    benchmark(lambda: build_side_effect_profile(papers))

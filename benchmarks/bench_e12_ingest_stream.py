"""E12 — Section 2: continuous weekly ingest.

Paper claim: CORD-19 grew by "more than 3,500 new publications ... per
week", and the back end runs deep-learning models "non-stop, classifying
new incoming publications" to keep the KG fresh.

Regenerates: end-to-end ingest throughput of the full pipeline
(validate -> HTML re-parse -> metadata classification -> sharded store ->
three search indexes -> entity extraction -> KG fusion) over simulated
weekly batches, and the headroom relative to the paper's 3,500/week
arrival rate.
"""

import time

from benchlib import print_table

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig

WEEKLY_ARRIVALS = 3_500


def _system(corpus):
    system = CovidKG(CovidKGConfig(num_shards=4, vocabulary_size=20_000,
                                   wdc_training_tables=30, seed=12))
    system.train(corpus[:20], word2vec_epochs=1)
    return system


def test_e12_weekly_ingest_stream(benchmark):
    generator = CorpusGenerator(GeneratorConfig(
        seed=112, papers_per_week=30, tables_per_paper=(0, 2),
    ))
    warmup = generator.papers(20)
    system = _system(warmup)

    rows = []
    total_papers = 0
    total_seconds = 0.0
    for week, batch in enumerate(generator.weekly_batches(4), start=1):
        if week == 1:
            continue  # week 1 overlaps the training warm-up slice
        started = time.perf_counter()
        report = system.ingest(batch)
        seconds = time.perf_counter() - started
        total_papers += len(batch)
        total_seconds += seconds
        rows.append([
            week, len(batch), f"{seconds:.2f}",
            f"{len(batch) / seconds:.1f}",
            report.subtrees,
            system.graph.statistics()["nodes"],
        ])
    throughput = total_papers / total_seconds
    week_capacity = throughput * 3600 * 24 * 7
    print_table(
        "E12: weekly ingest stream (paper: 3,500 new publications/week)",
        ["week", "papers", "seconds", "papers/sec", "subtrees fused",
         "KG nodes"],
        rows,
        note=f"sustained {throughput:.1f} papers/sec => "
        f"{week_capacity:,.0f} papers/week capacity vs "
        f"{WEEKLY_ARRIVALS:,} arrivals",
    )

    # Shape: a single process comfortably outruns the arrival rate.
    assert week_capacity > WEEKLY_ARRIVALS
    # The graph keeps growing week over week (freshness).
    assert rows[-1][5] >= rows[0][5]

    batch = generator.papers(10)
    fresh = _system(batch)

    def ingest_ten():
        system = fresh
        # Re-ingest under new ids so the unique index does not object.
        renamed = [
            {**paper, "paper_id": f"{paper['paper_id']}-b{time.monotonic_ns()}-{i}"}
            for i, paper in enumerate(batch)
        ]
        system.ingest(renamed)

    benchmark(ingest_ten)

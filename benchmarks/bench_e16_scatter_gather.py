"""E16 — parallel scatter-gather: serial vs. parallel shard fan-out.

The paper's sharded MongoDB back end scatter-gathers reads across
shards concurrently; PR 2 gives ``ShardedCollection`` the same shape
(shared executor fan-out + per-shard top-k merge).  This experiment
measures what that buys on cold ranked search at shards ∈ {1, 4, 8},
plus the single-flight stampede protection in the serving tier.

Emits ``BENCH_e16_scatter_gather.json`` (machine-readable trajectory;
the CI bench-smoke job uploads it as an artifact).

Honesty note: on the *scalar* path the per-shard work is pure-Python
matching/scoring, so under the GIL thread fan-out buys concurrency, not
CPU parallelism.  Two escapes exist now: the columnar numpy kernels
(engaged by default for eligible queries) release the GIL inside array
ops, and ``REPRO_EXECUTOR_KIND=process`` moves shard ranking onto a
spawn-based process pool entirely — the >= 2x target applies to process
mode on a >= 4-core machine (asserted only there; this container may
have one core).  We report measured ratios either way; the correctness
claim (byte-identical pages) is asserted unconditionally.
"""

import os
import threading
import time

import pytest
from benchlib import print_table

from repro.api.system import CovidKG, CovidKGConfig
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.docstore.executor import (
    KIND_ENV,
    WIDTH_ENV,
    shutdown_executor,
    shutdown_process_executor,
)
from repro.search.all_fields import AllFieldsEngine
from repro.serve.service import QueryService, ServeConfig

SHARD_COUNTS = (1, 4, 8)
QUERIES = ["vaccine side effects", "covid symptoms", "antibody dosage",
           "pfizer trial", "variant transmission"]
ROUNDS = int(os.environ.get("E16_ROUNDS", "3"))
NUM_PAPERS = int(os.environ.get("E16_PAPERS", "70"))

RESULTS = {
    "experiment": "e16_scatter_gather",
    "papers": NUM_PAPERS,
    "rounds": ROUNDS,
    "scatter_gather": [],
    "single_flight": {},
}


@pytest.fixture(scope="module")
def corpus():
    config = GeneratorConfig(seed=116, papers_per_week=15,
                             tables_per_paper=(0, 1))
    return CorpusGenerator(config).papers(NUM_PAPERS)


def _build(corpus, num_shards):
    engine = AllFieldsEngine(num_shards=num_shards)
    engine.add_papers(corpus)
    return engine


def _drive(engine):
    """Cold ranked-search throughput over the query mix."""
    started = time.perf_counter()
    for _ in range(ROUNDS):
        for query in QUERIES:
            engine.search(query, page=1)
    seconds = time.perf_counter() - started
    total = ROUNDS * len(QUERIES)
    return total / seconds, seconds


def _page_ids(engine, query):
    return [(hit.paper_id, hit.score)
            for hit in engine.search(query, page=1).results]


def test_e16_serial_vs_parallel_shard_fanout(corpus, monkeypatch):
    rows = []
    for num_shards in SHARD_COUNTS:
        engine = _build(corpus, num_shards)

        monkeypatch.setenv(WIDTH_ENV, "1")
        shutdown_executor()
        serial_rps, serial_seconds = _drive(engine)
        serial_page = _page_ids(engine, QUERIES[0])

        monkeypatch.delenv(WIDTH_ENV, raising=False)
        shutdown_executor()
        parallel_rps, parallel_seconds = _drive(engine)
        parallel_page = _page_ids(engine, QUERIES[0])

        # Correctness before speed: identical pages either way.
        assert parallel_page == serial_page
        ratio = parallel_rps / serial_rps
        rows.append([num_shards, serial_rps, parallel_rps, ratio])
        RESULTS["scatter_gather"].append({
            "shards": num_shards,
            "serial_rps": serial_rps,
            "serial_seconds": serial_seconds,
            "parallel_rps": parallel_rps,
            "parallel_seconds": parallel_seconds,
            "speedup": ratio,
        })
    shutdown_executor()

    print_table(
        "E16: cold ranked search, serial vs parallel scatter-gather",
        ["shards", "serial req/s", "parallel req/s", "speedup"],
        rows,
        note="pure-Python shard work holds the GIL, so the ratio reflects "
             "fan-out overhead rather than core scaling; target >= 2x "
             "applies when shard work releases the GIL",
    )
    # Sanity floor only: the parallel path must not collapse throughput.
    for _, serial_rps, parallel_rps, ratio in rows:
        assert ratio > 0.1


def test_e16_preflight_validation_overhead(corpus):
    """Pre-flight validation is noise next to a sharded scatter-gather.

    ``ShardedCollection.aggregate(..., validate=True)`` checks the
    pipeline once on the router before fanning out; the check must stay
    <1% of the aggregation wall time or "fail fast" quietly becomes
    "run slow".
    """
    from repro.analysis.pipeline_check import validate_pipeline
    from repro.docstore.functions import FunctionRegistry
    from repro.docstore.sharding import ShardedCollection
    from repro.search.indexing import build_search_document

    collection = ShardedCollection("papers", shard_key="paper_id",
                                   num_shards=4)
    collection.insert_many([build_search_document(p) for p in corpus])
    registry = FunctionRegistry()
    registry.register(
        "rank",
        lambda doc: len(doc.get("search", {}).get("body", "")),
    )
    pipeline = [
        {"$match": {"search.body": {"$regex": "vaccine"}}},
        {"$function": {"name": "rank", "as": "score"}},
        {"$sort": {"score": -1}},
        {"$limit": 10},
    ]

    def best(fn, repeats):
        fastest = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            fastest = min(fastest, time.perf_counter() - started)
        return fastest

    validate_s = best(lambda: validate_pipeline(pipeline, registry), 20)
    execute_s = best(
        lambda: collection.aggregate(pipeline, registry, validate=False),
        5,
    )
    checked = collection.aggregate(pipeline, registry, validate=True)
    unchecked = collection.aggregate(pipeline, registry, validate=False)
    assert checked.documents == unchecked.documents

    fraction = validate_s / execute_s
    print_table(
        "E16: pre-flight validation vs sharded aggregation",
        ["validate us", "sharded aggregate ms", "overhead"],
        [[f"{validate_s * 1e6:.1f}", f"{execute_s * 1e3:.2f}",
          f"{fraction * 100:.3f}%"]],
        note="router validates once, before any shard fan-out",
    )
    RESULTS["preflight_validation"] = {
        "validate_seconds": validate_s,
        "aggregate_seconds": execute_s,
        "overhead_fraction": fraction,
    }
    assert fraction < 0.01
    shutdown_executor()


def test_e16_single_flight_stampede(corpus):
    """N concurrent identical misses -> exactly one computation."""
    hammer = 16
    system = CovidKG(CovidKGConfig(num_shards=2))
    system.ingest(corpus[:30])
    computations = []
    release = threading.Event()
    entered = threading.Event()

    with QueryService(system, ServeConfig(num_workers=4)) as service:
        real = service._dispatch["all_fields"]

        def slow(query, page=1):
            computations.append(query)
            entered.set()
            assert release.wait(timeout=30)
            return real(query=query, page=page)

        service._dispatch["all_fields"] = slow
        started = time.perf_counter()
        futures = [service.submit("all_fields", query="stampede probe")
                   for _ in range(hammer)]
        assert entered.wait(timeout=10)
        release.set()
        for future in futures:
            future.result(timeout=30)
        seconds = time.perf_counter() - started
        stats = service.stats()

    print_table(
        "E16: single-flight stampede protection",
        ["concurrent misses", "computations", "collapsed", "seconds"],
        [[hammer, len(computations), stats["collapsed_misses"], seconds]],
        note="every request saw the leader's result; no duplicate work",
    )
    RESULTS["single_flight"] = {
        "concurrent_misses": hammer,
        "computations": len(computations),
        "collapsed": stats["collapsed_misses"],
        "seconds": seconds,
    }
    assert len(computations) == 1
    assert stats["collapsed_misses"] == hammer - 1


def test_e16_process_mode_fanout(corpus, monkeypatch):
    """Thread vs process executor on sharded columnar ranking.

    ``REPRO_EXECUTOR_KIND=process`` ships each shard's columnar
    ranking to a spawn-based worker pool, sidestepping the GIL
    entirely.  The >= 2x speedup target only makes sense with cores to
    spend, so it is asserted on >= 4-core machines; everywhere else
    the row is recorded and correctness (byte-identical pages) is
    still enforced.
    """
    engine = _build(corpus, 4)

    monkeypatch.delenv(KIND_ENV, raising=False)
    shutdown_executor()
    thread_rps, thread_seconds = _drive(engine)
    thread_page = _page_ids(engine, QUERIES[0])

    monkeypatch.setenv(KIND_ENV, "process")
    monkeypatch.setenv(WIDTH_ENV, "4")
    process_rps, process_seconds = _drive(engine)
    process_page = _page_ids(engine, QUERIES[0])
    shutdown_process_executor()
    monkeypatch.delenv(KIND_ENV, raising=False)
    monkeypatch.delenv(WIDTH_ENV, raising=False)
    shutdown_executor()

    assert process_page == thread_page
    ratio = process_rps / thread_rps
    cores = os.cpu_count() or 1
    print_table(
        "E16: thread vs process executor, 4 shards, columnar ranking",
        ["cores", "thread req/s", "process req/s", "speedup"],
        [[cores, thread_rps, process_rps, ratio]],
        note="speedup target (>= 2x at 4 workers) asserted only on "
             ">= 4-core machines; worker warm-up is included",
    )
    RESULTS["process_mode"] = {
        "cores": cores,
        "thread_rps": thread_rps,
        "thread_seconds": thread_seconds,
        "process_rps": process_rps,
        "process_seconds": process_seconds,
        "speedup": ratio,
    }
    if cores >= 4:
        assert ratio >= 2.0

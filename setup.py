"""Setup shim for legacy editable installs.

The execution environment has no network and no ``wheel`` package, so the
PEP-517 editable path (which shells out to ``bdist_wheel``) is unavailable.
``pip install -e . --no-build-isolation --no-use-pep517`` uses this shim
instead; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
